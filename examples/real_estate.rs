//! Reproduce Figure 11 of the paper: the integrated Real Estate
//! interface, including its celebrated imperfections.
//!
//! ```text
//! cargo run --example real_estate
//! ```
//!
//! * The `Lease Rate` group keeps one field unlabeled: the field carries
//!   no label on any source interface, so "there is no way the algorithm
//!   can assign a label to it" (§7) — its semantics are inferable from
//!   the labeled sibling `To`.
//! * `Garage` is the isolated `C_int` field of Figure 3, labeled by the
//!   RAN-style election of §4.4.
//! * The tree is only *weakly* consistent: a super-structure label is not
//!   Definition-6 consistent with the solution chosen for one of its
//!   descendant groups.

use qi_core::{Labeler, NamingPolicy};
use qi_lexicon::Lexicon;

fn main() {
    let domain = qi_datasets::real_estate::domain();
    let prepared = domain.prepare();
    let lexicon = Lexicon::builtin();
    let labeler = Labeler::new(&lexicon, NamingPolicy::default());
    let labeled = labeler.label(&prepared.schemas, &prepared.mapping, &prepared.integrated);

    println!("Integrated Real Estate interface (compare to Figure 11):\n");
    println!("{}", labeled.tree.render());
    println!(
        "consistency class: {}",
        labeled.report.class.expect("classified")
    );
    println!(
        "unlabeled fields: {} (of which {} carry instances)",
        labeled.report.unlabeled_fields, labeled.report.unlabeled_fields_with_instances
    );

    // FldAcc, the paper's §7 metric: 27/28 ≈ 96.4% in the paper; the
    // corpus here has a couple more fields but the same single failure.
    let total = labeled.tree.leaves().count();
    let ok = labeled
        .tree
        .leaves()
        .filter(|l| l.label.is_some() || !l.instances().is_empty())
        .count();
    println!(
        "FldAcc: {ok}/{total} = {:.1}%",
        ok as f64 / total as f64 * 100.0
    );
    for group in &labeled.report.groups {
        if group.labels.iter().any(Option::is_none) {
            println!(
                "group [{}] has an unlabeled member: {:?}",
                group.description,
                group
                    .labels
                    .iter()
                    .map(|l| l.as_deref().unwrap_or("∅ (no source labels it)"))
                    .collect::<Vec<_>>()
            );
        }
    }
}
