//! Reproduce Figure 6 of the paper: the integrated Auto interface.
//!
//! ```text
//! cargo run --example auto_domain
//! ```
//!
//! Runs the naming pipeline on the 20-interface Auto corpus and prints
//! the labeled integrated schema tree. Watch for the paper's flagship
//! structures:
//!
//! * `Car Information` as the label of the node spanning the `Make/Model`
//!   group and the `Year Range` group — established by the LI5
//!   *extend-label-meaning* inference, which covers `Keywords` because it
//!   is characterized by `Make`/`Model` (Figure 8, right);
//! * the Table 3 location group `[State, City, Zip Code, Distance]` as a
//!   single group of the integrated interface;
//! * most-descriptive labels winning elections (e.g. `Year Range` over
//!   bare `Year`).

use qi_core::{InferenceRule, Labeler, NamingPolicy};
use qi_lexicon::Lexicon;

fn main() {
    let domain = qi_datasets::auto::domain();
    println!(
        "Auto domain: {} source interfaces, {} clusters",
        domain.schemas.len(),
        domain.mapping.len()
    );
    let source = domain.source_stats();
    println!(
        "source averages: {:.1} fields, {:.1} internal nodes, depth {:.1}, LQ {:.1}%\n",
        source.avg_leaves,
        source.avg_internal_nodes,
        source.avg_depth,
        source.avg_labeling_quality * 100.0
    );

    let prepared = domain.prepare();
    let lexicon = Lexicon::builtin();
    let labeler = Labeler::new(&lexicon, NamingPolicy::default());
    let labeled = labeler.label(&prepared.schemas, &prepared.mapping, &prepared.integrated);

    println!("Integrated Auto interface (compare to Figure 6):\n");
    println!("{}", labeled.tree.render());
    println!(
        "consistency class: {}",
        labeled.report.class.expect("classified")
    );
    println!("\ninference-rule usage while labeling this domain:");
    for rule in InferenceRule::ALL {
        let count = labeled.report.li_usage.count(rule);
        if count > 0 {
            println!("  {rule}: {count}");
        }
    }
}
