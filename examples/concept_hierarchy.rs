//! The paper's §9 claim: "our naming framework [is] also pervasive to
//! other integration areas (e.g. concept hierarchies, HTML tables,
//! ontologies)". This example applies the pipeline to two e-commerce
//! *category taxonomies* instead of query interfaces: leaf categories play
//! the role of fields, category sections play the role of groups.
//!
//! ```text
//! cargo run --example concept_hierarchy
//! ```

use qi::{integrate_and_label, NamingPolicy};
use qi_lexicon::LexiconBuilder;
use qi_mapping::{FieldRef, Mapping};
use qi_schema::{
    spec::{leaf, node},
    NodeId, SchemaTree,
};

fn field(schemas: &[SchemaTree], schema: usize, label: &str) -> FieldRef {
    let tree = &schemas[schema];
    let id = tree
        .descendant_leaves(NodeId::ROOT)
        .into_iter()
        .find(|&l| tree.node(l).label_str() == label)
        .unwrap_or_else(|| panic!("{label} not found"));
    FieldRef::new(schema, id)
}

fn main() {
    // Store 1's taxonomy.
    let shop_a = SchemaTree::build(
        "shop-a",
        vec![
            node(
                "Computers",
                vec![leaf("Laptops"), leaf("Desktops"), leaf("Monitors")],
            ),
            node("Audio", vec![leaf("Headphones"), leaf("Speakers")]),
        ],
    )
    .unwrap();
    // Store 2's taxonomy: different names, extra category.
    let shop_b = SchemaTree::build(
        "shop-b",
        vec![
            node(
                "Computing Equipment",
                vec![leaf("Notebooks"), leaf("Desktops"), leaf("Displays")],
            ),
            node(
                "Sound",
                vec![
                    leaf("Headphones"),
                    leaf("Loudspeakers"),
                    leaf("Microphones"),
                ],
            ),
        ],
    )
    .unwrap();
    let taxonomies = vec![shop_a, shop_b];

    // Category correspondences (what an ontology matcher would produce).
    let mapping = Mapping::from_clusters(vec![
        (
            "laptop".to_string(),
            vec![
                field(&taxonomies, 0, "Laptops"),
                field(&taxonomies, 1, "Notebooks"),
            ],
        ),
        (
            "desktop".to_string(),
            vec![
                field(&taxonomies, 0, "Desktops"),
                field(&taxonomies, 1, "Desktops"),
            ],
        ),
        (
            "monitor".to_string(),
            vec![
                field(&taxonomies, 0, "Monitors"),
                field(&taxonomies, 1, "Displays"),
            ],
        ),
        (
            "headphones".to_string(),
            vec![
                field(&taxonomies, 0, "Headphones"),
                field(&taxonomies, 1, "Headphones"),
            ],
        ),
        (
            "speakers".to_string(),
            vec![
                field(&taxonomies, 0, "Speakers"),
                field(&taxonomies, 1, "Loudspeakers"),
            ],
        ),
        (
            "microphones".to_string(),
            vec![field(&taxonomies, 1, "Microphones")],
        ),
    ]);

    // A domain lexicon for the taxonomy vocabulary.
    let lexicon = LexiconBuilder::new()
        .synset(&["laptop", "notebook"])
        .synset(&["desktop"])
        .synset(&["monitor", "display", "screen"])
        .synset(&["computer"])
        .synset(&["computing", "computer"])
        .synset(&["equipment", "gear"])
        .synset(&["audio", "sound"])
        .synset(&["headphone"])
        .synset(&["speaker", "loudspeaker"])
        .synset(&["microphone"])
        .hypernym("computer", "laptop")
        .hypernym("computer", "desktop")
        .build();

    let labeled = integrate_and_label(taxonomies, mapping, &lexicon, NamingPolicy::default());
    println!("Integrated category taxonomy:\n");
    println!("{}", labeled.tree.render());
    println!(
        "consistency class: {}",
        labeled.report.class.expect("classified")
    );
    println!("\nWhy each label was chosen:\n");
    println!("{}", qi_core::explain::render(&labeled));
}
