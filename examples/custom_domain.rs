//! Bring your own domain: custom interfaces, a custom lexicon extension,
//! and automatic field matching when no ground-truth clusters exist.
//!
//! ```text
//! cargo run --example custom_domain
//! ```
//!
//! The paper assumes the clusters are given (§2.1); this example instead
//! derives them with the label-similarity matcher of `qi-mapping` over a
//! lexicon extended with domain vocabulary, then runs the naming
//! pipeline — the flow a downstream user of the library would follow for
//! a fresh domain (here: pet adoption sites).

use qi_core::{Labeler, NamingPolicy};
use qi_lexicon::LexiconBuilder;
use qi_mapping::matcher::match_by_labels;
use qi_schema::{
    spec::{leaf, node, select},
    SchemaTree,
};

fn main() {
    // Three pet-adoption search interfaces with heterogeneous labels.
    let pawfinder = SchemaTree::build(
        "pawfinder",
        vec![
            select("Species", &["Dog", "Cat", "Rabbit"]),
            leaf("Breed"),
            node("Location", vec![leaf("City"), leaf("State")]),
            leaf("Age"),
        ],
    )
    .unwrap();
    let adoptapet = SchemaTree::build(
        "adoptapet",
        vec![
            select("Kind of Animal", &["Dog", "Cat", "Bird"]),
            leaf("Breed"),
            node("Where do you live?", vec![leaf("City"), leaf("Zip Code")]),
            select("Size", &["Small", "Medium", "Large"]),
        ],
    )
    .unwrap();
    let shelters = SchemaTree::build(
        "shelters",
        vec![
            select("Animal Type", &["Dog", "Cat"]),
            leaf("Breed Name"),
            leaf("Age of Pet"),
            leaf("State"),
        ],
    )
    .unwrap();
    let schemas = vec![pawfinder, adoptapet, shelters];

    // Extend the lexicon with the domain's synonym facts.
    let lexicon = LexiconBuilder::new()
        .synset(&["species", "kind", "type"])
        .synset(&["animal", "pet"])
        .synset(&["breed"])
        .synset(&["age"])
        .synset(&["size"])
        .synset(&["city", "town"])
        .synset(&["state"])
        .synset(&["zip", "zipcode"])
        .synset(&["code"])
        .synset(&["name"])
        .synset(&["location", "place"])
        .hypernym("animal", "species")
        .build();

    // No ground truth: derive the clusters from label similarity.
    let mapping = match_by_labels(&schemas, &lexicon);
    println!("derived {} clusters:", mapping.len());
    for cluster in &mapping.clusters {
        let labels: Vec<String> = cluster
            .members
            .iter()
            .map(|m| schemas[m.schema].node(m.node).label_str().to_string())
            .collect();
        println!("  {} <- {labels:?}", cluster.concept);
    }

    // Merge + name.
    let mut schemas = schemas;
    let mut mapping = mapping;
    qi_mapping::expand_one_to_many(&mut schemas, &mut mapping);
    let integrated = qi_merge::merge(&schemas, &mapping);
    let labeler = Labeler::new(&lexicon, NamingPolicy::default());
    let labeled = labeler.label(&schemas, &mapping, &integrated);

    println!("\nIntegrated pet-adoption interface:\n");
    println!("{}", labeled.tree.render());
    println!(
        "consistency class: {}",
        labeled.report.class.expect("classified")
    );
}
