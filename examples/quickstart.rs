//! Quickstart: integrate and label two small airline interfaces.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds two source query interfaces by hand, declares which fields
//! correspond (the clusters), runs the full pipeline — 1:m expansion,
//! structural merge, naming — and prints the labeled integrated
//! interface together with the naming report.

use qi::{integrate_and_label, Lexicon, NamingPolicy};
use qi_mapping::{FieldRef, Mapping};
use qi_schema::{
    spec::{leaf, node, select},
    NodeId, SchemaTree,
};

fn field(schemas: &[SchemaTree], schema: usize, label: &str) -> FieldRef {
    let tree = &schemas[schema];
    let id = tree
        .descendant_leaves(NodeId::ROOT)
        .into_iter()
        .find(|&l| tree.node(l).label_str() == label)
        .unwrap_or_else(|| panic!("{label} not found"));
    FieldRef::new(schema, id)
}

fn main() {
    // Source interface 1 — in the style of british airways (Figure 1).
    let british = SchemaTree::build(
        "british",
        vec![
            node(
                "Where and when do you want to travel?",
                vec![leaf("Departing from"), leaf("Going to")],
            ),
            node(
                "How many people are going?",
                vec![leaf("Seniors"), leaf("Adults"), leaf("Children")],
            ),
        ],
    )
    .unwrap();
    // Source interface 2 — a coarser site: one `Passengers` field (a 1:m
    // matching, Figure 2) and a class-of-ticket select.
    let economy = SchemaTree::build(
        "economytravel",
        vec![
            node("Route", vec![leaf("From"), leaf("To")]),
            leaf("Passengers"),
            select("Class of Ticket", &["Economy", "Business", "First"]),
        ],
    )
    .unwrap();
    let schemas = vec![british, economy];

    // Ground-truth correspondences. `Passengers` matches three finer
    // concepts — the pipeline expands it automatically.
    let passengers = field(&schemas, 1, "Passengers");
    let mapping = Mapping::from_clusters(vec![
        (
            "from".to_string(),
            vec![
                field(&schemas, 0, "Departing from"),
                field(&schemas, 1, "From"),
            ],
        ),
        (
            "to".to_string(),
            vec![field(&schemas, 0, "Going to"), field(&schemas, 1, "To")],
        ),
        (
            "senior".to_string(),
            vec![field(&schemas, 0, "Seniors"), passengers],
        ),
        (
            "adult".to_string(),
            vec![field(&schemas, 0, "Adults"), passengers],
        ),
        (
            "child".to_string(),
            vec![field(&schemas, 0, "Children"), passengers],
        ),
        (
            "class".to_string(),
            vec![field(&schemas, 1, "Class of Ticket")],
        ),
    ]);

    let lexicon = Lexicon::builtin();
    let labeled = integrate_and_label(schemas, mapping, &lexicon, NamingPolicy::default());

    println!("Integrated query interface:\n");
    println!("{}", labeled.tree.render());
    println!(
        "consistency class: {}",
        labeled.report.class.expect("classified")
    );
    for group in &labeled.report.groups {
        println!(
            "group [{}] -> {:?} ({})",
            group.description,
            group
                .labels
                .iter()
                .map(|l| l.as_deref().unwrap_or("∅"))
                .collect::<Vec<_>>(),
            match group.level {
                Some(level) => format!("consistent at the {level} level"),
                None => "partially consistent".to_string(),
            }
        );
    }
}
