//! Full evaluation report: Table 6 and Figure 10 over all seven domains.
//!
//! ```text
//! cargo run --release --example corpus_report
//! ```
//!
//! Equivalent to running the `table6` and `figure10` binaries of
//! `qi-eval` back to back, plus a per-domain consistency summary.

use qi_core::NamingPolicy;
use qi_eval::{evaluate_corpus, table, Panel};
use qi_lexicon::Lexicon;

fn main() {
    let domains = qi_datasets::all_domains();
    let lexicon = Lexicon::builtin();
    let result = evaluate_corpus(
        &domains,
        &lexicon,
        NamingPolicy::default(),
        Panel::default(),
    );

    println!("{}", table::render_table6(&result.domains));
    println!();
    println!("{}", table::render_figure10(&result.li_usage));

    println!("\nconsistency classes (Definition 8):");
    for row in &result.domains {
        println!("  {:<12} {}", row.name, row.class);
    }
}
