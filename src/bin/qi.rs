//! `qi` — command-line front end for the query-interface labeling
//! library.
//!
//! ```text
//! qi help                         show usage
//! qi stem <word>...               Porter-stem words
//! qi relate <label-a> <label-b>   Definition 1 relation between labels
//! qi label [opts] <file>...       integrate + label interface files
//!     --lexicon <file>            use a custom lexicon (text format)
//!     --explain                   print the label-provenance narrative
//!     --html                      print the integrated form as HTML
//!     --most-general              use the \[12\]-style baseline policy
//! qi corpus export <dir>          write the 150-interface corpus + the
//!                                 builtin lexicon as text files
//! qi synth [--drift] [opts]       generate a synthetic (cloned or
//!                                 realistic-drift) corpus
//! qi eval table6|figure10|matcher|ablation-ladder
//!                                 regenerate evaluation artifacts
//! ```
//!
//! Interface files use the `qi-schema` text format (see
//! `qi_schema::text_format`); clusters are derived with the
//! label-similarity matcher.

use qi::{Lexicon, NamingPolicy};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => {
            print!("{}", USAGE);
            Ok(())
        }
        Some("stem") => cmd_stem(&args[1..]),
        Some("relate") => cmd_relate(&args[1..]),
        Some("label") => cmd_label(&args[1..]),
        Some("corpus") => cmd_corpus(&args[1..]),
        Some("synth") => cmd_synth(&args[1..]),
        Some("eval") => cmd_eval(&args[1..]),
        Some("explain") => cmd_explain(&args[1..]),
        Some("snapshot") => cmd_snapshot(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("fetch") => cmd_fetch(&args[1..]),
        Some("top") => cmd_top(&args[1..]),
        Some(other) => Err(format!("unknown command {other:?}; try `qi help`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
qi — meaningful labeling of integrated query interfaces (VLDB 2006)

usage:
  qi stem <word>...               Porter-stem words
  qi relate <label-a> <label-b>   Definition 1 relation between labels
  qi label [opts] <file>...       integrate + label interface files
      --lexicon <file>            custom lexicon (text format)
      --clusters <file>           ground-truth clusters (text format)
      --explain                   print label provenance
      --html                      print the integrated form as HTML
      --most-general              use the most-general baseline policy
      --metrics <file>            write a JSON metrics document
      --deterministic-timers      virtual span clock (byte-stable output)
  qi corpus export <dir>          dump the 150-interface corpus
  qi synth [opts]                 generate a synthetic corpus and print
                                  a per-corpus summary
      --drift                     realistic-drift generator (paraphrase,
                                  morphology, typos, field add/drop,
                                  group reshuffles) instead of
                                  suffix-renamed clones
      --seed <n>                  drift RNG seed (drift mode only)
      --domains <n>               domain count
      --clones <k>                replicas per domain (cloned mode)
      --export <dir>              write the interfaces as .qis files
      --report                    run the matcher and print per-tier
                                  accepts + the morphology cache rate
  qi eval <artifact> [opts]       table6 | table6-json | figure10 |
                                  matcher | ablation-ladder
      --metrics <file>            write corpus-run metrics as JSON
      --trace-out <file>          write a Chrome trace_event JSON file
      --deterministic-timers      virtual span clock (byte-stable output)
      --threads <n>               corpus worker bound (0 = hardware)
  qi explain <domain> [node-path] print labeling-decision provenance for
                                  a builtin corpus domain; the optional
                                  node-path filters by path substring
      --most-general              use the most-general baseline policy
  qi snapshot build <file>        run the pipeline over the builtin
                                  corpus and persist every artifact
      --most-general              use the most-general baseline policy
  qi snapshot info <file>         describe a snapshot file
  qi serve [opts]                 serve labels over HTTP/1.1
      --snapshot <file>           cold-start from a snapshot (otherwise
                                  the corpus pipeline runs at startup)
      --addr <host:port>          bind address (default 127.0.0.1:0)
      --threads <n>               worker threads (0 = hardware)
      --port-file <file>          write the bound address for scripts
      --metrics <file>            write server metrics as JSON on exit
      --access-log <sink>         per-request log: \"stderr\" or a file
      --slow-ms <n>               log span breakdowns of slow requests
      --events <n>                flight-recorder ring capacity
                                  (default 1024; 0 disables it)
      --history-interval-ms <n>   /metrics/history window width
                                  (default 1000)
      --history-windows <n>       retained history windows (default 64;
                                  0 disables the series)
  qi top [opts] <host:port>       live terminal dashboard: polls
                                  /metrics/history over one keep-alive
                                  connection and renders per-window
                                  req/s, latency quantiles, ingest,
                                  cache and event columns
      --interval-ms <n>           poll interval (default 1000)
      --iterations <n>            stop after n refreshes (default: run
                                  until interrupted)
      --windows <n>               windows to request and show
                                  (default 10)
      --raw                       append one summary line per poll
                                  instead of redrawing the screen
  qi query [opts] <query>...      run a tree/lexicon/provenance query
                                  (same syntax as GET /query) over the
                                  builtin corpus or a snapshot; extra
                                  words are joined with spaces, so
                                  `qi query find fields` works unquoted
      --snapshot <file>           query a snapshot instead of rebuilding
                                  the corpus pipeline
      --limit <n>                 page size (default 100, max 1000)
      --cursor <c>                resume from a previous page's cursor
      --budget <n>                traversal-node budget (default 100000)
      --format <json|text>        output format (default text); json is
                                  the same document /query serves
  qi fetch [--post] [--body <f>] [--data <s>] [--accept <type>]
           [--etag <tag>] [--include] [--keep-alive] [--repeat <n>]
           <url>                  tiny std-only HTTP client (probes);
                                  the url's path and query string are
                                  percent-encoded before sending, so
                                  spaces in ?q= survive; --body reads a
                                  POST body from a file (`-` = stdin)
                                  and --data passes one inline; --etag
                                  sends if-none-match and treats 304
                                  Not Modified as success, --include
                                  prints the response head; --repeat
                                  sends the request n times, and with
                                  --keep-alive all repeats share one
                                  connection (failing if the server
                                  answers connection: close); other
                                  non-2xx responses exit non-zero with
                                  the status line on stderr
";

/// Resolve the `--metrics` / `--deterministic-timers` pair into a
/// telemetry mode: no path means off, a path means wall-clock spans
/// unless the virtual clock was requested.
fn telemetry_mode(metrics_path: Option<&str>, deterministic: bool) -> qi_runtime::TelemetryMode {
    match (metrics_path, deterministic) {
        (None, _) => qi_runtime::TelemetryMode::Off,
        (Some(_), false) => qi_runtime::TelemetryMode::Wall,
        (Some(_), true) => qi_runtime::TelemetryMode::Deterministic,
    }
}

fn write_metrics(path: &str, snapshot: &qi_runtime::MetricsSnapshot) -> Result<(), String> {
    std::fs::write(path, format!("{}\n", snapshot.to_json()))
        .map_err(|e| format!("writing {path}: {e}"))?;
    eprintln!(
        "wrote {} counters, {} gauges, {} spans to {path}",
        snapshot.counters.len(),
        snapshot.gauges.len(),
        snapshot.spans.len()
    );
    Ok(())
}

fn cmd_stem(words: &[String]) -> Result<(), String> {
    if words.is_empty() {
        return Err("usage: qi stem <word>...".to_string());
    }
    for word in words {
        println!("{word} -> {}", qi_text::stem(&word.to_lowercase()));
    }
    Ok(())
}

fn cmd_relate(args: &[String]) -> Result<(), String> {
    let [a, b] = args else {
        return Err("usage: qi relate <label-a> <label-b>".to_string());
    };
    let lexicon = Lexicon::builtin();
    let ta = qi_text::LabelText::new(a, &lexicon);
    let tb = qi_text::LabelText::new(b, &lexicon);
    let rel = qi_core::relations::relate(&ta, &tb, &lexicon);
    println!(
        "{a:?} ({}) vs {b:?} ({}) -> {rel:?}",
        ta.keys().into_iter().collect::<Vec<_>>().join(","),
        tb.keys().into_iter().collect::<Vec<_>>().join(","),
    );
    Ok(())
}

fn cmd_label(args: &[String]) -> Result<(), String> {
    let mut files: Vec<&str> = Vec::new();
    let mut lexicon_path: Option<&str> = None;
    let mut clusters_path: Option<&str> = None;
    let mut metrics_path: Option<&str> = None;
    let mut deterministic = false;
    let mut explain = false;
    let mut html = false;
    let mut policy = NamingPolicy::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--lexicon" => {
                lexicon_path = Some(
                    iter.next()
                        .ok_or("--lexicon needs a file argument")?
                        .as_str(),
                )
            }
            "--clusters" => {
                clusters_path = Some(
                    iter.next()
                        .ok_or("--clusters needs a file argument")?
                        .as_str(),
                )
            }
            "--metrics" => {
                metrics_path = Some(
                    iter.next()
                        .ok_or("--metrics needs a file argument")?
                        .as_str(),
                )
            }
            "--deterministic-timers" => deterministic = true,
            "--explain" => explain = true,
            "--html" => html = true,
            "--most-general" => policy = NamingPolicy::most_general_baseline(),
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            file => files.push(file),
        }
    }
    if files.is_empty() {
        return Err("usage: qi label [opts] <file>...".to_string());
    }
    let lexicon = match lexicon_path {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            qi_lexicon::format::parse(&text).map_err(|e| format!("{path}: {e}"))?
        }
        None => Lexicon::builtin(),
    };
    let mut schemas = Vec::new();
    for file in files {
        let text = std::fs::read_to_string(file).map_err(|e| format!("reading {file}: {e}"))?;
        let tree = qi_schema::text_format::parse(&text).map_err(|e| format!("{file}: {e}"))?;
        schemas.push(tree);
    }
    let telemetry = telemetry_mode(metrics_path, deterministic).build();
    let mapping = match clusters_path {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            qi_mapping::clusters_format::parse(&text, &schemas)
                .map_err(|e| format!("{path}: {e}"))?
        }
        None => {
            let span = telemetry.span("pipeline.cluster");
            let (mapping, stats) = qi_mapping::match_by_labels_stats(
                &schemas,
                &lexicon,
                qi_mapping::MatcherConfig::default(),
            );
            drop(span);
            stats.record(&telemetry);
            mapping
        }
    };
    eprintln!(
        "matched {} fields into {} clusters",
        schemas.iter().map(|s| s.leaves().count()).sum::<usize>(),
        mapping.len()
    );
    let labeled =
        qi::integrate_and_label_with(schemas, mapping, &lexicon, policy, telemetry.clone());
    if html {
        print!("{}", qi_schema::html::render_form(&labeled.tree));
    } else {
        print!("{}", labeled.tree.render());
    }
    if let Some(class) = labeled.report.class {
        eprintln!("consistency class: {class}");
    }
    if explain {
        println!();
        print!("{}", qi_core::explain::render(&labeled));
    }
    if let Some(path) = metrics_path {
        write_metrics(path, &telemetry.snapshot())?;
    }
    Ok(())
}

fn cmd_corpus(args: &[String]) -> Result<(), String> {
    let [action, dir] = args else {
        return Err("usage: qi corpus export <dir>".to_string());
    };
    if action != "export" {
        return Err(format!("unknown corpus action {action:?}"));
    }
    let root = Path::new(dir);
    std::fs::create_dir_all(root).map_err(|e| format!("creating {dir}: {e}"))?;
    let mut written = 0usize;
    for domain in qi_datasets::all_domains() {
        let domain_dir = root.join(domain.name.replace(' ', "_").to_lowercase());
        std::fs::create_dir_all(&domain_dir).map_err(|e| e.to_string())?;
        for tree in &domain.schemas {
            let path = domain_dir.join(format!("{}.qis", tree.name()));
            std::fs::write(&path, qi_schema::text_format::render(tree))
                .map_err(|e| e.to_string())?;
            written += 1;
        }
    }
    let lexicon_path = root.join("lexicon.txt");
    std::fs::write(
        &lexicon_path,
        qi_lexicon::format::render(&Lexicon::builtin()),
    )
    .map_err(|e| e.to_string())?;
    println!(
        "wrote {written} interfaces and {} to {dir}",
        lexicon_path.display()
    );
    Ok(())
}

fn cmd_synth(args: &[String]) -> Result<(), String> {
    let usage = "usage: qi synth [--drift] [--seed <n>] [--domains <n>] [--clones <k>] \
                 [--export <dir>] [--report]";
    let mut drift = false;
    let mut report = false;
    let mut seed: Option<u64> = None;
    let mut domains: Option<usize> = None;
    let mut clones = 2usize;
    let mut export: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--drift" => drift = true,
            "--report" => report = true,
            "--seed" => {
                seed = Some(
                    iter.next()
                        .ok_or("--seed needs a number")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?,
                )
            }
            "--domains" => {
                domains = Some(
                    iter.next()
                        .ok_or("--domains needs a number")?
                        .parse()
                        .map_err(|e| format!("--domains: {e}"))?,
                )
            }
            "--clones" => {
                clones = iter
                    .next()
                    .ok_or("--clones needs a number")?
                    .parse()
                    .map_err(|e| format!("--clones: {e}"))?
            }
            "--export" => export = Some(iter.next().ok_or("--export needs a directory")?.clone()),
            extra => return Err(format!("unexpected argument {extra:?}; {usage}")),
        }
    }
    let lexicon = Lexicon::builtin();
    let corpus: Vec<qi_datasets::Domain> = if drift {
        let mut config = qi_datasets::DriftConfig::default();
        if let Some(seed) = seed {
            config.seed = seed;
        }
        if let Some(domains) = domains {
            config.domains = domains;
        }
        qi_datasets::generate_drift_corpus(&config, &lexicon)
    } else {
        if seed.is_some() {
            return Err("--seed only applies to --drift".to_string());
        }
        qi_datasets::all_domains()
            .into_iter()
            .take(domains.unwrap_or(usize::MAX))
            .map(|d| qi_datasets::Domain {
                name: format!("{}-x{clones}", d.name),
                schemas: qi_datasets::replicate_schemas(&d.schemas, clones),
                mapping: qi_mapping::Mapping::from_clusters(Vec::<(
                    String,
                    Vec<qi_mapping::FieldRef>,
                )>::new()),
            })
            .collect()
    };
    let interfaces: usize = corpus.iter().map(|d| d.schemas.len()).sum();
    let fields: usize = corpus
        .iter()
        .flat_map(|d| &d.schemas)
        .map(|s| s.leaves().count())
        .sum();
    println!(
        "{} corpus: {} domains, {interfaces} interfaces, {fields} fields",
        if drift { "drift" } else { "cloned" },
        corpus.len()
    );
    if let Some(dir) = export {
        let root = Path::new(&dir);
        std::fs::create_dir_all(root).map_err(|e| format!("creating {dir}: {e}"))?;
        let mut written = 0usize;
        for domain in &corpus {
            let domain_dir = root.join(domain.name.replace(' ', "_").to_lowercase());
            std::fs::create_dir_all(&domain_dir).map_err(|e| e.to_string())?;
            for tree in &domain.schemas {
                let path = domain_dir.join(format!("{}.qis", tree.name()));
                std::fs::write(&path, qi_schema::text_format::render(tree))
                    .map_err(|e| e.to_string())?;
                written += 1;
            }
        }
        println!("wrote {written} interfaces to {dir}");
    }
    if report {
        let config = qi_mapping::MatcherConfig {
            fuzzy: true,
            ..qi_mapping::MatcherConfig::default()
        };
        let report = qi_datasets::DriftReport::compute(&corpus, &lexicon, config);
        println!("distinct labels: {}", report.distinct_labels);
        println!(
            "accepts: string {}  word-set {}  synonym {}  fuzzy {}",
            report.stats.accepted_string,
            report.stats.accepted_word_set,
            report.stats.accepted_synonym,
            report.stats.accepted_fuzzy
        );
        println!("morphology cache-hit rate: {:.4}", report.cache_hit_rate());
    }
    Ok(())
}

fn cmd_eval(args: &[String]) -> Result<(), String> {
    let usage =
        "usage: qi eval <table6|table6-json|figure10|matcher|ablation-ladder> [--metrics <file>] \
         [--trace-out <file>] [--deterministic-timers] [--threads <n>]";
    let mut artifact: Option<&str> = None;
    let mut metrics_path: Option<&str> = None;
    let mut trace_path: Option<&str> = None;
    let mut deterministic = false;
    let mut threads = 0usize;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--metrics" => {
                metrics_path = Some(
                    iter.next()
                        .ok_or("--metrics needs a file argument")?
                        .as_str(),
                )
            }
            "--trace-out" => {
                trace_path = Some(
                    iter.next()
                        .ok_or("--trace-out needs a file argument")?
                        .as_str(),
                )
            }
            "--deterministic-timers" => deterministic = true,
            "--threads" => {
                threads = iter
                    .next()
                    .ok_or("--threads needs a number")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            name if artifact.is_none() => artifact = Some(name),
            extra => return Err(format!("unexpected argument {extra:?}; {usage}")),
        }
    }
    let Some(artifact) = artifact else {
        return Err(usage.to_string());
    };
    let lexicon = Lexicon::builtin();
    let config = qi_eval::RunConfig {
        threads,
        telemetry: telemetry_mode(metrics_path.or(trace_path), deterministic),
        ..qi_eval::RunConfig::default()
    };
    let run_corpus = || {
        qi_eval::evaluate_corpus_with(
            &qi_datasets::all_domains(),
            &lexicon,
            NamingPolicy::default(),
            qi_eval::Panel::default(),
            config,
        )
    };
    // The corpus ships ground-truth clusters, so evaluation never runs
    // the matcher; a metrics run adds a cluster probe per domain so the
    // document also covers postings/candidate-pair statistics.
    let emit = |corpus_metrics: &qi_runtime::MetricsSnapshot| -> Result<(), String> {
        if metrics_path.is_none() && trace_path.is_none() {
            return Ok(());
        }
        let mut merged = corpus_metrics.clone();
        merged.merge(&cluster_probe(&lexicon, config.telemetry));
        if let Some(path) = metrics_path {
            write_metrics(path, &merged)?;
        }
        if let Some(path) = trace_path {
            std::fs::write(path, format!("{}\n", qi_runtime::chrome_trace(&merged)))
                .map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("wrote a {}-span chrome trace to {path}", merged.spans.len());
        }
        Ok(())
    };
    match artifact {
        "table6" => {
            let result = run_corpus();
            print!("{}", qi_eval::table::render_table6(&result.domains));
            emit(&result.metrics)?;
        }
        "figure10" => {
            let result = run_corpus();
            print!("{}", qi_eval::table::render_figure10(&result.li_usage));
            emit(&result.metrics)?;
        }
        "table6-json" => {
            let result = run_corpus();
            println!("{}", qi_eval::json::corpus_to_json(&result));
            emit(&result.metrics)?;
        }
        "matcher" => {
            let reports: Vec<_> = qi_datasets::all_domains()
                .iter()
                .map(|d| qi_eval::matcher_eval::evaluate_matcher(d, &lexicon))
                .collect();
            print!("{}", qi_eval::matcher_eval::render(&reports));
            emit(&qi_runtime::MetricsSnapshot::default())?;
        }
        "ablation-ladder" => {
            let domain = qi_datasets::generate_ladder(3, 3);
            for point in qi_eval::ablation::ladder_sweep(&domain, &lexicon) {
                println!(
                    "cap={:<9} consistent groups {}/{}",
                    point.cap, point.consistent_groups, point.total_groups
                );
            }
            emit(&qi_runtime::MetricsSnapshot::default())?;
        }
        other => return Err(format!("unknown artifact {other:?}")),
    }
    Ok(())
}

fn cmd_explain(args: &[String]) -> Result<(), String> {
    let usage = "usage: qi explain <domain> [node-path] [--most-general]";
    let mut domain_arg: Option<&str> = None;
    let mut filter: Option<&str> = None;
    let mut policy = NamingPolicy::default();
    for arg in args {
        match arg.as_str() {
            "--most-general" => policy = NamingPolicy::most_general_baseline(),
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            value if domain_arg.is_none() => domain_arg = Some(value),
            value if filter.is_none() => filter = Some(value),
            extra => return Err(format!("unexpected argument {extra:?}; {usage}")),
        }
    }
    let Some(domain_arg) = domain_arg else {
        return Err(usage.to_string());
    };
    let domains = qi_datasets::all_domains();
    let wanted = qi_serve::artifact::slug_of(domain_arg);
    let Some(domain) = domains
        .iter()
        .find(|d| qi_serve::artifact::slug_of(&d.name) == wanted)
    else {
        let known: Vec<String> = domains
            .iter()
            .map(|d| qi_serve::artifact::slug_of(&d.name))
            .collect();
        return Err(format!(
            "unknown domain {domain_arg:?}; builtin domains: {}",
            known.join(", ")
        ));
    };
    let lexicon = Lexicon::builtin();
    let telemetry = qi_runtime::Telemetry::off();
    let artifact = qi_serve::build_artifact(domain, &lexicon, policy, &telemetry);
    let text = qi_core::provenance::render(&artifact.decisions, filter);
    if text.is_empty() {
        return Err(match filter {
            Some(filter) => format!("no node path contains {filter:?} in domain {wanted}"),
            None => format!("domain {wanted} produced no labeling decisions"),
        });
    }
    eprintln!(
        "{} — {} decisions{}",
        domain.name,
        artifact.decisions.len(),
        filter
            .map(|f| format!(", filtered by {f:?}"))
            .unwrap_or_default()
    );
    print!("{text}");
    Ok(())
}

fn cmd_snapshot(args: &[String]) -> Result<(), String> {
    let usage = "usage: qi snapshot <build|info> <file> [--most-general]";
    let mut action: Option<&str> = None;
    let mut file: Option<&str> = None;
    let mut policy = NamingPolicy::default();
    for arg in args {
        match arg.as_str() {
            "--most-general" => policy = NamingPolicy::most_general_baseline(),
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            value if action.is_none() => action = Some(value),
            value if file.is_none() => file = Some(value),
            extra => return Err(format!("unexpected argument {extra:?}; {usage}")),
        }
    }
    let (Some(action), Some(file)) = (action, file) else {
        return Err(usage.to_string());
    };
    match action {
        "build" => {
            let lexicon = Lexicon::builtin();
            let telemetry = qi_runtime::Telemetry::off();
            let domains = qi_serve::build_corpus_artifacts(&lexicon, policy, &telemetry);
            let snapshot = qi_serve::Snapshot { policy, domains };
            qi_serve::write_snapshot(Path::new(file), &snapshot).map_err(|e| e.to_string())?;
            let size = std::fs::metadata(file).map(|m| m.len()).unwrap_or(0);
            println!(
                "wrote {} domains ({} bytes, format v{}) to {file}",
                snapshot.domains.len(),
                size,
                qi_serve::FORMAT_VERSION
            );
            Ok(())
        }
        "info" => {
            let snapshot = qi_serve::load_snapshot(Path::new(file)).map_err(|e| e.to_string())?;
            println!(
                "snapshot format v{}, {} domains",
                qi_serve::FORMAT_VERSION,
                snapshot.domains.len()
            );
            for artifact in &snapshot.domains {
                println!(
                    "  {:<14} {:>2} interfaces {:>3} clusters {:>3} leaves  {}",
                    artifact.slug(),
                    artifact.interfaces(),
                    artifact.mapping.len(),
                    artifact.leaf_cluster.len(),
                    artifact
                        .class
                        .map(|c| c.to_string())
                        .unwrap_or_else(|| "unclassified".to_string()),
                );
            }
            Ok(())
        }
        other => Err(format!("unknown snapshot action {other:?}; {usage}")),
    }
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let mut snapshot_path: Option<&str> = None;
    let mut port_file: Option<&str> = None;
    let mut metrics_path: Option<&str> = None;
    let mut config = qi_serve::ServerConfig::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--snapshot" => {
                snapshot_path = Some(iter.next().ok_or("--snapshot needs a file")?.as_str())
            }
            "--addr" => config.addr = iter.next().ok_or("--addr needs host:port")?.to_string(),
            "--threads" => {
                config.threads = iter
                    .next()
                    .ok_or("--threads needs a number")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--port-file" => {
                port_file = Some(iter.next().ok_or("--port-file needs a file")?.as_str())
            }
            "--metrics" => {
                metrics_path = Some(iter.next().ok_or("--metrics needs a file")?.as_str())
            }
            "--access-log" => {
                config.access_log =
                    Some(iter.next().ok_or("--access-log needs a sink")?.to_string())
            }
            "--slow-ms" => {
                config.slow_ms = Some(
                    iter.next()
                        .ok_or("--slow-ms needs a number")?
                        .parse()
                        .map_err(|e| format!("--slow-ms: {e}"))?,
                )
            }
            "--events" => {
                config.events_capacity = iter
                    .next()
                    .ok_or("--events needs a number")?
                    .parse()
                    .map_err(|e| format!("--events: {e}"))?
            }
            "--history-interval-ms" => {
                config.history_interval_ms = iter
                    .next()
                    .ok_or("--history-interval-ms needs a number")?
                    .parse()
                    .map_err(|e| format!("--history-interval-ms: {e}"))?
            }
            "--history-windows" => {
                config.history_windows = iter
                    .next()
                    .ok_or("--history-windows needs a number")?
                    .parse()
                    .map_err(|e| format!("--history-windows: {e}"))?
            }
            other => return Err(format!("unknown argument {other:?}; try `qi help`")),
        }
    }
    config.snapshot_path = snapshot_path.map(str::to_string);
    let lexicon = Lexicon::builtin();
    let telemetry = qi_runtime::Telemetry::new();
    let store = match snapshot_path {
        Some(path) => {
            let span = telemetry.timed("serve.cold_start.snapshot");
            let snapshot = qi_serve::load_snapshot(Path::new(path)).map_err(|e| e.to_string())?;
            drop(span);
            eprintln!("loaded {} domains from {path}", snapshot.domains.len());
            qi_serve::Store::from_snapshot(snapshot, lexicon, telemetry.clone())
        }
        None => {
            let span = telemetry.timed("serve.cold_start.rebuild");
            let policy = NamingPolicy::default();
            let domains = qi_serve::build_corpus_artifacts(&lexicon, policy, &telemetry);
            drop(span);
            eprintln!("built {} domains from the builtin corpus", domains.len());
            qi_serve::Store::new(domains, lexicon, policy, telemetry.clone())
        }
    };
    let server =
        qi_serve::Server::with_config(std::sync::Arc::new(store), telemetry.clone(), config);
    let mut handle = server
        .start()
        .map_err(|e| format!("starting server: {e}"))?;
    eprintln!("serving on http://{}", handle.addr());
    if let Some(path) = port_file {
        std::fs::write(path, format!("{}\n", handle.addr()))
            .map_err(|e| format!("writing {path}: {e}"))?;
    }
    handle.wait();
    eprintln!("server stopped");
    if let Some(path) = metrics_path {
        write_metrics(path, &telemetry.snapshot())?;
    }
    Ok(())
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let usage = "usage: qi query [--snapshot <file>] [--limit <n>] [--cursor <c>] \
                 [--budget <n>] [--format <json|text>] <query>...";
    let mut snapshot_path: Option<&str> = None;
    let mut params = qi_serve::PageParams::default();
    let mut json = false;
    let mut words: Vec<&str> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--snapshot" => {
                snapshot_path = Some(iter.next().ok_or("--snapshot needs a file")?.as_str())
            }
            "--limit" => {
                params.limit = iter
                    .next()
                    .ok_or("--limit needs a number")?
                    .parse()
                    .map_err(|e| format!("--limit: {e}"))?
            }
            "--cursor" => {
                params.cursor = Some(iter.next().ok_or("--cursor needs a value")?.to_string())
            }
            "--budget" => {
                params.budget = iter
                    .next()
                    .ok_or("--budget needs a number")?
                    .parse()
                    .map_err(|e| format!("--budget: {e}"))?
            }
            "--format" => match iter.next().ok_or("--format needs json or text")?.as_str() {
                "json" => json = true,
                "text" => json = false,
                other => return Err(format!("--format must be json or text, got {other:?}")),
            },
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            word => words.push(word),
        }
    }
    if words.is_empty() {
        return Err(usage.to_string());
    }
    // Join bare words so `qi query find fields where labeled` works
    // without shell quoting; quoted strings still pass through as one
    // argument each.
    let text = words.join(" ");
    let lexicon = Lexicon::builtin();
    let telemetry = qi_runtime::Telemetry::off();
    let artifacts = match snapshot_path {
        Some(path) => {
            qi_serve::load_snapshot(Path::new(path))
                .map_err(|e| e.to_string())?
                .domains
        }
        None => qi_serve::build_corpus_artifacts(&lexicon, NamingPolicy::default(), &telemetry),
    };
    let mut refs: Vec<&qi_serve::DomainArtifact> = artifacts.iter().collect();
    refs.sort_by_key(|a| a.slug());
    let page = qi_serve::run_query(&refs, &lexicon, &text, &params).map_err(|e| e.to_string())?;
    if json {
        println!("{}", qi_serve::page_json(&page));
        return Ok(());
    }
    for matched in &page.matches {
        println!(
            "{:<14} {:<5} {}  label={}  rule={}",
            matched.domain,
            matched.kind,
            matched.path,
            matched.label.as_deref().unwrap_or("-"),
            matched.rule.as_deref().unwrap_or("-"),
        );
    }
    eprintln!(
        "{} — {} matches, {} nodes scanned",
        page.canonical,
        page.matches.len(),
        page.scanned
    );
    if let Some(cursor) = &page.next_cursor {
        eprintln!("next cursor: {cursor}");
    }
    Ok(())
}

fn cmd_fetch(args: &[String]) -> Result<(), String> {
    let usage = "usage: qi fetch [--post] [--body <file>] [--data <string>] [--accept <type>] \
         [--etag <tag>] [--include] [--keep-alive] [--repeat <n>] <url>";
    let mut url: Option<&str> = None;
    let mut post = false;
    let mut body_path: Option<&str> = None;
    let mut data: Option<&str> = None;
    let mut accept: Option<&str> = None;
    let mut etag: Option<&str> = None;
    let mut include = false;
    let mut keep_alive = false;
    let mut repeat: u32 = 1;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--post" => post = true,
            "--body" => body_path = Some(iter.next().ok_or("--body needs a file")?.as_str()),
            "--data" => data = Some(iter.next().ok_or("--data needs a string")?.as_str()),
            "--accept" => accept = Some(iter.next().ok_or("--accept needs a media type")?.as_str()),
            "--etag" => etag = Some(iter.next().ok_or("--etag needs a tag")?.as_str()),
            "--include" => include = true,
            "--keep-alive" => keep_alive = true,
            "--repeat" => {
                repeat = iter
                    .next()
                    .ok_or("--repeat needs a count")?
                    .parse()
                    .map_err(|e| format!("--repeat: {e}"))?;
                if repeat == 0 {
                    return Err("--repeat must be at least 1".to_string());
                }
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            value if url.is_none() => url = Some(value),
            extra => return Err(format!("unexpected argument {extra:?}; {usage}")),
        }
    }
    let Some(url) = url else {
        return Err(usage.to_string());
    };
    let rest = url
        .strip_prefix("http://")
        .ok_or_else(|| format!("only http:// urls are supported, got {url:?}"))?;
    let (hostport, path) = match rest.split_once('/') {
        Some((hostport, path)) => (hostport, format!("/{path}")),
        None => (rest, "/".to_string()),
    };
    // Percent-encode the request target so shell-level conveniences like
    // `?q=find fields` survive the trip: servers reject raw spaces in
    // the request line. Bytes already legal in a target (including `%`,
    // so pre-encoded urls pass through untouched) are copied verbatim.
    let path = encode_target(&path);
    use std::io::{Read, Write};
    let body = match (body_path, data) {
        (Some(_), Some(_)) => return Err("--body and --data are mutually exclusive".to_string()),
        (Some("-"), None) => {
            let mut buf = Vec::new();
            std::io::stdin()
                .read_to_end(&mut buf)
                .map_err(|e| format!("reading stdin: {e}"))?;
            buf
        }
        (Some(path), None) => std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?,
        (None, Some(data)) => data.as_bytes().to_vec(),
        (None, None) => Vec::new(),
    };
    let method = if post || body_path.is_some() || data.is_some() {
        "POST"
    } else {
        "GET"
    };
    let accept_header = accept
        .map(|media| format!("accept: {media}\r\n"))
        .unwrap_or_default();
    let etag_header = etag
        .map(|tag| format!("if-none-match: {tag}\r\n"))
        .unwrap_or_default();
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let request = {
        let mut request = format!(
            "{method} {path} HTTP/1.1\r\nhost: {hostport}\r\n{accept_header}{etag_header}\
             content-length: {}\r\nconnection: {connection}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        request.extend_from_slice(&body);
        request
    };

    let timeout = Some(std::time::Duration::from_secs(10));
    let connect = || -> Result<std::net::TcpStream, String> {
        let stream = std::net::TcpStream::connect(hostport)
            .map_err(|e| format!("connecting to {hostport}: {e}"))?;
        let _ = stream.set_read_timeout(timeout);
        let _ = stream.set_write_timeout(timeout);
        Ok(stream)
    };

    // One persistent connection with --keep-alive, one per request
    // without. In keep-alive mode responses are framed by their
    // `content-length` (the socket stays open, so EOF never delimits),
    // and a response claiming `connection: close` fails the probe: the
    // whole point of the flag is asserting the server reuses the
    // connection.
    let mut stream = if keep_alive { Some(connect()?) } else { None };
    let mut buffered: Vec<u8> = Vec::new();
    for _ in 0..repeat {
        let (head, payload) = if keep_alive {
            let stream = stream.as_mut().expect("keep-alive stream");
            stream
                .write_all(&request)
                .map_err(|e| format!("sending request: {e}"))?;
            read_framed_response(stream, &mut buffered)?
        } else {
            let mut stream = connect()?;
            stream
                .write_all(&request)
                .map_err(|e| format!("sending request: {e}"))?;
            let mut raw = Vec::new();
            stream
                .read_to_end(&mut raw)
                .map_err(|e| format!("reading response: {e}"))?;
            let head_end = raw
                .windows(4)
                .position(|w| w == b"\r\n\r\n")
                .ok_or("malformed response (no header terminator)")?;
            (
                String::from_utf8_lossy(&raw[..head_end]).into_owned(),
                raw[head_end + 4..].to_vec(),
            )
        };
        let status: u16 = head
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("malformed status line {:?}", head.lines().next()))?;
        if keep_alive
            && header_value(&head, "connection").is_some_and(|v| v.eq_ignore_ascii_case("close"))
        {
            return Err(format!(
                "--keep-alive: server answered `connection: close` ({})",
                head.lines().next().unwrap_or("")
            ));
        }
        if include {
            println!("{head}");
        }
        print!("{}", String::from_utf8_lossy(&payload));
        if !payload.ends_with(b"\n") && !payload.is_empty() {
            println!();
        }
        // `304 Not Modified` is the cache-validation success path: the
        // client's `--etag` still names the server's bytes, so there is
        // no body to print. Announce it so scripts can assert on it.
        if status == 304 {
            eprintln!("{}", head.lines().next().unwrap_or(""));
            continue;
        }
        if !(200..300).contains(&status) {
            // Surface the server's own status line before failing, so
            // scripts see *why* the probe was refused.
            eprintln!("{}", head.lines().next().unwrap_or(""));
            return Err(format!("{method} {url} -> {status}"));
        }
    }
    Ok(())
}

/// Percent-encode a request target (path + optional query string).
/// Bytes that are legal in a target — RFC 3986 unreserved characters
/// plus the reserved set and `%` itself — are copied verbatim, so an
/// already-encoded url round-trips unchanged; everything else (spaces,
/// quotes, control bytes, non-ASCII) becomes `%XX`.
fn encode_target(target: &str) -> String {
    let mut out = String::with_capacity(target.len());
    for byte in target.bytes() {
        let keep = byte.is_ascii_alphanumeric() || b"-._~:/?#[]@!$&'()*+,;=%".contains(&byte);
        if keep {
            out.push(byte as char);
        } else {
            out.push_str(&format!("%{byte:02X}"));
        }
    }
    out
}

/// First value of a response header (case-insensitive name match).
fn header_value<'a>(head: &'a str, name: &str) -> Option<&'a str> {
    head.lines().skip(1).find_map(|line| {
        let (n, v) = line.split_once(':')?;
        n.trim().eq_ignore_ascii_case(name).then(|| v.trim())
    })
}

/// Read one `content-length`-framed response off a persistent
/// connection; surplus (pipelined) bytes stay in `buffered`.
fn read_framed_response(
    stream: &mut std::net::TcpStream,
    buffered: &mut Vec<u8>,
) -> Result<(String, Vec<u8>), String> {
    use std::io::Read;
    let mut chunk = [0u8; 16 * 1024];
    let head_end = loop {
        if let Some(pos) = buffered.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        let n = stream
            .read(&mut chunk)
            .map_err(|e| format!("reading response: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-response".to_string());
        }
        buffered.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buffered[..head_end - 4]).into_owned();
    let length: usize = header_value(&head, "content-length")
        .map(|v| v.parse().map_err(|e| format!("bad content-length: {e}")))
        .transpose()?
        .unwrap_or(0);
    while buffered.len() < head_end + length {
        let n = stream
            .read(&mut chunk)
            .map_err(|e| format!("reading response: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-body".to_string());
        }
        buffered.extend_from_slice(&chunk[..n]);
    }
    let payload = buffered[head_end..head_end + length].to_vec();
    buffered.drain(..head_end + length);
    Ok((head, payload))
}

/// `qi top`: a refreshing terminal dashboard over `/metrics/history`.
/// One keep-alive connection, one GET per refresh; every number on
/// screen is computed client-side from the returned window deltas.
fn cmd_top(args: &[String]) -> Result<(), String> {
    let usage = "usage: qi top [--interval-ms <n>] [--iterations <n>] [--windows <n>] [--raw] \
                 <host:port>";
    let mut target: Option<&str> = None;
    let mut interval_ms: u64 = 1_000;
    let mut iterations: Option<u64> = None;
    let mut windows: u64 = 10;
    let mut raw = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--interval-ms" => {
                interval_ms = iter
                    .next()
                    .ok_or("--interval-ms needs a number")?
                    .parse()
                    .map_err(|e| format!("--interval-ms: {e}"))?
            }
            "--iterations" => {
                iterations = Some(
                    iter.next()
                        .ok_or("--iterations needs a number")?
                        .parse()
                        .map_err(|e| format!("--iterations: {e}"))?,
                )
            }
            "--windows" => {
                windows = iter
                    .next()
                    .ok_or("--windows needs a number")?
                    .parse()
                    .map_err(|e| format!("--windows: {e}"))?;
                if windows == 0 {
                    return Err("--windows must be at least 1".to_string());
                }
            }
            "--raw" => raw = true,
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            value if target.is_none() => target = Some(value),
            extra => return Err(format!("unexpected argument {extra:?}; {usage}")),
        }
    }
    let Some(target) = target else {
        return Err(usage.to_string());
    };
    let hostport = target
        .strip_prefix("http://")
        .unwrap_or(target)
        .trim_end_matches('/');

    use std::io::Write;
    let timeout = Some(std::time::Duration::from_secs(10));
    let mut stream = std::net::TcpStream::connect(hostport)
        .map_err(|e| format!("connecting to {hostport}: {e}"))?;
    let _ = stream.set_read_timeout(timeout);
    let _ = stream.set_write_timeout(timeout);
    let request = format!(
        "GET /metrics/history?windows={windows} HTTP/1.1\r\nhost: {hostport}\r\n\
         content-length: 0\r\nconnection: keep-alive\r\n\r\n"
    )
    .into_bytes();

    let mut buffered: Vec<u8> = Vec::new();
    let mut refreshed = 0u64;
    loop {
        stream
            .write_all(&request)
            .map_err(|e| format!("sending request: {e}"))?;
        let (head, payload) = read_framed_response(&mut stream, &mut buffered)?;
        let status: u16 = head
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("malformed status line {:?}", head.lines().next()))?;
        if status != 200 {
            return Err(format!("GET /metrics/history -> {status}"));
        }
        let text = std::str::from_utf8(&payload)
            .map_err(|_| "history payload is not UTF-8".to_string())?;
        let doc = qi_runtime::json::parse(text).map_err(|e| format!("parsing history: {e}"))?;
        let rendered = render_top(hostport, &doc);
        if raw {
            // One summary line (the newest window) per refresh —
            // pipeable, and what the smoke tests assert on.
            println!("{}", rendered.lines().last().unwrap_or(""));
        } else {
            // ANSI clear + home, then the whole dashboard.
            print!("\x1b[2J\x1b[H{rendered}");
            let _ = std::io::stdout().flush();
        }
        refreshed += 1;
        if iterations.is_some_and(|n| refreshed >= n) {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

/// Render the `/metrics/history` document as the `qi top` dashboard:
/// a header plus one row per window, oldest first.
fn render_top(hostport: &str, doc: &qi_runtime::json::Json) -> String {
    use std::fmt::Write;
    let interval_ms = doc.u64_or_zero("interval_ns") / 1_000_000;
    let windows = doc
        .get("windows")
        .and_then(qi_runtime::json::Json::as_array)
        .unwrap_or(&[]);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "qi top — {hostport} — {} window(s) of {interval_ms}ms",
        windows.len()
    );
    let _ = writeln!(
        out,
        "{:>6} {:>8} {:>8} {:>9} {:>9} {:>5} {:>5} {:>7} {:>11} {:>12}",
        "window",
        "dur_s",
        "req/s",
        "p50_us",
        "p99_us",
        "err",
        "shed",
        "ingest",
        "cache_h/m",
        "events(+drop)"
    );
    for window in windows {
        let duration_s = window.u64_or_zero("duration_ns") as f64 / 1e9;
        let counters = window.get("counters");
        let count = |name: &str| counters.map_or(0, |c| c.u64_or_zero(name));
        let requests = count("serve.requests");
        let rate = if duration_s > 0.0 {
            requests as f64 / duration_s
        } else {
            0.0
        };
        let latency = window
            .get("histograms")
            .and_then(|h| h.get("serve.latency"));
        let quantile_us = |q: &str| latency.map_or(0, |l| l.u64_or_zero(q)) / 1_000;
        let _ = writeln!(
            out,
            "{:>6} {:>8.2} {:>8.1} {:>9} {:>9} {:>5} {:>5} {:>7} {:>5}/{:<5} {:>8}(+{})",
            window.u64_or_zero("index"),
            duration_s,
            rate,
            quantile_us("p50"),
            quantile_us("p99"),
            count("serve.errors"),
            count("serve.shed"),
            count("serve.requests.ingest"),
            count("serve.cache.hits"),
            count("serve.cache.misses"),
            count("events.emitted"),
            count("events.dropped"),
        );
    }
    if windows.is_empty() {
        out.push_str("(no windows yet — the first interval has not closed)\n");
    }
    out
}

/// Re-derive every domain's clusters with the indexed matcher purely to
/// collect matcher telemetry (postings bucket shape, candidate pair
/// volumes). The probe never feeds the evaluation — ground truth does —
/// so it runs only when a metrics document was requested.
fn cluster_probe(
    lexicon: &Lexicon,
    mode: qi_runtime::TelemetryMode,
) -> qi_runtime::MetricsSnapshot {
    let telemetry = mode.build();
    if !telemetry.is_enabled() {
        return qi_runtime::MetricsSnapshot::default();
    }
    for domain in qi_datasets::all_domains() {
        let span = telemetry.timed("eval.cluster");
        let (_, stats) = qi_mapping::match_by_labels_stats(
            &domain.schemas,
            lexicon,
            qi_mapping::MatcherConfig::default(),
        );
        drop(span);
        stats.record(&telemetry);
    }
    telemetry.snapshot()
}
