//! **qi** — Meaningful Labeling of Integrated Query Interfaces.
//!
//! A from-scratch Rust reproduction of Dragut, Yu & Meng, *Meaningful
//! Labeling of Integrated Query Interfaces*, VLDB 2006, including every
//! substrate the paper builds on. This facade crate re-exports the
//! workspace's public API and offers a one-call pipeline.
//!
//! | crate | role |
//! |---|---|
//! | [`text`] | tokenization, Porter stemming, label normalization (§3.1) |
//! | [`lexicon`] | WordNet-style synsets / hypernyms / lemmatization |
//! | [`schema`] | ordered schema trees of query interfaces (§2) |
//! | [`mapping`] | clusters, 1:m expansion, group relations (§2.1, §4) |
//! | [`merge`] | structural merge into the integrated tree (\[8\]) |
//! | [`core`] | the naming algorithm (§3–§6, LI1–LI7) |
//! | [`datasets`] | the 7-domain / 150-interface evaluation corpus |
//! | [`eval`] | Table 6 / Figure 10 harness, acceptance panel, ablations |
//!
//! # One-call pipeline
//!
//! ```
//! use qi::{integrate_and_label, NamingPolicy};
//! use qi_lexicon::Lexicon;
//!
//! let domain = qi_datasets::auto::domain();
//! let lexicon = Lexicon::builtin();
//! let labeled = integrate_and_label(
//!     domain.schemas.clone(),
//!     domain.mapping.clone(),
//!     &lexicon,
//!     NamingPolicy::default(),
//! );
//! // Figure 6's integrated Auto interface, fully labeled.
//! assert!(labeled.tree.leaves().all(|l| l.label.is_some()));
//! ```

pub use qi_core as core;
pub use qi_datasets as datasets;
pub use qi_eval as eval;
pub use qi_lexicon as lexicon;
pub use qi_mapping as mapping;
pub use qi_merge as merge;
pub use qi_schema as schema;
pub use qi_text as text;

pub use qi_core::{
    ConsistencyClass, ConsistencyLevel, LabelRelation, LabeledInterface, Labeler, NamingPolicy,
};
pub use qi_lexicon::Lexicon;
pub use qi_mapping::{expand_one_to_many, FieldRef, Integrated, Mapping};
pub use qi_schema::SchemaTree;

/// Run the complete pipeline of the paper on raw inputs: reduce 1:m
/// matchings to 1:1 (§2.1), merge the schema trees structurally (\[8\]),
/// and assign meaningful labels to every node of the integrated interface
/// (§3–§6).
pub fn integrate_and_label(
    schemas: Vec<SchemaTree>,
    mapping: Mapping,
    lexicon: &Lexicon,
    policy: NamingPolicy,
) -> LabeledInterface {
    integrate_and_label_with(
        schemas,
        mapping,
        lexicon,
        policy,
        qi_runtime::Telemetry::off(),
    )
}

/// [`integrate_and_label`] recording per-phase spans and counters into a
/// telemetry registry (`pipeline.expand`, `pipeline.merge`, plus the
/// labeler's `label.*` spans).
pub fn integrate_and_label_with(
    mut schemas: Vec<SchemaTree>,
    mut mapping: Mapping,
    lexicon: &Lexicon,
    policy: NamingPolicy,
    telemetry: qi_runtime::Telemetry,
) -> LabeledInterface {
    let span = telemetry.span("pipeline.expand");
    expand_one_to_many(&mut schemas, &mut mapping);
    drop(span);
    let span = telemetry.span("pipeline.merge");
    let integrated = qi_merge::merge(&schemas, &mapping);
    drop(span);
    let labeler = Labeler::new(lexicon, policy).with_telemetry(telemetry);
    labeler.label(&schemas, &mapping, &integrated)
}
