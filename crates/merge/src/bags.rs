//! Bag collection: the cluster sets covered by source internal nodes.

use qi_mapping::{ClusterId, FieldRef, Mapping};
use qi_schema::{NodeId, SchemaTree};
use std::collections::{BTreeMap, HashMap};

/// A deduplicated bag: the set of clusters some source internal node's
/// descendant fields map to, plus how many source nodes produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bag {
    /// Sorted cluster ids.
    pub clusters: Vec<ClusterId>,
    /// Number of source internal nodes with exactly this coverage.
    pub frequency: usize,
}

/// Collect the bags of all source internal nodes (root excluded),
/// deduplicated and sorted by (size desc, frequency desc, lexicographic).
/// Bags from internal nodes whose descendants include unmapped fields
/// still contribute the mapped subset.
///
/// **Redundancy filtering.** A bag `B` that is a strict subset of another
/// bag `A` represents real nested structure only when some single source
/// interface contains internal nodes with *both* coverages — i.e. a
/// designer actually drew the distinction. When the subset relation
/// arises merely because different sources cover different numbers of
/// fields of one semantic unit ({Adults, Children} ⊂ {Adults, Children,
/// Infants} ⊂ {Adults, Seniors, Children, Infants}), materializing every
/// bag would wrap the integrated group in gratuitous single-child
/// nesting. Such bags are dropped: their fields attach directly to the
/// enclosing group, which is what the paper's integrated interfaces show
/// (one flat passenger group in Figure 2).
pub fn collect_bags(schemas: &[SchemaTree], mapping: &Mapping) -> Vec<Bag> {
    let mut acc = BagAccumulator::default();
    for (schema_idx, tree) in schemas.iter().enumerate() {
        acc.fold_schema(tree, schema_idx, mapping);
    }
    acc.finalize()
}

/// The per-schema fold underlying [`collect_bags`], split out so the bag
/// multiset can be carried across ingests: folding schemas one at a time
/// and finalizing produces exactly what `collect_bags` produces, and a
/// schema's contribution depends only on its own tree and its own fields'
/// cluster assignments — which an incremental append never changes for
/// old schemas.
#[derive(Debug, Clone, Default)]
pub struct BagAccumulator {
    /// Bag coverage → number of source internal nodes with it.
    freq: BTreeMap<Vec<ClusterId>, usize>,
    /// Per-schema distinct coverages (redundancy co-occurrence test).
    per_schema: Vec<Vec<Vec<ClusterId>>>,
}

impl BagAccumulator {
    /// Number of schemas folded so far.
    pub fn schemas_done(&self) -> usize {
        self.per_schema.len()
    }

    /// Fold one schema's internal nodes. Schemas must be folded in
    /// order, each exactly once.
    pub fn fold_schema(&mut self, tree: &SchemaTree, schema_idx: usize, mapping: &Mapping) {
        assert_eq!(
            self.per_schema.len(),
            schema_idx,
            "schemas must be folded in order"
        );
        // Reverse index restricted to this schema's fields.
        let mut field_cluster: HashMap<NodeId, ClusterId> = HashMap::new();
        for cluster in &mapping.clusters {
            for member in &cluster.members {
                if member.schema == schema_idx {
                    field_cluster.insert(member.node, cluster.id);
                }
            }
        }
        let mut local: Vec<Vec<ClusterId>> = Vec::new();
        for internal in tree.internal_nodes() {
            let mut clusters: Vec<ClusterId> = tree
                .descendant_leaves(internal.id)
                .into_iter()
                .filter_map(|leaf| field_cluster.get(&leaf).copied())
                .collect();
            clusters.sort();
            clusters.dedup();
            if clusters.is_empty() {
                continue;
            }
            *self.freq.entry(clusters.clone()).or_insert(0) += 1;
            if !local.contains(&clusters) {
                local.push(clusters);
            }
        }
        self.per_schema.push(local);
    }

    /// Apply the redundancy filter and sort — the batch tail of
    /// [`collect_bags`]. Does not consume the accumulator, so a cached
    /// fold can be finalized after every append.
    pub fn finalize(&self) -> Vec<Bag> {
        let mut bags: Vec<Bag> = self
            .freq
            .iter()
            .map(|(clusters, &frequency)| Bag {
                clusters: clusters.clone(),
                frequency,
            })
            .collect();
        // Redundancy filter: drop strict-subset bags whose distinction no
        // single source draws.
        let all: Vec<Vec<ClusterId>> = bags.iter().map(|b| b.clusters.clone()).collect();
        bags.retain(|b| {
            let supersets: Vec<&Vec<ClusterId>> = all
                .iter()
                .filter(|a| {
                    a.len() > b.clusters.len()
                        && b.clusters.iter().all(|c| a.binary_search(c).is_ok())
                })
                .collect();
            if supersets.is_empty() {
                return true; // maximal bag
            }
            supersets.iter().any(|a| {
                self.per_schema
                    .iter()
                    .any(|local| local.contains(&b.clusters) && local.contains(a))
            })
        });
        bags.sort_by(|a, b| {
            b.clusters
                .len()
                .cmp(&a.clusters.len())
                .then(b.frequency.cmp(&a.frequency))
                .then(a.clusters.cmp(&b.clusters))
        });
        bags
    }
}

/// The bag of one specific internal node of one schema (used by the
/// labeler's candidate-label search).
pub fn bag_of_node(
    tree: &SchemaTree,
    schema_idx: usize,
    internal: NodeId,
    mapping: &Mapping,
) -> Vec<ClusterId> {
    let mut clusters: Vec<ClusterId> = tree
        .descendant_leaves(internal)
        .into_iter()
        .filter_map(|leaf| {
            mapping
                .clusters
                .iter()
                .find(|c| c.members.contains(&FieldRef::new(schema_idx, leaf)))
                .map(|c| c.id)
        })
        .collect();
    clusters.sort();
    clusters.dedup();
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;
    use qi_schema::spec::{leaf, node};

    #[test]
    fn bags_are_deduped_counted_and_sorted() {
        let a = SchemaTree::build("a", vec![node("G", vec![leaf("X"), leaf("Y")])]).unwrap();
        let b = SchemaTree::build(
            "b",
            vec![
                node("H", vec![leaf("X"), leaf("Y"), leaf("Z")]),
                node("K", vec![leaf("W")]),
            ],
        )
        .unwrap();
        let c = SchemaTree::build("c", vec![node("G2", vec![leaf("X"), leaf("Y")])]).unwrap();
        let schemas = vec![a, b, c];
        let f = |s: usize, l: &str| {
            let t = &schemas[s];
            let id = t
                .descendant_leaves(NodeId::ROOT)
                .into_iter()
                .find(|&x| t.node(x).label_str() == l)
                .unwrap();
            FieldRef::new(s, id)
        };
        let mapping = Mapping::from_clusters(vec![
            ("c_X".to_string(), vec![f(0, "X"), f(1, "X"), f(2, "X")]),
            ("c_Y".to_string(), vec![f(0, "Y"), f(1, "Y"), f(2, "Y")]),
            ("c_Z".to_string(), vec![f(1, "Z")]),
            ("c_W".to_string(), vec![f(1, "W")]),
        ]);
        let bags = collect_bags(&schemas, &mapping);
        // {X,Y} ⊂ {X,Y,Z} and no single source draws the distinction, so
        // {X,Y} is filtered as redundant coverage variation.
        assert_eq!(bags.len(), 2);
        assert_eq!(bags[0].clusters.len(), 3);
        assert_eq!(bags[0].frequency, 1);
        assert_eq!(bags[1].clusters.len(), 1);
    }

    #[test]
    fn nested_bags_kept_when_one_source_draws_the_distinction() {
        let a = SchemaTree::build(
            "a",
            vec![node(
                "Outer",
                vec![node("Inner", vec![leaf("X"), leaf("Y")]), leaf("Z")],
            )],
        )
        .unwrap();
        let schemas = vec![a];
        let f = |l: &str| {
            let t = &schemas[0];
            let id = t
                .descendant_leaves(NodeId::ROOT)
                .into_iter()
                .find(|&x| t.node(x).label_str() == l)
                .unwrap();
            FieldRef::new(0, id)
        };
        let mapping = Mapping::from_clusters(vec![
            ("c_X".to_string(), vec![f("X")]),
            ("c_Y".to_string(), vec![f("Y")]),
            ("c_Z".to_string(), vec![f("Z")]),
        ]);
        let bags = collect_bags(&schemas, &mapping);
        assert_eq!(bags.len(), 2); // Outer {X,Y,Z} and Inner {X,Y} both kept
    }

    #[test]
    fn unmapped_fields_are_skipped() {
        let a = SchemaTree::build("a", vec![node("G", vec![leaf("X"), leaf("Y")])]).unwrap();
        let schemas = [a];
        let x = {
            let t = &schemas[0];
            let id = t
                .descendant_leaves(NodeId::ROOT)
                .into_iter()
                .find(|&l| t.node(l).label_str() == "X")
                .unwrap();
            FieldRef::new(0, id)
        };
        let mapping = Mapping::from_clusters(vec![("c_X".to_string(), vec![x])]);
        let bags = collect_bags(&schemas, &mapping);
        assert_eq!(bags.len(), 1);
        assert_eq!(bags[0].clusters.len(), 1);
    }

    #[test]
    fn bag_of_node_matches_collect() {
        let a = SchemaTree::build("a", vec![node("G", vec![leaf("X"), leaf("Y")])]).unwrap();
        let schemas = [a];
        let f = |l: &str| {
            let t = &schemas[0];
            let id = t
                .descendant_leaves(NodeId::ROOT)
                .into_iter()
                .find(|&x| t.node(x).label_str() == l)
                .unwrap();
            FieldRef::new(0, id)
        };
        let mapping = Mapping::from_clusters(vec![
            ("c_X".to_string(), vec![f("X")]),
            ("c_Y".to_string(), vec![f("Y")]),
        ]);
        let g = schemas[0].internal_nodes().next().unwrap().id;
        let bag = bag_of_node(&schemas[0], 0, g, &mapping);
        assert_eq!(bag, vec![ClusterId(0), ClusterId(1)]);
    }
}
