//! Carryable merge state: the per-schema folds behind [`crate::merge`],
//! cached so an appended interface re-merges in O(new schema + tree)
//! instead of O(domain).
//!
//! [`crate::merge`] is three steps: fold every schema into a bag multiset
//! ([`BagAccumulator`]), fold every member field into per-cluster
//! position sums ([`PositionAccumulator`]), then finalize (redundancy
//! filter, laminar family, tree emission). Both folds are per-schema
//! sums, and an incremental append — old clusters keep their ids, new
//! members land at the tails of member lists — leaves every old schema's
//! contribution unchanged. So [`MergeState`] caches the folds,
//! [`MergeState::extend`] adds only the newly appended schemas, and
//! [`MergeState::finish`] replays the batch tail. `merge` itself is
//! `capture(..).finish(..)`, which makes `extend` + `finish` equivalent
//! to a full re-merge by construction rather than by parallel
//! implementation.

use crate::bags::BagAccumulator;
use crate::order::PositionAccumulator;
use crate::{build_laminar_family, build_tree};
use qi_mapping::{ClusterId, Integrated, Mapping};
use qi_schema::SchemaTree;

/// The cached folds of a merged domain.
#[derive(Debug, Clone, Default)]
pub struct MergeState {
    bags: BagAccumulator,
    positions: PositionAccumulator,
}

impl MergeState {
    /// Fold all of `schemas` from scratch.
    pub fn capture(schemas: &[SchemaTree], mapping: &Mapping) -> MergeState {
        let mut state = MergeState::default();
        state.extend(schemas, mapping);
        state
    }

    /// Fold the schemas appended since the last `capture`/`extend`.
    /// `mapping` must extend the previously folded mapping: old clusters
    /// keep their ids and gain members only from the new schemas.
    pub fn extend(&mut self, schemas: &[SchemaTree], mapping: &Mapping) {
        let from = self.bags.schemas_done();
        for (offset, tree) in schemas[from..].iter().enumerate() {
            self.bags.fold_schema(tree, from + offset, mapping);
        }
        self.positions.fold(schemas, mapping);
    }

    /// Number of schemas folded so far.
    pub fn schemas_done(&self) -> usize {
        self.bags.schemas_done()
    }

    /// Run the batch tail: finalize both folds and emit the integrated
    /// tree. Non-consuming, so the state can be finished after every
    /// append.
    pub fn finish(&self, schemas: &[SchemaTree], mapping: &Mapping) -> Integrated {
        let all: Vec<ClusterId> = mapping.clusters.iter().map(|c| c.id).collect();
        let bags = self.bags.finalize();
        let skeleton = build_laminar_family(&bags, all.len());
        let positions = self.positions.finalize();
        build_tree(schemas, mapping, &all, &skeleton, &positions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge;
    use qi_lexicon::Lexicon;
    use qi_schema::spec::{leaf, node};

    fn corpus() -> Vec<SchemaTree> {
        vec![
            SchemaTree::build(
                "a",
                vec![
                    node("Trip", vec![leaf("From"), leaf("To")]),
                    node("Who", vec![leaf("Adults"), leaf("Children")]),
                ],
            )
            .unwrap(),
            SchemaTree::build(
                "b",
                vec![
                    node("Route", vec![leaf("From"), leaf("To")]),
                    leaf("Seniors"),
                ],
            )
            .unwrap(),
        ]
    }

    #[test]
    fn capture_finish_equals_merge() {
        let lexicon = Lexicon::builtin();
        let schemas = corpus();
        let mapping = qi_mapping::match_by_labels(&schemas, &lexicon);
        let batch = merge(&schemas, &mapping);
        let state = MergeState::capture(&schemas, &mapping);
        assert_eq!(state.finish(&schemas, &mapping), batch);
    }

    #[test]
    fn extend_equals_full_remerge() {
        let lexicon = Lexicon::builtin();
        let mut schemas = corpus();
        let base_mapping = qi_mapping::match_by_labels(&schemas, &lexicon);
        let mut state = MergeState::capture(&schemas, &base_mapping);

        // Append two interfaces one at a time: one that joins existing
        // clusters and groups them, one that is all new fields.
        let extras = [
            SchemaTree::build(
                "c",
                vec![
                    node("Journey", vec![leaf("From"), leaf("To")]),
                    leaf("Adults"),
                ],
            )
            .unwrap(),
            SchemaTree::build("d", vec![leaf("Cabin Class"), leaf("Airline")]).unwrap(),
        ];
        for extra in extras {
            schemas.push(extra);
            let mapping = qi_mapping::match_by_labels(&schemas, &lexicon);
            state.extend(&schemas, &mapping);
            assert_eq!(state.schemas_done(), schemas.len());
            assert_eq!(
                state.finish(&schemas, &mapping),
                merge(&schemas, &mapping),
                "incremental merge diverged at {} schemas",
                schemas.len()
            );
        }
    }
}
