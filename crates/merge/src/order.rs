//! Sibling ordering: average normalized positions of fields.

use qi_mapping::{ClusterId, Mapping};
use qi_schema::{NodeId, SchemaTree};
use std::collections::BTreeMap;

/// For every cluster, the average normalized document-order position
/// (0.0 = first field, →1.0 = last field) of its member fields across the
/// source interfaces. Integrated siblings are ordered by this value, so
/// the merged interface reads in the order users saw the fields.
pub fn cluster_positions(schemas: &[SchemaTree], mapping: &Mapping) -> BTreeMap<ClusterId, f64> {
    let mut acc = PositionAccumulator::default();
    acc.fold(schemas, mapping);
    acc.finalize()
}

/// Per-cluster running `(sum, count)` of member positions — the fold
/// inside [`cluster_positions`], split out so it can be carried across
/// ingests. Because cluster members are stored in global field order,
/// an appended schema's members sit at the tail of each member list;
/// folding them after the cached old sum adds the same terms in the same
/// order, so the resulting `f64` is bit-identical to a batch fold.
#[derive(Debug, Clone, Default)]
pub struct PositionAccumulator {
    /// Schemas folded so far.
    schemas_done: usize,
    /// Cluster → (position sum, member count).
    sums: BTreeMap<ClusterId, (f64, usize)>,
}

impl PositionAccumulator {
    /// Fold the member positions of every schema not yet folded. Every
    /// cluster of `mapping` gains an accumulator entry even when none of
    /// its members belongs to a new schema.
    pub fn fold(&mut self, schemas: &[SchemaTree], mapping: &Mapping) {
        let from = self.schemas_done;
        // Positions of the newly folded schemas' leaves.
        let mut leaf_pos: Vec<BTreeMap<NodeId, f64>> = Vec::with_capacity(schemas.len() - from);
        for tree in &schemas[from..] {
            let leaves = tree.descendant_leaves(NodeId::ROOT);
            let denom = leaves.len().max(1) as f64;
            leaf_pos.push(
                leaves
                    .iter()
                    .enumerate()
                    .map(|(i, &l)| (l, i as f64 / denom))
                    .collect(),
            );
        }
        for cluster in &mapping.clusters {
            let (sum, count) = self.sums.entry(cluster.id).or_insert((0.0, 0));
            for member in &cluster.members {
                if member.schema < from {
                    continue;
                }
                if let Some(&p) = leaf_pos
                    .get(member.schema - from)
                    .and_then(|m| m.get(&member.node))
                {
                    *sum += p;
                    *count += 1;
                }
            }
        }
        self.schemas_done = schemas.len();
    }

    /// The average position per cluster (memberless clusters sort last).
    pub fn finalize(&self) -> BTreeMap<ClusterId, f64> {
        self.sums
            .iter()
            .map(|(&cluster, &(sum, count))| {
                let avg = if count == 0 { 1.0 } else { sum / count as f64 };
                (cluster, avg)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qi_mapping::FieldRef;
    use qi_schema::spec::leaf;

    #[test]
    fn positions_reflect_document_order() {
        let a = SchemaTree::build("a", vec![leaf("X"), leaf("Y"), leaf("Z")]).unwrap();
        let leaves = a.descendant_leaves(NodeId::ROOT);
        let schemas = vec![a];
        let mapping = Mapping::from_clusters(vec![
            ("c_X".to_string(), vec![FieldRef::new(0, leaves[0])]),
            ("c_Y".to_string(), vec![FieldRef::new(0, leaves[1])]),
            ("c_Z".to_string(), vec![FieldRef::new(0, leaves[2])]),
        ]);
        let pos = cluster_positions(&schemas, &mapping);
        assert!(pos[&ClusterId(0)] < pos[&ClusterId(1)]);
        assert!(pos[&ClusterId(1)] < pos[&ClusterId(2)]);
    }

    #[test]
    fn averaging_across_schemas() {
        let a = SchemaTree::build("a", vec![leaf("X"), leaf("Y")]).unwrap();
        let b = SchemaTree::build("b", vec![leaf("Y"), leaf("X")]).unwrap();
        let al = a.descendant_leaves(NodeId::ROOT);
        let bl = b.descendant_leaves(NodeId::ROOT);
        let schemas = vec![a, b];
        let mapping = Mapping::from_clusters(vec![
            (
                "c_X".to_string(),
                vec![FieldRef::new(0, al[0]), FieldRef::new(1, bl[1])],
            ),
            (
                "c_Y".to_string(),
                vec![FieldRef::new(0, al[1]), FieldRef::new(1, bl[0])],
            ),
        ]);
        let pos = cluster_positions(&schemas, &mapping);
        // Both average to 0.25: ties are fine — the merge sorts stably by
        // cluster id through the BTreeMap iteration.
        assert!((pos[&ClusterId(0)] - pos[&ClusterId(1)]).abs() < 1e-9);
    }

    #[test]
    fn memberless_cluster_sorts_last() {
        let a = SchemaTree::build("a", vec![leaf("X")]).unwrap();
        let al = a.descendant_leaves(NodeId::ROOT);
        let schemas = vec![a];
        let mapping = Mapping::from_clusters(vec![
            ("c_X".to_string(), vec![FieldRef::new(0, al[0])]),
            ("c_Empty".to_string(), Vec::<FieldRef>::new()),
        ]);
        let pos = cluster_positions(&schemas, &mapping);
        assert_eq!(pos[&ClusterId(1)], 1.0);
        assert!(pos[&ClusterId(0)] < pos[&ClusterId(1)]);
    }
}
