//! Structural merge of ordered schema trees (the paper's reference \[8\]:
//! Dragut, Wu, Sistla, Yu, Meng — *Merging source query interfaces on web
//! databases*, ICDE 2006).
//!
//! The labeling paper builds on a merge algorithm with two guarantees
//! (§2.3):
//!
//! 1. all ancestor–descendant relationships of the individual schema trees
//!    are preserved (under laminarity constraints), and
//! 2. the grouping constraints are satisfied as much as possible.
//!
//! This crate reproduces that substrate. Every internal node of every
//! source schema contributes a *bag*: the set of clusters its descendant
//! fields map to. The deduplicated bags are arranged into a laminar family
//! greedily (largest, then most frequent, first; partially overlapping
//! bags are dropped), which yields the internal-node skeleton of the
//! integrated tree; every cluster becomes one leaf attached under the
//! smallest bag containing it. Sibling order follows the average
//! normalized position of the member fields on the source interfaces, so
//! the integrated interface reads in the order users saw fields on the
//! sources.
//!
//! The output is an *unlabeled* [`Integrated`] interface — assigning
//! meaningful labels is precisely the job of `qi-core`.
//!
//! # Example
//!
//! ```
//! use qi_schema::{SchemaTree, spec::{leaf, node}};
//! use qi_mapping::{Mapping, FieldRef, expand_one_to_many};
//! use qi_merge::merge;
//!
//! let a = SchemaTree::build("a", vec![node("Trip", vec![leaf("From"), leaf("To")])]).unwrap();
//! let b = SchemaTree::build("b", vec![leaf("Departing from"), leaf("Going to")]).unwrap();
//! let (al, bl) = (
//!     a.descendant_leaves(qi_schema::NodeId::ROOT),
//!     b.descendant_leaves(qi_schema::NodeId::ROOT),
//! );
//! let mut mapping = Mapping::from_clusters(vec![
//!     ("c_From".into(), vec![FieldRef::new(0, al[0]), FieldRef::new(1, bl[0])]),
//!     ("c_To".into(),   vec![FieldRef::new(0, al[1]), FieldRef::new(1, bl[1])]),
//! ]);
//! let mut schemas = vec![a, b];
//! expand_one_to_many(&mut schemas, &mut mapping);
//! let integrated = merge(&schemas, &mapping);
//! assert_eq!(integrated.tree.leaves().count(), 2);
//! // The "Trip" grouping of schema `a` covers *all* clusters, so it
//! // coincides with the integrated root rather than adding a redundant
//! // single wrapper group.
//! assert_eq!(integrated.tree.internal_nodes().count(), 0);
//! ```

pub mod bags;
pub mod order;
pub mod state;

use bags::Bag;
use qi_mapping::{ClusterId, Integrated, Mapping};
use qi_schema::{NodeId, SchemaTree, Widget};
pub use state::MergeState;
use std::collections::BTreeMap;

/// Merge the source schemas into an integrated interface.
///
/// Expects a 1:1 mapping (run [`qi_mapping::expand_one_to_many`] first);
/// violations are a caller bug and panic in debug builds via the
/// validation inside `collect_bags`.
pub fn merge(schemas: &[SchemaTree], mapping: &Mapping) -> Integrated {
    MergeState::capture(schemas, mapping).finish(schemas, mapping)
}

/// One node of the laminar skeleton: a bag and its children (indices into
/// the skeleton vector). Index 0 is the implicit root (all clusters).
#[derive(Debug, Clone)]
struct SkeletonNode {
    clusters: Vec<ClusterId>,
    children: Vec<usize>,
}

/// Greedily arrange the bags into a laminar family under an implicit root.
fn build_laminar_family(bags: &[Bag], total_clusters: usize) -> Vec<SkeletonNode> {
    let mut skeleton = vec![SkeletonNode {
        clusters: Vec::new(), // root: represents "everything"
        children: Vec::new(),
    }];
    for bag in bags {
        // A bag covering every cluster coincides with the root.
        if bag.clusters.len() >= total_clusters {
            continue;
        }
        insert_bag(&mut skeleton, bag);
    }
    skeleton
}

/// Insert a bag under the smallest node that contains it, unless it
/// partially overlaps an existing sibling (laminarity conflict → the bag
/// is dropped: "grouping constraints satisfied as much as possible").
fn insert_bag(skeleton: &mut Vec<SkeletonNode>, bag: &Bag) {
    let mut parent = 0usize;
    loop {
        let mut descended = false;
        for &child in &skeleton[parent].children {
            let child_set = &skeleton[child].clusters;
            if contains(child_set, &bag.clusters) {
                parent = child;
                descended = true;
                break;
            }
        }
        if !descended {
            break;
        }
    }
    // Check overlap with the chosen parent's children.
    for &child in &skeleton[parent].children {
        if overlaps_partially(&skeleton[child].clusters, &bag.clusters) {
            return; // conflict — drop this bag
        }
    }
    // Equal to an existing child? (bags are deduped, but a child could
    // equal the bag if inserted via a different path) — drop.
    if skeleton[parent]
        .children
        .iter()
        .any(|&c| skeleton[c].clusters == bag.clusters)
    {
        return;
    }
    let idx = skeleton.len();
    skeleton.push(SkeletonNode {
        clusters: bag.clusters.clone(),
        children: Vec::new(),
    });
    // Children of `parent` that are subsets of the new bag move under it.
    let (moved, kept): (Vec<usize>, Vec<usize>) = skeleton[parent]
        .children
        .clone()
        .into_iter()
        .partition(|&c| contains(&bag.clusters, &skeleton[c].clusters));
    skeleton[parent].children = kept;
    skeleton[idx].children = moved;
    skeleton[parent].children.push(idx);
}

/// `outer ⊇ inner` on sorted cluster vectors.
fn contains(outer: &[ClusterId], inner: &[ClusterId]) -> bool {
    inner.iter().all(|c| outer.binary_search(c).is_ok())
}

/// Non-empty intersection without containment either way.
fn overlaps_partially(a: &[ClusterId], b: &[ClusterId]) -> bool {
    let inter = a.iter().filter(|c| b.binary_search(c).is_ok()).count();
    inter > 0 && inter < a.len() && inter < b.len()
}

/// Materialize the integrated [`SchemaTree`] from the skeleton.
fn build_tree(
    schemas: &[SchemaTree],
    mapping: &Mapping,
    all: &[ClusterId],
    skeleton: &[SkeletonNode],
    positions: &BTreeMap<ClusterId, f64>,
) -> Integrated {
    // Attach every cluster to the smallest skeleton node containing it.
    let mut attach: BTreeMap<ClusterId, usize> = BTreeMap::new();
    for &cluster in all {
        let mut node = 0usize;
        loop {
            let next = skeleton[node]
                .children
                .iter()
                .copied()
                .find(|&c| skeleton[c].clusters.binary_search(&cluster).is_ok());
            match next {
                Some(n) => node = n,
                None => break,
            }
        }
        attach.insert(cluster, node);
    }
    let mut tree = SchemaTree::new("integrated");
    let mut leaf_cluster: BTreeMap<NodeId, ClusterId> = BTreeMap::new();
    emit(
        0,
        NodeId::ROOT,
        schemas,
        mapping,
        skeleton,
        &attach,
        positions,
        &mut tree,
        &mut leaf_cluster,
    );
    Integrated { tree, leaf_cluster }
}

/// Child of a skeleton node during ordering: either a sub-skeleton node or
/// a directly attached cluster leaf.
enum Child {
    Skeleton(usize),
    Leaf(ClusterId),
}

#[allow(clippy::too_many_arguments)]
fn emit(
    skeleton_idx: usize,
    parent: NodeId,
    schemas: &[SchemaTree],
    mapping: &Mapping,
    skeleton: &[SkeletonNode],
    attach: &BTreeMap<ClusterId, usize>,
    positions: &BTreeMap<ClusterId, f64>,
    tree: &mut SchemaTree,
    leaf_cluster: &mut BTreeMap<NodeId, ClusterId>,
) {
    let mut children: Vec<(f64, Child)> = Vec::new();
    for &sub in &skeleton[skeleton_idx].children {
        let pos = skeleton[sub]
            .clusters
            .iter()
            .filter_map(|c| positions.get(c))
            .fold(f64::INFINITY, |a, &b| a.min(b));
        children.push((pos, Child::Skeleton(sub)));
    }
    for (&cluster, &at) in attach {
        if at == skeleton_idx {
            let pos = positions.get(&cluster).copied().unwrap_or(1.0);
            children.push((pos, Child::Leaf(cluster)));
        }
    }
    children.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    for (_, child) in children {
        match child {
            Child::Skeleton(sub) => {
                let id = tree.add_internal(parent, None);
                emit(
                    sub,
                    id,
                    schemas,
                    mapping,
                    skeleton,
                    attach,
                    positions,
                    tree,
                    leaf_cluster,
                );
            }
            Child::Leaf(cluster) => {
                let (widget, instances) = leaf_payload(schemas, mapping, cluster);
                let id = tree.add_leaf_full(parent, None, widget, instances);
                leaf_cluster.insert(id, cluster);
            }
        }
    }
}

/// Widget and instance domain for an integrated leaf: the most common
/// member widget and the union of member instance domains (the domain
/// computation of \[12\], which the paper defers to).
fn leaf_payload(
    schemas: &[SchemaTree],
    mapping: &Mapping,
    cluster: ClusterId,
) -> (Widget, Vec<String>) {
    let mut widget_votes: BTreeMap<&'static str, (usize, Widget)> = BTreeMap::new();
    let mut instances: Vec<String> = Vec::new();
    for member in &mapping.cluster(cluster).members {
        let node = schemas[member.schema].node(member.node);
        if let qi_schema::NodeKind::Leaf {
            widget,
            instances: inst,
        } = &node.kind
        {
            let key = match widget {
                Widget::TextBox => "text",
                Widget::SelectList => "select",
                Widget::RadioButtons => "radio",
                Widget::CheckBoxes => "check",
            };
            let entry = widget_votes.entry(key).or_insert((0, *widget));
            entry.0 += 1;
            for i in inst {
                if !instances.contains(i) {
                    instances.push(i.clone());
                }
            }
        }
    }
    let widget = widget_votes
        .values()
        .max_by_key(|(count, _)| *count)
        .map(|&(_, w)| w)
        .unwrap_or_default();
    (widget, instances)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qi_mapping::FieldRef;
    use qi_schema::spec::{leaf, node, select};

    fn field(schemas: &[SchemaTree], schema: usize, label: &str) -> FieldRef {
        let tree = &schemas[schema];
        let id = tree
            .descendant_leaves(NodeId::ROOT)
            .into_iter()
            .find(|&l| tree.node(l).label_str() == label)
            .unwrap_or_else(|| panic!("{label} not in schema {schema}"));
        FieldRef::new(schema, id)
    }

    /// Two airline-ish schemas with compatible grouping.
    fn sample() -> (Vec<SchemaTree>, Mapping) {
        let a = SchemaTree::build(
            "a",
            vec![
                node("Trip", vec![leaf("From"), leaf("To")]),
                node("Who", vec![leaf("Adults"), leaf("Children")]),
            ],
        )
        .unwrap();
        let b = SchemaTree::build(
            "b",
            vec![
                node("Route", vec![leaf("Departing from"), leaf("Going to")]),
                leaf("Seniors"),
            ],
        )
        .unwrap();
        let schemas = vec![a, b];
        let mapping = Mapping::from_clusters(vec![
            (
                "c_From".to_string(),
                vec![
                    field(&schemas, 0, "From"),
                    field(&schemas, 1, "Departing from"),
                ],
            ),
            (
                "c_To".to_string(),
                vec![field(&schemas, 0, "To"), field(&schemas, 1, "Going to")],
            ),
            ("c_Adult".to_string(), vec![field(&schemas, 0, "Adults")]),
            ("c_Child".to_string(), vec![field(&schemas, 0, "Children")]),
            ("c_Senior".to_string(), vec![field(&schemas, 1, "Seniors")]),
        ]);
        (schemas, mapping)
    }

    #[test]
    fn merge_preserves_groups() {
        let (schemas, mapping) = sample();
        mapping.validate(&schemas).unwrap();
        let integrated = merge(&schemas, &mapping);
        assert_eq!(integrated.tree.leaves().count(), 5);
        let partition = integrated.partition();
        // {From,To} group; {Adults,Children,Seniors}? Seniors is grouped
        // with Adults/Children only if some source groups it with them —
        // none does, so it lands at the root.
        assert_eq!(partition.groups.len(), 2);
        let mut sizes: Vec<usize> = partition.groups.iter().map(|g| g.clusters.len()).collect();
        sizes.sort();
        assert_eq!(sizes, vec![2, 2]);
        assert_eq!(partition.root.len(), 1);
    }

    #[test]
    fn merge_keeps_source_field_order() {
        let (schemas, mapping) = sample();
        let integrated = merge(&schemas, &mapping);
        let leaves = integrated.tree.descendant_leaves(NodeId::ROOT);
        let concepts: Vec<&str> = leaves
            .iter()
            .map(|&l| {
                let c = integrated.cluster_of_leaf(l).unwrap();
                mapping.cluster(c).concept.as_str()
            })
            .collect();
        // Trip fields first (they come first on both sources), then the
        // passenger fields.
        assert_eq!(concepts[0], "c_From");
        assert_eq!(concepts[1], "c_To");
    }

    #[test]
    fn ancestor_descendant_preserved() {
        // Schema with nested structure: Where > (City, State); a second
        // flat schema must not break the nesting.
        let a = SchemaTree::build(
            "a",
            vec![node(
                "Where",
                vec![node("Fine", vec![leaf("City")]), leaf("State")],
            )],
        )
        .unwrap();
        let b = SchemaTree::build("b", vec![leaf("City"), leaf("State"), leaf("Price")]).unwrap();
        let schemas = vec![a, b];
        let mapping = Mapping::from_clusters(vec![
            (
                "c_City".to_string(),
                vec![field(&schemas, 0, "City"), field(&schemas, 1, "City")],
            ),
            (
                "c_State".to_string(),
                vec![field(&schemas, 0, "State"), field(&schemas, 1, "State")],
            ),
            ("c_Price".to_string(), vec![field(&schemas, 1, "Price")]),
        ]);
        let integrated = merge(&schemas, &mapping);
        let city = integrated
            .leaf_of_cluster(qi_mapping::ClusterId(0))
            .unwrap();
        let state = integrated
            .leaf_of_cluster(qi_mapping::ClusterId(1))
            .unwrap();
        // City sits strictly deeper than State (Fine ⊂ Where preserved).
        assert!(integrated.tree.node_depth(city) > integrated.tree.node_depth(state));
        // And both are under a common internal node (Where).
        let lca = integrated.tree.lca(&[city, state]);
        assert_ne!(lca, NodeId::ROOT);
    }

    #[test]
    fn conflicting_groupings_drop_smaller_bag() {
        // Schema a groups {X,Y}; schema b groups {Y,Z}: partial overlap.
        let a = SchemaTree::build("a", vec![node("G1", vec![leaf("X"), leaf("Y")])]).unwrap();
        let b = SchemaTree::build("b", vec![node("G2", vec![leaf("Y"), leaf("Z")])]).unwrap();
        let schemas = vec![a, b];
        let mapping = Mapping::from_clusters(vec![
            ("c_X".to_string(), vec![field(&schemas, 0, "X")]),
            (
                "c_Y".to_string(),
                vec![field(&schemas, 0, "Y"), field(&schemas, 1, "Y")],
            ),
            ("c_Z".to_string(), vec![field(&schemas, 1, "Z")]),
        ]);
        let integrated = merge(&schemas, &mapping);
        // Exactly one of the two groupings survives; the third leaf is at
        // the root.
        let partition = integrated.partition();
        assert_eq!(partition.groups.len(), 1);
        assert_eq!(partition.groups[0].clusters.len(), 2);
        assert_eq!(partition.root.len(), 1);
    }

    #[test]
    fn instances_and_widget_are_unioned() {
        let a =
            SchemaTree::build("a", vec![select("Format", &["hardcover", "paperback"])]).unwrap();
        let b = SchemaTree::build("b", vec![select("Binding", &["paperback", "audio"])]).unwrap();
        let schemas = vec![a, b];
        let mapping = Mapping::from_clusters(vec![(
            "c_Format".to_string(),
            vec![field(&schemas, 0, "Format"), field(&schemas, 1, "Binding")],
        )]);
        let integrated = merge(&schemas, &mapping);
        let leaf_id = integrated
            .leaf_of_cluster(qi_mapping::ClusterId(0))
            .unwrap();
        let node = integrated.tree.node(leaf_id);
        assert_eq!(node.instances(), &["hardcover", "paperback", "audio"]);
        match node.kind {
            qi_schema::NodeKind::Leaf { widget, .. } => {
                assert_eq!(widget, Widget::SelectList)
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn merge_of_single_flat_schema_is_flat() {
        let a = SchemaTree::build("a", vec![leaf("X"), leaf("Y")]).unwrap();
        let schemas = vec![a];
        let mapping = Mapping::from_clusters(vec![
            ("c_X".to_string(), vec![field(&schemas, 0, "X")]),
            ("c_Y".to_string(), vec![field(&schemas, 0, "Y")]),
        ]);
        let integrated = merge(&schemas, &mapping);
        assert_eq!(integrated.tree.internal_nodes().count(), 0);
        assert_eq!(integrated.tree.root_leaves().len(), 2);
    }

    #[test]
    fn integrated_leaves_are_unlabeled() {
        let (schemas, mapping) = sample();
        let integrated = merge(&schemas, &mapping);
        for leaf in integrated.tree.leaves() {
            assert!(leaf.label.is_none());
        }
    }
}
