//! Parser for `*.proptest-regressions` corpora.
//!
//! The real crate records every shrunken failure as a line like
//!
//! ```text
//! cc <hash> # shrinks to config = SynthConfig { seed: 47880…, interfaces: 3, … }
//! ```
//!
//! and replays it from the hash before generating novel cases. The
//! shim cannot reproduce inputs from the hash (that needs the original
//! strategy's value tree), but the human-readable comment carries the
//! full shrunken value — so this module parses those struct literals
//! back out, letting a plain `#[test]` replay the committed corpus
//! explicitly.

/// One recorded failure: the shrunken struct's fields, in file order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Case {
    fields: Vec<(String, String)>,
}

impl Case {
    /// Raw text of one field, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(field, _)| field == name)
            .map(|(_, value)| value.as_str())
    }

    /// Parse one field into its typed form; panics (with the field and
    /// value in the message) when missing or malformed — a corrupt
    /// regression corpus should fail loudly, not skip silently.
    pub fn parse<T>(&self, name: &str) -> T
    where
        T: std::str::FromStr,
        T::Err: std::fmt::Debug,
    {
        let raw = self
            .get(name)
            .unwrap_or_else(|| panic!("regression case has no field {name:?}: {self:?}"));
        raw.parse()
            .unwrap_or_else(|err| panic!("field {name} = {raw:?} unparsable: {err:?}"))
    }
}

/// Extract every `type_name { field: value, … }` literal recorded in a
/// regressions file. Lines starting with `#` are comments; any other
/// line may carry one case in its trailing `# shrinks to …` comment.
pub fn parse(contents: &str, type_name: &str) -> Vec<Case> {
    let needle = format!("{type_name} {{");
    let mut cases = Vec::new();
    for line in contents.lines() {
        let trimmed = line.trim();
        if trimmed.starts_with('#') {
            continue;
        }
        let Some(start) = trimmed.find(&needle) else {
            continue;
        };
        let body_start = start + needle.len();
        let Some(length) = brace_span(&trimmed[body_start..]) else {
            continue;
        };
        let body = &trimmed[body_start..body_start + length];
        cases.push(Case {
            fields: split_fields(body)
                .into_iter()
                .filter_map(|field| {
                    let (name, value) = field.split_once(':')?;
                    Some((name.trim().to_string(), value.trim().to_string()))
                })
                .collect(),
        });
    }
    cases
}

/// Length of the text up to the brace closing an already-open literal
/// (depth starts at 1).
fn brace_span(text: &str) -> Option<usize> {
    let mut depth = 1usize;
    for (offset, ch) in text.char_indices() {
        match ch {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(offset);
                }
            }
            _ => {}
        }
    }
    None
}

/// Split a struct body on top-level commas (nested literals stay
/// intact).
fn split_fields(body: &str) -> Vec<&str> {
    let mut fields = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (offset, ch) in body.char_indices() {
        match ch {
            '{' | '[' | '(' => depth += 1,
            '}' | ']' | ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                fields.push(&body[start..offset]);
                start = offset + ch.len_utf8();
            }
            _ => {}
        }
    }
    if !body[start..].trim().is_empty() {
        fields.push(&body[start..]);
    }
    fields
}

#[cfg(test)]
mod tests {
    use super::*;

    const CORPUS: &str = "\
# Seeds for failure cases proptest has generated in the past.
cc deadbeef # shrinks to config = SynthConfig { seed: 42, interfaces: 3, coverage: 0.3 }
cc feedface # shrinks to input = Other { nested: Inner { x: 1 }, flag: true }
";

    #[test]
    fn parses_matching_literals_only() {
        let cases = parse(CORPUS, "SynthConfig");
        assert_eq!(cases.len(), 1);
        assert_eq!(cases[0].get("seed"), Some("42"));
        assert_eq!(cases[0].parse::<usize>("interfaces"), 3);
        assert_eq!(cases[0].parse::<f64>("coverage"), 0.3);
        assert_eq!(cases[0].get("missing"), None);
    }

    #[test]
    fn nested_literals_survive_field_splitting() {
        let cases = parse(CORPUS, "Other");
        assert_eq!(cases.len(), 1);
        assert_eq!(cases[0].get("nested"), Some("Inner { x: 1 }"));
        assert_eq!(cases[0].parse::<bool>("flag"), true);
    }

    #[test]
    fn comment_lines_are_ignored() {
        assert!(parse("# SynthConfig { seed: 1 }", "SynthConfig").is_empty());
    }

    #[test]
    fn real_corpus_shape_round_trips() {
        let line = "cc c213610e # shrinks to config = SynthConfig { seed: 4788076064470418072, \
                    interfaces: 3, concepts: 4, groups: 1, coverage: 0.3, unlabeled_prob: 0.0, \
                    group_label_prob: 0.7 }";
        let cases = parse(line, "SynthConfig");
        assert_eq!(cases.len(), 1);
        assert_eq!(cases[0].parse::<u64>("seed"), 4788076064470418072);
        assert_eq!(cases[0].parse::<f64>("group_label_prob"), 0.7);
    }
}
