//! Value-generation strategies: the [`Strategy`] trait, range / tuple /
//! `any` strategies, `prop_map`, and string generation from a regex
//! subset.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// A recipe for generating values of one type. The shim's version has
/// no value tree and no shrinking: `generate` draws a value directly.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values (the real crate's `prop_map`).
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        O: std::fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, map }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: std::fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.inner.generate(rng))
    }
}

/// Types with a canonical whole-domain strategy (the real crate's
/// `Arbitrary`, reduced to the primitives the suite draws).
pub trait ArbitraryValue: std::fmt::Debug + Sized {
    /// Draw a value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl ArbitraryValue for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl ArbitraryValue for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// The whole-domain strategy for `T` — `any::<u64>()` etc.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % width) as $ty
            }
        }
    )+};
}

int_range_strategy!(usize, u64, u32, u16, u8);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let x = self.start + rng.unit_f64() * (self.end - self.start);
        // Guard against rounding up onto the excluded endpoint.
        x.min(self.end - (self.end - self.start) * f64::EPSILON)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// String-literal strategies: the pattern is a regex subset — atoms are
/// `.`, `[...]` character classes (with ranges) or literal / escaped
/// characters, each optionally quantified with `{m}`, `{m,n}`, `?`,
/// `*` or `+` (the unbounded forms are capped at 8 repetitions). The
/// pattern is parsed on every draw; patterns are tiny and the parse is
/// linear, so this stays far off any hot path.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let count = atom.min + rng.below(atom.max - atom.min + 1);
            for _ in 0..count {
                out.push(atom.set.pick(rng));
            }
        }
        out
    }
}

/// One quantified pattern atom.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Atom {
    set: CharSet,
    min: usize,
    max: usize,
}

/// The characters an atom may produce.
#[derive(Debug, Clone, PartialEq, Eq)]
enum CharSet {
    /// `.` — any character except newline. Draws mostly printable
    /// ASCII, with a deliberate admixture of multi-byte, combining and
    /// control characters so "arbitrary input" properties see hostile
    /// text the way they would under the real crate.
    Dot,
    /// `[...]` — inclusive character ranges (singletons are one-char
    /// ranges).
    Ranges(Vec<(char, char)>),
}

/// Non-ASCII / non-printable specimens `Dot` mixes in.
const HOSTILE_CHARS: &[char] = &[
    'é', 'ß', 'Ω', '中', 'क', '🚀', '\u{0301}', '\u{00a0}', '\u{2028}', '\t', '\u{7}', '\u{1b}',
];

impl CharSet {
    fn pick(&self, rng: &mut TestRng) -> char {
        match self {
            CharSet::Dot => {
                if rng.below(5) == 0 {
                    HOSTILE_CHARS[rng.below(HOSTILE_CHARS.len())]
                } else {
                    // Printable ASCII, space through tilde.
                    char::from(b' ' + rng.below(95) as u8)
                }
            }
            CharSet::Ranges(ranges) => {
                let total: usize = ranges
                    .iter()
                    .map(|(lo, hi)| (*hi as usize) - (*lo as usize) + 1)
                    .sum();
                let mut index = rng.below(total);
                for (lo, hi) in ranges {
                    let size = (*hi as usize) - (*lo as usize) + 1;
                    if index < size {
                        return char::from_u32(*lo as u32 + index as u32)
                            .expect("class range crosses a surrogate");
                    }
                    index -= size;
                }
                unreachable!("index within total")
            }
        }
    }
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set = match chars[i] {
            '.' => {
                i += 1;
                CharSet::Dot
            }
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|offset| i + offset)
                    .unwrap_or_else(|| panic!("unclosed class in pattern {pattern:?}"));
                let set = parse_class(&chars[i + 1..close], pattern);
                i = close + 1;
                set
            }
            '\\' => {
                let literal = *chars
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                i += 2;
                CharSet::Ranges(vec![(literal, literal)])
            }
            literal => {
                i += 1;
                CharSet::Ranges(vec![(literal, literal)])
            }
        };
        let (min, max) = parse_quantifier(&chars, &mut i, pattern);
        atoms.push(Atom { set, min, max });
    }
    atoms
}

fn parse_class(body: &[char], pattern: &str) -> CharSet {
    assert!(!body.is_empty(), "empty class in pattern {pattern:?}");
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            assert!(
                body[i] <= body[i + 2],
                "inverted range in pattern {pattern:?}"
            );
            ranges.push((body[i], body[i + 2]));
            i += 3;
        } else {
            ranges.push((body[i], body[i]));
            i += 1;
        }
    }
    CharSet::Ranges(ranges)
}

/// Cap for the open-ended `*` / `+` quantifiers.
const UNBOUNDED_CAP: usize = 8;

fn parse_quantifier(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
    match chars.get(*i) {
        Some('{') => {
            let close = chars[*i..]
                .iter()
                .position(|&c| c == '}')
                .map(|offset| *i + offset)
                .unwrap_or_else(|| panic!("unclosed quantifier in pattern {pattern:?}"));
            let body: String = chars[*i + 1..close].iter().collect();
            *i = close + 1;
            let parse = |text: &str| -> usize {
                text.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad quantifier {body:?} in pattern {pattern:?}"))
            };
            match body.split_once(',') {
                Some((min, max)) => (parse(min), parse(max)),
                None => (parse(&body), parse(&body)),
            }
        }
        Some('?') => {
            *i += 1;
            (0, 1)
        }
        Some('*') => {
            *i += 1;
            (0, UNBOUNDED_CAP)
        }
        Some('+') => {
            *i += 1;
            (1, UNBOUNDED_CAP)
        }
        _ => (1, 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::new(42)
    }

    #[test]
    fn pattern_parses_the_suite_vocabulary() {
        assert_eq!(
            parse_pattern(".{0,24}"),
            vec![Atom {
                set: CharSet::Dot,
                min: 0,
                max: 24
            }]
        );
        assert_eq!(
            parse_pattern("[A-Za-z ]{1,20}"),
            vec![Atom {
                set: CharSet::Ranges(vec![('A', 'Z'), ('a', 'z'), (' ', ' ')]),
                min: 1,
                max: 20
            }]
        );
        assert_eq!(
            parse_pattern("ab?c+"),
            vec![
                Atom {
                    set: CharSet::Ranges(vec![('a', 'a')]),
                    min: 1,
                    max: 1
                },
                Atom {
                    set: CharSet::Ranges(vec![('b', 'b')]),
                    min: 0,
                    max: 1
                },
                Atom {
                    set: CharSet::Ranges(vec![('c', 'c')]),
                    min: 1,
                    max: UNBOUNDED_CAP
                },
            ]
        );
    }

    #[test]
    fn class_strings_stay_inside_their_class() {
        let mut rng = rng();
        for _ in 0..200 {
            let word = "[a-z]{1,16}".generate(&mut rng);
            assert!((1..=16).contains(&word.len()), "{word:?}");
            assert!(word.bytes().all(|b| b.is_ascii_lowercase()), "{word:?}");
        }
    }

    #[test]
    fn dot_strings_respect_length_and_exclude_newline() {
        let mut rng = rng();
        let mut saw_non_ascii = false;
        for _ in 0..300 {
            let text = ".{0,24}".generate(&mut rng);
            assert!(text.chars().count() <= 24, "{text:?}");
            assert!(!text.contains('\n'), "{text:?}");
            saw_non_ascii |= !text.is_ascii();
        }
        assert!(saw_non_ascii, "Dot never produced hostile characters");
    }

    #[test]
    fn ranges_and_tuples_compose_under_prop_map() {
        let strategy = (any::<u64>(), 3usize..10, 0.3f64..0.9).prop_map(|(s, n, f)| (s, n, f));
        let mut rng = rng();
        for _ in 0..200 {
            let (_, n, f) = strategy.generate(&mut rng);
            assert!((3..10).contains(&n));
            assert!((0.3..0.9).contains(&f), "{f}");
        }
    }

    #[test]
    fn escaped_literals_generate_themselves() {
        let mut rng = rng();
        assert_eq!("\\.\\[x\\]".generate(&mut rng), ".[x]");
    }
}
