//! An offline, zero-dependency stand-in for the [`proptest`] crate.
//!
//! The real crate is unfetchable in this build environment (no registry
//! access), so this shim implements exactly the API subset the
//! workspace's property suite uses, with the same names and shapes:
//!
//! - the [`proptest!`] macro (doc comments, `#[test]`, multiple
//!   `name in strategy` arguments, an optional leading
//!   `#![proptest_config(...)]`),
//! - [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! - [`strategy::Strategy`] with `prop_map`, integer and float range
//!   strategies, tuple strategies, [`strategy::any`], and string
//!   strategies from a regex subset (`.`, character classes, `{m,n}`
//!   quantifiers),
//! - [`test_runner::ProptestConfig`] with `with_cases`,
//! - a [`regressions`] parser for `*.proptest-regressions` corpora, so
//!   shrunken failures recorded by the real crate stay replayable.
//!
//! Deliberate differences from the real crate: case generation is
//! **deterministic** (a fixed-seed SplitMix64 stream per test, so CI
//! runs are reproducible without a persisted seed file) and there is
//! **no shrinking** — on failure the offending inputs are printed
//! verbatim instead. Both trade debugging convenience for a dependency
//! surface of zero.
//!
//! [`proptest`]: https://crates.io/crates/proptest

pub mod regressions;
pub mod strategy;
pub mod test_runner;

/// Everything the property suite imports, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests. Mirrors the real macro's surface: an optional
/// `#![proptest_config(expr)]` header, then `#[test]` functions whose
/// arguments are drawn from strategies (`word in ".{0,24}"`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut runner = $crate::test_runner::TestRunner::new(config);
            runner.run(stringify!($name), |__rng| {
                $(
                    let $arg =
                        $crate::strategy::Strategy::generate(&($strategy), __rng);
                )+
                // Capture the inputs before the body may consume them;
                // without shrinking, the verbatim case is the failure
                // report.
                let mut __case = ::std::string::String::new();
                $(
                    __case.push_str(stringify!($arg));
                    __case.push_str(" = ");
                    __case.push_str(&::std::format!("{:?}; ", $arg));
                )+
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| $body),
                );
                if let ::std::result::Result::Err(panic) = __outcome {
                    ::std::eprintln!(
                        "proptest case failed in {}: {}",
                        stringify!($name),
                        __case
                    );
                    ::std::panic::resume_unwind(panic);
                }
            });
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}

/// Assert inside a property body (plain `assert!` here — the shim has
/// no shrinking machinery to feed a structured failure into).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { ::std::assert!($($args)*) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { ::std::assert_eq!($($args)*) };
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { ::std::assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// The macro compiles a plain default-config block and draws
        /// from range strategies.
        #[test]
        fn ranges_stay_in_bounds(n in 3usize..10, x in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&n));
            prop_assert!((0.25..0.75).contains(&x));
        }

        /// Multiple arguments, trailing comma, and string strategies.
        #[test]
        fn string_strategies_obey_their_patterns(
            word in "[a-z]{1,16}",
            free in ".{0,24}",
        ) {
            prop_assert!((1..=16).contains(&word.chars().count()));
            prop_assert!(word.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!(free.chars().count() <= 24);
            prop_assert!(!free.contains('\n'));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The config header parses; `any` + tuples + `prop_map`
        /// compose the way the synth-config strategy does.
        #[test]
        fn mapped_tuple_strategy(pair in (any::<u64>(), 1usize..5).prop_map(|(s, n)| (s, n * 2))) {
            let (_, doubled) = pair;
            prop_assert!(doubled % 2 == 0);
            prop_assert_ne!(doubled, 0);
        }
    }

    #[test]
    fn cases_are_deterministic_across_runs() {
        let draw = || {
            let mut runner = crate::test_runner::TestRunner::new(ProptestConfig::with_cases(8));
            let mut out = Vec::new();
            runner.run("draw", |rng| {
                out.push(crate::strategy::Strategy::generate(&"[A-Za-z ]{1,20}", rng));
            });
            out
        };
        assert_eq!(draw(), draw());
    }
}
