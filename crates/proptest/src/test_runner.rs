//! The case loop and its deterministic PRNG.

/// How many cases a property runs. Mirrors the real crate's
/// `ProptestConfig` surface (the subset in use: `cases` and
/// [`ProptestConfig::with_cases`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate's default.
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// SplitMix64 — the same zero-dependency generator `qi-runtime` uses,
/// duplicated here so the shim depends on nothing (the real `proptest`
/// is a leaf dependency and this stand-in must be too).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `0..bound` (`0` when the bound is zero).
    pub fn below(&mut self, bound: usize) -> usize {
        if bound == 0 {
            return 0;
        }
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Runs a property over its configured number of cases.
///
/// Every case gets a fresh [`TestRng`] seeded from the test's name and
/// the case index, so (unlike the real crate) runs are reproducible
/// with no persisted seed state, and inserting a case into one test
/// never shifts the stream of another.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// A runner for one property.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Execute `body` once per case.
    pub fn run<F: FnMut(&mut TestRng)>(&mut self, name: &str, mut body: F) {
        for case in 0..self.config.cases {
            let mut rng = TestRng::new(case_seed(name, case));
            body(&mut rng);
        }
    }
}

/// FNV-1a over the test name, mixed with the case index.
fn case_seed(name: &str, case: u32) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash ^ (u64::from(case) << 32 | u64::from(case))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_executes_exactly_cases_times() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(13));
        let mut count = 0;
        runner.run("counting", |_| count += 1);
        assert_eq!(count, 13);
    }

    #[test]
    fn seeds_differ_by_test_and_case() {
        assert_ne!(case_seed("a", 0), case_seed("b", 0));
        assert_ne!(case_seed("a", 0), case_seed("a", 1));
        assert_eq!(case_seed("a", 3), case_seed("a", 3));
    }

    #[test]
    fn unit_f64_stays_in_unit_interval() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let x = rng.unit_f64();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::new(9);
        assert_eq!(rng.below(0), 0);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}
