//! Shared query-execution surface for `GET/POST /query` and `qi query`.
//!
//! Both front doors parse the same compact syntax, execute over the
//! same sorted-artifact stream with one traversal budget, paginate with
//! the same opaque version-pinned cursors, and render the same JSON —
//! this module is that common core, so the CLI and the HTTP handler
//! cannot drift apart.

use crate::artifact::DomainArtifact;
use qi_lexicon::Lexicon;
use qi_query::{
    execute, parse, query_hash, ArtifactView, Budget, Cursor, ExecError, ParseError, QueryMatch,
};
use qi_runtime::json::{Arr, Obj};

/// Page size when the request names none.
pub const DEFAULT_LIMIT: u64 = 100;
/// Hard cap on the requested page size.
pub const MAX_LIMIT: u64 = 1000;
/// Default (and maximum) traversal-node budget per request.
pub const DEFAULT_BUDGET: u64 = 100_000;

/// Pagination and limit parameters of one query request.
#[derive(Debug, Clone)]
pub struct PageParams {
    /// Maximum matches returned in this page.
    pub limit: u64,
    /// Traversal-node budget shared across all scanned domains.
    pub budget: u64,
    /// Opaque cursor from a previous page, if resuming.
    pub cursor: Option<String>,
}

impl Default for PageParams {
    fn default() -> Self {
        PageParams {
            limit: DEFAULT_LIMIT,
            budget: DEFAULT_BUDGET,
            cursor: None,
        }
    }
}

/// Why a query request failed; each variant maps to one HTTP status.
#[derive(Debug)]
pub enum QueryError {
    /// Syntax or length error → 400.
    Parse(ParseError),
    /// Undecodable cursor, or one issued for a different query → 400.
    BadCursor(&'static str),
    /// A well-formed cursor whose domain was swapped or removed since
    /// the page was cut → 410 Gone (re-issue the query without it).
    StaleCursor,
    /// Traversal budget exhausted before the walk finished → 422.
    BudgetExhausted {
        /// The budget that ran out.
        limit: u64,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Parse(err) => write!(f, "bad query: {err}"),
            QueryError::BadCursor(why) => write!(f, "bad cursor: {why}"),
            QueryError::StaleCursor => write!(
                f,
                "cursor is stale: the snapshot it was reading has been replaced"
            ),
            QueryError::BudgetExhausted { limit } => {
                write!(f, "traversal budget of {limit} nodes exhausted")
            }
        }
    }
}

/// One page of query results.
#[derive(Debug)]
pub struct QueryPage {
    /// Canonical rendering of the executed query.
    pub canonical: String,
    /// The matches of this page, in (slug, preorder) stream order.
    pub matches: Vec<QueryMatch>,
    /// Cursor resuming after the last match, when more exist.
    pub next_cursor: Option<String>,
    /// Tree nodes visited while producing this page.
    pub scanned: u64,
}

/// The query engine's borrowed view over one artifact. `domain` should
/// be the artifact's slug so match output, `in` scopes and cursors all
/// speak the same identifier the URLs do.
pub fn view_of<'a>(artifact: &'a DomainArtifact, domain: &'a str) -> ArtifactView<'a> {
    ArtifactView {
        domain,
        tree: &artifact.labeled,
        decisions: &artifact.decisions,
        symbols: &artifact.symbols,
        normalized: &artifact.normalized,
    }
}

/// Parse and execute `text` over `artifacts` (which must be sorted by
/// slug — the store's `BTreeMap` order), producing one page.
pub fn run_query(
    artifacts: &[&DomainArtifact],
    lexicon: &Lexicon,
    text: &str,
    params: &PageParams,
) -> Result<QueryPage, QueryError> {
    let query = parse(text).map_err(QueryError::Parse)?;
    let canonical = query.to_string();
    let qhash = query_hash(&canonical);
    let cursor = match &params.cursor {
        Some(text) => {
            let cursor = Cursor::decode(text)
                .map_err(|_| QueryError::BadCursor("cursor is not decodable"))?;
            if cursor.qhash != qhash {
                return Err(QueryError::BadCursor(
                    "cursor was issued for a different query",
                ));
            }
            Some(cursor)
        }
        None => None,
    };

    let mut budget = Budget::new(params.budget);
    let mut matches: Vec<QueryMatch> = Vec::new();
    let mut next_cursor = None;
    // The cursor names the domain the previous page stopped in; it must
    // still be served at the exact version the stream was reading.
    let mut cursor_domain_seen = cursor.is_none();
    let slugs: Vec<String> = artifacts.iter().map(|a| a.slug()).collect();
    'stream: for (artifact, slug) in artifacts.iter().zip(&slugs) {
        let skip = match &cursor {
            Some(c) if slug.as_str() < c.slug.as_str() => continue,
            Some(c) if *slug == c.slug => {
                if artifact.version != c.version {
                    return Err(QueryError::StaleCursor);
                }
                cursor_domain_seen = true;
                c.offset as usize
            }
            _ => 0,
        };
        let domain_matches = execute(&query, view_of(artifact, slug), lexicon, &mut budget)
            .map_err(
                |ExecError::BudgetExhausted { limit }| QueryError::BudgetExhausted { limit },
            )?;
        for (index, matched) in domain_matches.into_iter().enumerate() {
            if index < skip {
                continue;
            }
            if matches.len() as u64 == params.limit {
                next_cursor = Some(
                    Cursor {
                        qhash,
                        slug: slug.clone(),
                        version: artifact.version,
                        offset: index as u64,
                    }
                    .encode(),
                );
                break 'stream;
            }
            matches.push(matched);
        }
    }
    if !cursor_domain_seen {
        return Err(QueryError::StaleCursor);
    }
    Ok(QueryPage {
        canonical,
        matches,
        next_cursor,
        scanned: budget.spent(),
    })
}

/// Render one page as the wire JSON shared by `/query` and `qi query`.
pub fn page_json(page: &QueryPage) -> String {
    let mut arr = Arr::new();
    for matched in &page.matches {
        arr.raw(match_json(matched));
    }
    let mut obj = Obj::new();
    obj.str("query", &page.canonical);
    obj.u64("count", page.matches.len() as u64);
    obj.u64("scanned", page.scanned);
    obj.raw("matches", arr.finish());
    if let Some(cursor) = &page.next_cursor {
        obj.str("next_cursor", cursor);
    }
    obj.finish()
}

fn match_json(matched: &QueryMatch) -> String {
    let mut obj = Obj::new();
    obj.str("domain", &matched.domain);
    obj.u64("node", matched.node as u64);
    obj.str("path", &matched.path);
    match &matched.label {
        Some(label) => obj.str("label", label),
        None => obj.raw("label", "null"),
    };
    obj.str("kind", matched.kind);
    match &matched.rule {
        Some(rule) => obj.str("rule", rule),
        None => obj.raw("rule", "null"),
    };
    if let Some(trail) = &matched.trail {
        let mut ids = Arr::new();
        for &id in trail {
            ids.raw(id.to_string());
        }
        obj.raw("trail", ids.finish());
    }
    obj.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::build_corpus_artifacts;
    use qi_core::NamingPolicy;
    use qi_runtime::Telemetry;

    fn corpus() -> (Vec<DomainArtifact>, Lexicon) {
        let lexicon = Lexicon::builtin();
        let artifacts =
            build_corpus_artifacts(&lexicon, NamingPolicy::default(), &Telemetry::off());
        (artifacts, lexicon)
    }

    fn sorted<'a>(artifacts: &'a [DomainArtifact]) -> Vec<&'a DomainArtifact> {
        let mut refs: Vec<&DomainArtifact> = artifacts.iter().collect();
        refs.sort_by_key(|a| a.slug());
        refs
    }

    #[test]
    fn pagination_concatenates_to_the_full_stream() {
        let (artifacts, lexicon) = corpus();
        let refs = sorted(&artifacts);
        let all = PageParams {
            limit: u64::MAX,
            ..PageParams::default()
        };
        let full = run_query(&refs, &lexicon, "find fields", &all).unwrap();
        assert!(full.next_cursor.is_none());
        assert!(full.matches.len() > 20, "corpus has many fields");

        let mut paged: Vec<QueryMatch> = Vec::new();
        let mut cursor: Option<String> = None;
        let mut pages = 0;
        loop {
            let params = PageParams {
                limit: 7,
                cursor: cursor.take(),
                ..PageParams::default()
            };
            let page = run_query(&refs, &lexicon, "find fields", &params).unwrap();
            assert!(page.matches.len() <= 7);
            paged.extend(page.matches);
            pages += 1;
            match page.next_cursor {
                Some(next) => cursor = Some(next),
                None => break,
            }
        }
        assert!(pages > 2);
        assert_eq!(paged, full.matches, "paged stream equals the full stream");
    }

    #[test]
    fn cursor_for_a_different_query_is_rejected() {
        let (artifacts, lexicon) = corpus();
        let refs = sorted(&artifacts);
        let params = PageParams {
            limit: 3,
            ..PageParams::default()
        };
        let page = run_query(&refs, &lexicon, "find fields", &params).unwrap();
        let cursor = page.next_cursor.expect("more than 3 fields");
        let params = PageParams {
            cursor: Some(cursor),
            ..PageParams::default()
        };
        assert!(matches!(
            run_query(&refs, &lexicon, "find groups", &params),
            Err(QueryError::BadCursor(_))
        ));
        let params = PageParams {
            cursor: Some("zz".into()),
            ..PageParams::default()
        };
        assert!(matches!(
            run_query(&refs, &lexicon, "find fields", &params),
            Err(QueryError::BadCursor(_))
        ));
    }

    #[test]
    fn version_swap_invalidates_cursors() {
        let (mut artifacts, lexicon) = corpus();
        let params = PageParams {
            limit: 3,
            ..PageParams::default()
        };
        let cursor = {
            let refs = sorted(&artifacts);
            run_query(&refs, &lexicon, "find fields", &params)
                .unwrap()
                .next_cursor
                .expect("more than 3 fields")
        };
        // A snapshot swap bumps every artifact version.
        for artifact in &mut artifacts {
            artifact.version += 1;
        }
        let refs = sorted(&artifacts);
        let params = PageParams {
            cursor: Some(cursor),
            ..PageParams::default()
        };
        assert!(matches!(
            run_query(&refs, &lexicon, "find fields", &params),
            Err(QueryError::StaleCursor)
        ));
    }

    #[test]
    fn budget_exhaustion_maps_to_a_typed_error() {
        let (artifacts, lexicon) = corpus();
        let refs = sorted(&artifacts);
        let params = PageParams {
            budget: 1,
            ..PageParams::default()
        };
        assert!(matches!(
            run_query(&refs, &lexicon, "find fields", &params),
            Err(QueryError::BudgetExhausted { limit: 1 })
        ));
    }

    #[test]
    fn page_json_shape() {
        let (artifacts, lexicon) = corpus();
        let refs = sorted(&artifacts);
        let params = PageParams {
            limit: 2,
            ..PageParams::default()
        };
        let page = run_query(&refs, &lexicon, "path to fields", &params).unwrap();
        let json = page_json(&page);
        assert!(json.contains("\"query\":\"path to fields\""));
        assert!(json.contains("\"count\":2"));
        assert!(json.contains("\"trail\":["));
        assert!(json.contains("\"next_cursor\":\""));
    }
}
