//! Zero-dependency HTTP/1.1 server over the artifact [`Store`]: a
//! readiness event loop with keep-alive, pipelining and hot reload.
//!
//! # Architecture
//!
//! One *reactor* thread owns every socket. It runs a level-triggered
//! [`qi_runtime::netpoll`] loop over a nonblocking `TcpListener` and a
//! slab of nonblocking connections, parses HTTP/1.1 incrementally from
//! per-connection buffers ([`crate::http::RequestBuf`] — partial
//! reads, pipelined requests and keep-alive all fall out of the same
//! parser), and hands complete requests to a fixed worker pool through
//! a bounded [`JobQueue`]. Workers route and render responses, then
//! push the serialized bytes onto a completion queue and wake the
//! reactor, which splices them into the owning connection's write
//! buffer *in request order* (pipelined responses may complete out of
//! order; a per-connection sequence number restores FIFO) and writes
//! them back under writable readiness.
//!
//! Connection lifecycle: HTTP/1.1 requests keep the connection open by
//! default (`Connection: close`, HTTP/1.0, a parse error, or the
//! per-connection request cap end it); idle connections are closed
//! after [`ServerConfig::idle_timeout_ms`], half-sent requests after
//! [`ServerConfig::read_timeout_ms`] (with a `408`), and stalled
//! writers after [`ServerConfig::write_timeout_ms`]. When the request
//! queue is full the offending request is answered `503` directly from
//! the reactor (the connection survives — shedding is per request, not
//! per connection), and beyond [`ServerConfig::max_connections`] new
//! accepts are refused outright.
//!
//! Shutdown is graceful: the listener closes, already-parsed requests
//! finish and their responses flush, then the queue closes and the
//! workers drain.
//!
//! # Per-request observability
//!
//! Every request gets a monotonic id, echoed back in an
//! `x-qi-request-id` response header. Queue time is measured from
//! dispatch to worker pickup (`serve.queue.wait` histogram,
//! `serve.queue.depth` gauge); handler time feeds a per-route
//! `serve.http.{route}` span + latency histogram. Connection-level
//! counters: `serve.conn.accepted`, `serve.conn.reused` (requests
//! beyond a connection's first), `serve.conn.pipelined` (requests
//! parsed behind another in one read event), `serve.conn.idle_closed`,
//! `serve.conn.rejected`. With [`ServerConfig::access_log`] set, one
//! structured line per request is written to stderr or an append-only
//! file; with [`ServerConfig::slow_ms`] set, requests over the
//! threshold additionally log their full per-stage span breakdown.

use crate::artifact::DomainArtifact;
use crate::http::{Request, RequestError, Response};
use crate::queryapi::{self, PageParams, QueryError};
use crate::store::{CacheEntry, Store};
use qi_query::Cursor;
use qi_runtime::json::{Arr, Obj};
use qi_runtime::netpoll::{self, PollFd, Waker};
use qi_runtime::{
    resolve_threads, Category, EventRecorder, JobQueue, Severity, Telemetry, TimeSeries,
};
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Ceiling on requests a single connection may have in flight (queued
/// or executing) before the reactor stops parsing more of its buffer —
/// per-connection backpressure so one pipelining client cannot occupy
/// the whole worker queue.
const MAX_INFLIGHT_PER_CONN: usize = 64;

/// Stop buffering a connection's input beyond this many bytes while it
/// is at its in-flight cap.
const MAX_BUFFERED_INPUT: usize = 256 * 1024;

/// How long a closed-but-undrained connection may absorb stray request
/// bytes before being dropped (avoids an RST discarding the response).
const DRAIN_WINDOW: Duration = Duration::from_millis(250);

/// Byte budget for that drain.
const DRAIN_BUDGET: usize = 1 << 20;

/// Tunables of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` picks an ephemeral port.
    pub addr: String,
    /// Worker threads (`0` → [`resolve_threads`] default, floored at 2
    /// so one slow ingest cannot starve every cached read).
    pub threads: usize,
    /// Bounded request queue depth; beyond it requests are shed with
    /// `503`.
    pub queue_depth: usize,
    /// Cap on request bodies, in bytes.
    pub max_body: usize,
    /// How long a partially received request may sit before the
    /// connection is answered `408` and closed, in milliseconds.
    pub read_timeout_ms: u64,
    /// How long a connection may stay write-blocked on an unread
    /// response before it is dropped, in milliseconds.
    pub write_timeout_ms: u64,
    /// How long an idle keep-alive connection (no request in progress)
    /// is retained, in milliseconds.
    pub idle_timeout_ms: u64,
    /// Requests served over one connection before the server closes it
    /// (`connection: close` on the final response). Bounds per-client
    /// resource pinning.
    pub max_requests_per_conn: u64,
    /// Concurrent-connection ceiling; accepts beyond it are refused
    /// with a best-effort `503`.
    pub max_connections: usize,
    /// Snapshot file `POST /admin/reload` re-reads when the request
    /// body names no other path.
    pub snapshot_path: Option<String>,
    /// Access-log sink: `None` disables it, `"stderr"` logs to stderr,
    /// anything else is an append-only file path.
    pub access_log: Option<String>,
    /// Log a per-stage span breakdown for requests at or above this
    /// many milliseconds (to the access-log sink, or stderr without
    /// one). `None` disables slow-request tracing.
    pub slow_ms: Option<u64>,
    /// Flight-recorder ring capacity (retained events); `0` disables
    /// the recorder entirely, leaving `Telemetry::event` a pointer
    /// check. Ignored when the server's telemetry registry already has
    /// a recorder attached (the caller's wins).
    pub events_capacity: usize,
    /// Target width of one `/metrics/history` window, in milliseconds.
    pub history_interval_ms: u64,
    /// Retained `/metrics/history` windows; `0` disables the series.
    pub history_windows: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 0,
            queue_depth: 1024,
            max_body: 256 * 1024,
            read_timeout_ms: 5_000,
            write_timeout_ms: 5_000,
            idle_timeout_ms: 5_000,
            max_requests_per_conn: 10_000,
            max_connections: 1024,
            snapshot_path: None,
            access_log: None,
            slow_ms: None,
            events_capacity: 1024,
            history_interval_ms: 1_000,
            history_windows: 64,
        }
    }
}

/// Where access-log lines go.
enum AccessLog {
    /// No sink configured.
    Off,
    Stderr,
    File(Mutex<std::fs::File>),
}

impl AccessLog {
    fn open(sink: Option<&str>) -> io::Result<AccessLog> {
        match sink {
            None => Ok(AccessLog::Off),
            Some("stderr") => Ok(AccessLog::Stderr),
            Some(path) => Ok(AccessLog::File(Mutex::new(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)?,
            ))),
        }
    }

    fn log(&self, line: &str) {
        match self {
            AccessLog::Off => {}
            AccessLog::Stderr => eprintln!("{line}"),
            AccessLog::File(file) => {
                if let Ok(mut file) = file.lock() {
                    let _ = writeln!(file, "{line}");
                }
            }
        }
    }

    /// Like [`AccessLog::log`], but slow-request breakdowns still land
    /// on stderr when no access log is configured.
    fn log_or_stderr(&self, line: &str) {
        match self {
            AccessLog::Off => eprintln!("{line}"),
            sink => sink.log(line),
        }
    }
}

/// One parsed request waiting for a worker.
struct Job {
    /// Connection slab slot + generation guarding stale completions.
    token: usize,
    generation: u64,
    /// Position in the connection's response order.
    seq: u64,
    /// Monotonic request id, echoed as `x-qi-request-id`.
    id: u64,
    /// Whether the response should be framed `connection: keep-alive`.
    keep_alive: bool,
    /// When the reactor enqueued the request.
    enqueued: Instant,
    request: Request,
}

/// A rendered response travelling back from a worker to the reactor.
struct Done {
    token: usize,
    generation: u64,
    seq: u64,
    /// Full serialized wire bytes (head + body).
    bytes: Vec<u8>,
    /// Close the connection once these bytes are written.
    close: bool,
    /// The handler asked the whole server to stop (admin shutdown).
    shutdown: bool,
}

/// A configured, not-yet-started server.
pub struct Server {
    store: Arc<Store>,
    telemetry: Telemetry,
    config: ServerConfig,
}

/// Handle to a running server: its bound address and a graceful-stop
/// switch. Dropping the handle shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    waker: Waker,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Wrap a store with the default configuration.
    pub fn new(store: Arc<Store>, telemetry: Telemetry) -> Self {
        Server::with_config(store, telemetry, ServerConfig::default())
    }

    /// Wrap a store with an explicit configuration.
    pub fn with_config(store: Arc<Store>, telemetry: Telemetry, config: ServerConfig) -> Self {
        Server {
            store,
            telemetry,
            config,
        }
    }

    /// Bind the listener and start the reactor + worker pool in a
    /// background thread. The returned handle knows the bound address
    /// (useful with port `0`).
    pub fn start(self) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&self.config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let access_log = AccessLog::open(self.config.access_log.as_deref())?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let (waker, wake_rx) = netpoll::waker()?;
        let flag = Arc::clone(&shutdown);
        let reactor_waker = waker.clone();
        let thread = std::thread::Builder::new()
            .name("qi-serve".to_string())
            .spawn(move || run(listener, self, access_log, flag, reactor_waker, wake_rx))?;
        Ok(ServerHandle {
            addr,
            shutdown,
            waker,
            thread: Some(thread),
        })
    }
}

impl ServerHandle {
    /// The address the server is actually listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Block until the server thread exits on its own (e.g. after a
    /// `POST /admin/shutdown`). Does not trigger a stop itself.
    pub fn wait(&mut self) {
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }

    /// Request a graceful stop and wait for in-flight requests to
    /// drain. Idempotent.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.waker.wake();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Live-introspection state shared by the debug endpoints: the
/// windowed time-series ring behind `/metrics/history` and the server
/// start time behind the uptime fields.
struct Observe {
    series: TimeSeries,
    started: Instant,
}

impl Observe {
    /// A disabled instance for direct `handle` calls in tests.
    #[cfg(test)]
    fn off() -> Observe {
        Observe {
            series: TimeSeries::off(),
            started: Instant::now(),
        }
    }

    fn uptime_seconds(&self) -> u64 {
        self.started.elapsed().as_secs()
    }
}

/// A response completed (or synthesized) for one position in a
/// connection's pipeline.
struct Completed {
    bytes: Vec<u8>,
    close: bool,
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    generation: u64,
    input: crate::http::RequestBuf,
    /// Serialized response bytes not yet written, and the write cursor
    /// into them.
    out: Vec<u8>,
    out_pos: usize,
    /// Out-of-order completed responses awaiting their turn.
    pending: BTreeMap<u64, Completed>,
    /// Next sequence number to assign at dispatch / next to splice.
    next_seq: u64,
    next_write: u64,
    /// Requests dispatched to workers, not yet completed.
    inflight: usize,
    /// Requests parsed on this connection so far.
    served: u64,
    /// Stop parsing new requests (close requested, error, shutdown).
    closing: bool,
    /// Close the socket once `out` is flushed and nothing is in flight.
    close_after_write: bool,
    /// Write side shut, absorbing stray bytes before the final close.
    draining: bool,
    drain_deadline: Instant,
    drain_budget: usize,
    /// Peer sent FIN; no more input will arrive.
    peer_closed: bool,
    last_activity: Instant,
}

impl Conn {
    fn new(stream: TcpStream, generation: u64) -> Conn {
        Conn {
            stream,
            generation,
            input: crate::http::RequestBuf::new(),
            out: Vec::new(),
            out_pos: 0,
            pending: BTreeMap::new(),
            next_seq: 0,
            next_write: 0,
            inflight: 0,
            served: 0,
            closing: false,
            close_after_write: false,
            draining: false,
            drain_deadline: Instant::now(),
            drain_budget: DRAIN_BUDGET,
            peer_closed: false,
            last_activity: Instant::now(),
        }
    }

    fn has_unwritten(&self) -> bool {
        self.out_pos < self.out.len()
    }

    /// Move any in-order completed responses into the write buffer.
    fn splice(&mut self) {
        while let Some(done) = self.pending.remove(&self.next_write) {
            self.out.extend_from_slice(&done.bytes);
            if done.close {
                self.closing = true;
                self.close_after_write = true;
            }
            self.next_write += 1;
        }
    }

    /// All dispatched work answered and flushed.
    fn quiescent(&self) -> bool {
        self.inflight == 0 && self.pending.is_empty() && !self.has_unwritten()
    }
}

/// What to do with a connection after an event.
#[derive(PartialEq)]
enum Disposition {
    Keep,
    Drop,
}

/// Reactor + worker pool; runs on the dedicated server thread until
/// shutdown.
fn run(
    listener: TcpListener,
    server: Server,
    access_log: AccessLog,
    shutdown: Arc<AtomicBool>,
    waker: Waker,
    wake_rx: netpoll::WakeReceiver,
) {
    let Server {
        store,
        telemetry,
        config,
    } = server;
    // Install the flight recorder unless the caller attached one of
    // their own (custom capacity or sampling) before starting.
    let telemetry =
        if config.events_capacity > 0 && telemetry.is_enabled() && !telemetry.events().is_enabled()
        {
            telemetry.attach_events(EventRecorder::new(config.events_capacity))
        } else {
            telemetry
        };
    let series = if telemetry.is_enabled() && config.history_windows > 0 {
        TimeSeries::new(
            config.history_interval_ms.saturating_mul(1_000_000),
            config.history_windows,
        )
    } else {
        TimeSeries::off()
    };
    let observe = Observe {
        series,
        started: Instant::now(),
    };
    // Floor of 2: with one worker a multi-millisecond ingest would
    // head-of-line block every cached read behind it.
    let workers = resolve_threads(config.threads).max(2);
    let queue: JobQueue<Job> = JobQueue::bounded(config.queue_depth);
    let completions: Mutex<Vec<Done>> = Mutex::new(Vec::new());
    let next_id = AtomicU64::new(1);
    telemetry.gauge("serve.workers", workers as u64);
    // Pre-register the connection counters so a scrape sees the full
    // family even before the first keep-alive client shows up.
    for name in [
        "serve.conn.accepted",
        "serve.conn.reused",
        "serve.conn.pipelined",
        "serve.conn.idle_closed",
        "serve.conn.rejected",
        "serve.requests",
        "serve.errors",
        "serve.shed",
        "serve.panics",
        "events.emitted",
        "events.sampled",
        "events.dropped",
        "query.executed",
        "query.parse_errors",
        "query.budget_exhausted",
        "query.stale_cursors",
        "query.cursor_resumed",
        "query.matches",
    ] {
        telemetry.add(name, 0);
    }

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                while let Some(job) = queue.pop() {
                    telemetry.observe("serve.queue.wait", job.enqueued.elapsed().as_nanos() as u64);
                    let depth = queue.len() as u64;
                    telemetry.gauge("serve.queue.depth", depth);
                    let done = handle_job(
                        job,
                        &store,
                        &telemetry,
                        &config,
                        &access_log,
                        &observe,
                        depth,
                    );
                    completions
                        .lock()
                        .expect("completion queue poisoned")
                        .push(done);
                    waker.wake();
                }
            });
        }

        let mut reactor = Reactor {
            listener: Some(listener),
            conns: Vec::new(),
            free: Vec::new(),
            live: 0,
            next_generation: 0,
            scratch: vec![0u8; 64 * 1024],
            queue: &queue,
            completions: &completions,
            next_id: &next_id,
            telemetry: &telemetry,
            config: &config,
            access_log: &access_log,
            observe: &observe,
            shutdown: &shutdown,
            wake_rx,
            shutting_down: false,
        };
        reactor.run();
        // Stop feeding, let workers drain what is already queued.
        queue.close();
    });
}

struct Reactor<'a> {
    /// Dropped (port closed) when shutdown begins.
    listener: Option<TcpListener>,
    /// Connection slab + free list; `live` counts occupied slots.
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    live: usize,
    next_generation: u64,
    /// Shared read scratch buffer.
    scratch: Vec<u8>,
    queue: &'a JobQueue<Job>,
    completions: &'a Mutex<Vec<Done>>,
    next_id: &'a AtomicU64,
    telemetry: &'a Telemetry,
    config: &'a ServerConfig,
    access_log: &'a AccessLog,
    observe: &'a Observe,
    shutdown: &'a AtomicBool,
    wake_rx: netpoll::WakeReceiver,
    shutting_down: bool,
}

impl Reactor<'_> {
    fn run(&mut self) {
        let mut pollfds: Vec<PollFd> = Vec::new();
        // pollfds[i] → what it watches: 0 = waker, 1 = listener,
        // 2+slot = connection slot.
        let mut slots: Vec<usize> = Vec::new();
        loop {
            if self.shutdown.load(Ordering::SeqCst) && !self.shutting_down {
                self.begin_shutdown();
            }
            if self.shutting_down && self.live == 0 {
                break;
            }

            pollfds.clear();
            slots.clear();
            pollfds.push(PollFd::new(self.wake_rx.as_raw_fd(), true, false));
            slots.push(usize::MAX);
            if let Some(listener) = &self.listener {
                if self.live < self.config.max_connections {
                    pollfds.push(PollFd::new(listener.as_raw_fd(), true, false));
                    slots.push(usize::MAX - 1);
                }
            }
            let now = Instant::now();
            let mut timeout: Option<Duration> = None;
            for (slot, conn) in self.conns.iter().enumerate() {
                let Some(conn) = conn else { continue };
                let readable = conn.draining
                    || (!conn.closing
                        && conn.inflight + conn.pending.len() < MAX_INFLIGHT_PER_CONN
                        && conn.input.len() < MAX_BUFFERED_INPUT
                        && !conn.peer_closed);
                let writable = conn.has_unwritten();
                pollfds.push(PollFd::new(conn.stream.as_raw_fd(), readable, writable));
                slots.push(slot);
                if let Some(deadline) = self.deadline_of(conn) {
                    let wait = deadline.saturating_duration_since(now);
                    timeout = Some(timeout.map_or(wait, |t: Duration| t.min(wait)));
                }
            }
            // Wake in time to close the current time-series window even
            // on an otherwise idle server.
            if let Some(ns) = self.observe.series.ns_until_due(self.telemetry) {
                let wait = Duration::from_nanos(ns);
                timeout = Some(timeout.map_or(wait, |t: Duration| t.min(wait)));
            }

            match netpoll::poll_fds(&mut pollfds, timeout) {
                Ok(_) => {}
                Err(_) => continue,
            }

            self.observe.series.maybe_tick(self.telemetry);
            if pollfds[0].readable() {
                self.wake_rx.drain();
            }
            // Completions may be pending even without a wake edge (the
            // wake can coalesce with a previous drain), so always sweep.
            self.apply_completions();

            for (i, pollfd) in pollfds.iter().enumerate().skip(1) {
                if !pollfd.ready() {
                    continue;
                }
                match slots[i] {
                    s if s == usize::MAX - 1 => self.accept_ready(),
                    slot => {
                        let mut disposition = Disposition::Keep;
                        if pollfd.failed() {
                            disposition = Disposition::Drop;
                        } else {
                            if pollfd.readable() {
                                disposition = self.conn_readable(slot);
                            }
                            if disposition == Disposition::Keep && pollfd.writable() {
                                disposition = self.conn_writable(slot);
                            }
                        }
                        if disposition == Disposition::Drop {
                            self.remove(slot);
                        }
                    }
                }
            }

            self.expire_deadlines();
        }
    }

    /// The instant at which this connection needs attention absent any
    /// readiness: idle close, partial-request timeout, write stall, or
    /// end of its post-close drain window.
    fn deadline_of(&self, conn: &Conn) -> Option<Instant> {
        if conn.draining {
            return Some(conn.drain_deadline);
        }
        if conn.has_unwritten() {
            return Some(conn.last_activity + Duration::from_millis(self.config.write_timeout_ms));
        }
        if conn.inflight > 0 || !conn.pending.is_empty() {
            return None; // a worker owns the clock
        }
        if !conn.input.is_empty() {
            return Some(conn.last_activity + Duration::from_millis(self.config.read_timeout_ms));
        }
        Some(conn.last_activity + Duration::from_millis(self.config.idle_timeout_ms))
    }

    fn begin_shutdown(&mut self) {
        self.shutting_down = true;
        self.listener = None; // closes the port
        for slot in 0..self.conns.len() {
            let Some(conn) = &mut self.conns[slot] else {
                continue;
            };
            conn.closing = true;
            if conn.quiescent() && !conn.draining {
                self.remove(slot);
            }
        }
    }

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    if self.live >= self.config.max_connections {
                        self.telemetry.incr("serve.conn.rejected");
                        // Even a synthesized rejection carries a
                        // request id, so the client can quote one when
                        // reporting it.
                        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
                        let live = self.live as u64;
                        self.telemetry.event(
                            Severity::Warn,
                            Category::Shed,
                            "shed.connection_limit",
                            || vec![("request_id", id.into()), ("connections", live.into())],
                        );
                        let _ = stream.set_nodelay(true);
                        let mut stream = stream;
                        let _ = stream.write_all(
                            &Response::error(503, "too many connections")
                                .header("x-qi-request-id", id.to_string())
                                .serialize(false),
                        );
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    self.telemetry.incr("serve.conn.accepted");
                    let generation = self.next_generation;
                    self.next_generation += 1;
                    let conn = Conn::new(stream, generation);
                    let slot = match self.free.pop() {
                        Some(slot) => {
                            self.conns[slot] = Some(conn);
                            slot
                        }
                        None => {
                            self.conns.push(Some(conn));
                            self.conns.len() - 1
                        }
                    };
                    self.live += 1;
                    // A just-accepted socket usually has the request
                    // bytes already queued: read immediately instead of
                    // paying one extra poll round trip.
                    if self.conn_readable(slot) == Disposition::Drop {
                        self.remove(slot);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn remove(&mut self, slot: usize) {
        if self.conns[slot].take().is_some() {
            self.live -= 1;
            self.free.push(slot);
        }
    }

    fn conn_readable(&mut self, slot: usize) -> Disposition {
        let Some(conn) = self.conns[slot].as_mut() else {
            return Disposition::Keep;
        };
        if conn.draining {
            return Self::drain_readable(conn, &mut self.scratch);
        }
        let mut got_bytes = false;
        loop {
            match conn.stream.read(&mut self.scratch) {
                Ok(0) => {
                    conn.peer_closed = true;
                    break;
                }
                Ok(n) => {
                    conn.input.extend(&self.scratch[..n]);
                    conn.last_activity = Instant::now();
                    got_bytes = true;
                    if n < self.scratch.len() {
                        break; // socket very likely drained
                    }
                    if conn.input.len() >= MAX_BUFFERED_INPUT {
                        break; // backpressure: parse what we have first
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Disposition::Drop,
            }
        }
        if got_bytes {
            self.parse_and_dispatch(slot);
        }
        let Some(conn) = self.conns[slot].as_mut() else {
            return Disposition::Keep;
        };
        if conn.peer_closed {
            conn.closing = true;
            if conn.quiescent() {
                return Disposition::Drop;
            }
        }
        Disposition::Keep
    }

    /// Absorb (and discard) bytes on a connection whose response is
    /// already fully written and whose write side is shut.
    fn drain_readable(conn: &mut Conn, scratch: &mut [u8]) -> Disposition {
        loop {
            match conn.stream.read(scratch) {
                Ok(0) => return Disposition::Drop,
                Ok(n) => {
                    if n >= conn.drain_budget {
                        return Disposition::Drop;
                    }
                    conn.drain_budget -= n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Disposition::Keep,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Disposition::Drop,
            }
        }
    }

    /// Pull every complete request out of a connection's input buffer
    /// and dispatch them to the worker queue.
    fn parse_and_dispatch(&mut self, slot: usize) {
        let mut parsed_this_event = 0u64;
        loop {
            let Some(conn) = self.conns[slot].as_mut() else {
                return;
            };
            if conn.closing
                || conn.inflight + conn.pending.len() >= MAX_INFLIGHT_PER_CONN
                || self.shutting_down
            {
                break;
            }
            match conn.input.next_request(self.config.max_body) {
                Ok(Some(request)) => {
                    parsed_this_event += 1;
                    self.dispatch(slot, request);
                }
                Ok(None) => break,
                Err(err) => {
                    self.read_error(slot, err);
                    break;
                }
            }
        }
        if parsed_this_event > 1 {
            self.telemetry
                .add("serve.conn.pipelined", parsed_this_event - 1);
        }
        // Synthesized responses (shed/error) may be writable right now.
        if let Some(conn) = self.conns[slot].as_mut() {
            conn.splice();
            if conn.has_unwritten() && self.conn_writable(slot) == Disposition::Drop {
                self.remove(slot);
            }
        }
    }

    /// Hand one parsed request to the workers (or shed it with `503`).
    fn dispatch(&mut self, slot: usize, request: Request) {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let conn = self.conns[slot].as_mut().expect("dispatch on live conn");
        conn.served += 1;
        if conn.served > 1 {
            self.telemetry.incr("serve.conn.reused");
        }
        let keep_alive = request.keep_alive()
            && conn.served < self.config.max_requests_per_conn
            && !self.shutting_down;
        let seq = conn.next_seq;
        conn.next_seq += 1;
        if !keep_alive {
            // No request after this one will be answered; stop parsing.
            conn.closing = true;
        }
        let job = Job {
            token: slot,
            generation: conn.generation,
            seq,
            id,
            keep_alive,
            enqueued: Instant::now(),
            request,
        };
        match self.queue.push(job) {
            Ok(()) => {
                conn.inflight += 1;
                self.telemetry
                    .gauge_max("serve.queue.depth.max", self.queue.len() as u64);
            }
            Err(job) => {
                // Queue full: shed this request, keep the connection.
                self.telemetry.incr("serve.shed");
                let depth = self.queue.len() as u64;
                self.telemetry
                    .event(Severity::Warn, Category::Shed, "shed.queue_full", || {
                        vec![("request_id", job.id.into()), ("depth", depth.into())]
                    });
                let response = Response::error(503, "server is at capacity")
                    .header("x-qi-request-id", job.id.to_string());
                conn.pending.insert(
                    seq,
                    Completed {
                        bytes: response.serialize(job.keep_alive),
                        close: !job.keep_alive,
                    },
                );
            }
        }
    }

    /// A parse error: answer the mapped status at this pipeline
    /// position, then close.
    fn read_error(&mut self, slot: usize, err: RequestError) {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (status, message) = match err {
            RequestError::HeadTooLarge => (431, "request head too large".to_string()),
            RequestError::BodyTooLarge => (413, "request body too large".to_string()),
            RequestError::Malformed(what) => (400, what),
            RequestError::Io(_) => (408, "timed out reading request".to_string()),
            RequestError::Closed => unreachable!("incremental parser never reports Closed"),
        };
        self.telemetry.incr("serve.errors.read");
        self.telemetry
            .event(Severity::Warn, Category::Http, "http.read_error", || {
                vec![
                    ("request_id", id.into()),
                    ("status", u64::from(status).into()),
                ]
            });
        let response = Response::error(status, &message).header("x-qi-request-id", id.to_string());
        self.access_log.log(&access_line(
            id,
            "-",
            "read_error",
            "-",
            status,
            response.body.len(),
            Duration::ZERO,
            Duration::ZERO,
        ));
        let conn = self.conns[slot].as_mut().expect("error on live conn");
        let seq = conn.next_seq;
        conn.next_seq += 1;
        conn.pending.insert(
            seq,
            Completed {
                bytes: response.serialize(false),
                close: true,
            },
        );
        conn.closing = true;
    }

    /// Move worker completions into their connections' write buffers
    /// and push bytes opportunistically.
    fn apply_completions(&mut self) {
        let done: Vec<Done> =
            std::mem::take(&mut *self.completions.lock().expect("completion queue poisoned"));
        let mut touched: Vec<usize> = Vec::new();
        for done in done {
            if done.shutdown {
                self.shutdown.store(true, Ordering::SeqCst);
            }
            let Some(conn) = self.conns.get_mut(done.token).and_then(Option::as_mut) else {
                continue; // connection died while the worker ran
            };
            if conn.generation != done.generation {
                continue; // slot was recycled
            }
            conn.inflight -= 1;
            conn.pending.insert(
                done.seq,
                Completed {
                    bytes: done.bytes,
                    close: done.close,
                },
            );
            conn.splice();
            if !touched.contains(&done.token) {
                touched.push(done.token);
            }
        }
        for slot in touched {
            if self.conn_writable(slot) == Disposition::Drop {
                self.remove(slot);
            }
        }
        // The admin handler may have just requested shutdown; apply it
        // before the next poll so no new request slips in.
        if self.shutdown.load(Ordering::SeqCst) && !self.shutting_down {
            self.begin_shutdown();
        }
    }

    /// Flush as much of the write buffer as the socket accepts; decide
    /// the connection's fate when it empties.
    fn conn_writable(&mut self, slot: usize) -> Disposition {
        let Some(conn) = self.conns[slot].as_mut() else {
            return Disposition::Keep;
        };
        while conn.has_unwritten() {
            match conn.stream.write(&conn.out[conn.out_pos..]) {
                Ok(0) => return Disposition::Drop,
                Ok(n) => {
                    conn.out_pos += n;
                    conn.last_activity = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Disposition::Keep,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Disposition::Drop,
            }
        }
        conn.out.clear();
        conn.out_pos = 0;
        if conn.close_after_write && conn.inflight == 0 && conn.pending.is_empty() {
            // Everything flushed; close politely. If the peer might
            // still be sending (e.g. the body we refused), absorb
            // briefly so our FIN-then-close never becomes an RST that
            // discards the response.
            if conn.peer_closed {
                return Disposition::Drop;
            }
            let _ = conn.stream.shutdown(std::net::Shutdown::Write);
            conn.draining = true;
            conn.drain_deadline = Instant::now() + DRAIN_WINDOW;
            return Disposition::Keep;
        }
        if self.shutting_down {
            let conn = self.conns[slot].as_mut().expect("checked above");
            if conn.quiescent() && !conn.draining {
                return Disposition::Drop;
            }
        }
        Disposition::Keep
    }

    /// Close connections whose deadline passed: idle keep-alives,
    /// half-sent requests (`408`), stalled writers, expired drains.
    fn expire_deadlines(&mut self) {
        let now = Instant::now();
        for slot in 0..self.conns.len() {
            let Some(conn) = self.conns[slot].as_ref() else {
                continue;
            };
            let Some(deadline) = self.deadline_of(conn) else {
                continue;
            };
            if now < deadline {
                continue;
            }
            let conn = self.conns[slot].as_mut().expect("checked above");
            if conn.draining || conn.has_unwritten() {
                // Drain window over / writer stalled: just drop.
                self.remove(slot);
            } else if !conn.input.is_empty() && !conn.closing {
                // Half a request arrived, then silence: answer 408.
                self.read_error(
                    slot,
                    RequestError::Io(io::Error::from(io::ErrorKind::TimedOut)),
                );
                let conn = self.conns[slot].as_mut().expect("still live");
                conn.splice();
                if self.conn_writable(slot) == Disposition::Drop {
                    self.remove(slot);
                }
            } else {
                if !conn.closing {
                    self.telemetry.incr("serve.conn.idle_closed");
                }
                self.remove(slot);
            }
        }
    }
}

/// Worker-side request execution: route, render, serialize.
#[allow(clippy::too_many_arguments)]
fn handle_job(
    job: Job,
    store: &Store,
    telemetry: &Telemetry,
    config: &ServerConfig,
    access_log: &AccessLog,
    observe: &Observe,
    queue_depth: u64,
) -> Done {
    let Job {
        token,
        generation,
        seq,
        id,
        keep_alive,
        enqueued,
        request,
    } = job;
    let queue_wait = enqueued.elapsed();
    let started = Instant::now();

    // With slow-request tracing on, handler spans go into a request-
    // local registry (so the breakdown is this request's alone), then
    // merge into the global one. The sibling shares the global clock
    // baseline and recorder, so events emitted mid-handler land in the
    // one flight recorder with consistent timestamps.
    let local = config
        .slow_ms
        .map(|_| telemetry.sibling().attach_events(telemetry.events()));
    let effective = local.as_ref().unwrap_or(telemetry);

    let route = route_name(&request);
    let (requests_key, span_key) = route_keys(route);
    telemetry.incr("serve.requests");
    telemetry.incr(requests_key);
    let timed = telemetry.timed(span_key);
    let response = catch_unwind(AssertUnwindSafe(|| {
        handle(
            &request,
            store,
            telemetry,
            effective,
            config,
            observe,
            queue_depth,
        )
    }))
    .unwrap_or_else(|_| {
        telemetry.incr("serve.panics");
        telemetry.event(Severity::Error, Category::Panic, "panic.request", || {
            vec![("request_id", id.into()), ("route", route.into())]
        });
        Response::error(500, "internal error")
    });
    drop(timed);
    let latency = started.elapsed();
    telemetry.observe("serve.latency", latency.as_nanos() as u64);
    if response.status >= 400 {
        telemetry.incr("serve.errors");
        telemetry.incr(&format!("serve.errors.{route}"));
    }
    let shutdown = route == "shutdown" && response.status == 200;
    // A successful shutdown response closes its connection regardless
    // of what the request asked for.
    let keep_alive = keep_alive && !shutdown;
    let response = response.header("x-qi-request-id", id.to_string());
    let bytes = response.serialize(keep_alive);

    access_log.log(&access_line(
        id,
        &request.method,
        route,
        &request.path,
        response.status,
        response.body.len(),
        latency,
        queue_wait,
    ));
    if let (Some(slow_ms), Some(local)) = (config.slow_ms, &local) {
        let snapshot = local.snapshot();
        if latency.as_millis() as u64 >= slow_ms {
            let mut stages = String::new();
            for (name, span) in &snapshot.spans {
                stages.push_str(&format!(" {name}={}us", span.total_ns / 1_000));
            }
            access_log.log_or_stderr(&format!(
                "slow req={id} route={route} latency_us={}{stages}",
                latency.as_micros()
            ));
            telemetry.event(Severity::Warn, Category::Slow, "slow.request", || {
                vec![
                    ("request_id", id.into()),
                    ("route", route.into()),
                    ("latency_us", (latency.as_micros() as u64).into()),
                ]
            });
        }
        telemetry.absorb(&snapshot);
    }

    Done {
        token,
        generation,
        seq,
        bytes,
        close: !keep_alive,
        shutdown,
    }
}

/// One structured access-log line.
#[allow(clippy::too_many_arguments)]
fn access_line(
    id: u64,
    method: &str,
    route: &str,
    path: &str,
    status: u16,
    bytes: usize,
    latency: Duration,
    queue_wait: Duration,
) -> String {
    format!(
        "req={id} method={method} route={route} path={path} status={status} bytes={bytes} \
         latency_us={} queue_wait_us={}",
        latency.as_micros(),
        queue_wait.as_micros()
    )
}

/// Stable route label for telemetry (no per-domain cardinality).
fn route_name(request: &Request) -> &'static str {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => "healthz",
        ("GET", ["metrics"]) => "metrics",
        ("GET", ["metrics", "history"]) => "metrics_history",
        ("GET", ["debug", "events"]) => "debug_events",
        ("GET", ["debug", "status"]) => "debug_status",
        ("GET", ["domains"]) => "domains",
        ("GET", ["domains", _, "labels"]) => "labels",
        ("GET", ["domains", _, "tree"]) => "tree",
        ("GET", ["domains", _, "explain"]) => "explain",
        ("GET" | "POST", ["query"]) => "query",
        ("POST", ["domains", _, "interfaces"]) => "ingest",
        ("POST", ["admin", "reload"]) => "reload",
        ("POST", ["admin", "shutdown"]) => "shutdown",
        _ => "other",
    }
}

/// Pre-built telemetry keys (`serve.requests.*`, `serve.http.*`) per
/// route, so the per-request hot path allocates no key strings.
fn route_keys(route: &'static str) -> (&'static str, &'static str) {
    match route {
        "healthz" => ("serve.requests.healthz", "serve.http.healthz"),
        "metrics" => ("serve.requests.metrics", "serve.http.metrics"),
        "metrics_history" => (
            "serve.requests.metrics_history",
            "serve.http.metrics_history",
        ),
        "debug_events" => ("serve.requests.debug_events", "serve.http.debug_events"),
        "debug_status" => ("serve.requests.debug_status", "serve.http.debug_status"),
        "domains" => ("serve.requests.domains", "serve.http.domains"),
        "labels" => ("serve.requests.labels", "serve.http.labels"),
        "tree" => ("serve.requests.tree", "serve.http.tree"),
        "explain" => ("serve.requests.explain", "serve.http.explain"),
        "query" => ("serve.requests.query", "serve.http.query"),
        "ingest" => ("serve.requests.ingest", "serve.http.ingest"),
        "reload" => ("serve.requests.reload", "serve.http.reload"),
        "shutdown" => ("serve.requests.shutdown", "serve.http.shutdown"),
        _ => ("serve.requests.other", "serve.http.other"),
    }
}

/// Route a parsed request to its handler.
///
/// `telemetry` is the server-global registry (what `GET /metrics`
/// reports); `effective` is where this request's pipeline spans land —
/// the same registry normally, a request-local one under slow-request
/// tracing.
fn handle(
    request: &Request,
    store: &Store,
    telemetry: &Telemetry,
    effective: &Telemetry,
    config: &ServerConfig,
    observe: &Observe,
    queue_depth: u64,
) -> Response {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => healthz(request, store, observe),
        ("GET", ["metrics"]) => metrics(request, telemetry),
        ("GET", ["metrics", "history"]) => metrics_history(request, observe),
        ("GET", ["debug", "events"]) => debug_events(request, telemetry),
        ("GET", ["debug", "status"]) => debug_status(store, telemetry, observe, queue_depth),
        ("GET", ["domains"]) => {
            // The listing is rendered from the whole domain map, so it
            // is versioned by the store generation, not one artifact.
            let generation = store.generation();
            let entry = match store.cached("", "domains", generation) {
                Some(entry) => {
                    telemetry.incr("serve.cache.hits");
                    entry
                }
                None => {
                    telemetry.incr("serve.cache.misses");
                    let rendered = list_domains(store);
                    store.insert_cached(
                        String::new(),
                        "domains",
                        CacheEntry::of(generation, &rendered),
                    )
                }
            };
            respond_from_cache(request, &entry)
        }
        ("GET", ["domains", domain, "labels"]) => {
            cached_get(request, store, domain, "labels", telemetry, labels)
        }
        ("GET", ["domains", domain, "tree"]) => {
            cached_get(request, store, domain, "tree", telemetry, tree)
        }
        ("GET", ["domains", domain, "explain"]) => {
            // Explicit pagination parameters bypass the rendered cache
            // (each page is its own body); the bare GET stays cached.
            if request.query_param("cursor").is_some() || request.query_param("limit").is_some() {
                explain_paged(request, store, domain, telemetry)
            } else {
                cached_get(request, store, domain, "explain", telemetry, explain)
            }
        }
        ("GET" | "POST", ["query"]) => query_endpoint(request, store, telemetry),
        ("POST", ["domains", domain, "interfaces"]) => ingest(request, store, domain, effective),
        ("POST", ["admin", "reload"]) => reload(request, store, telemetry, config),
        ("POST", ["admin", "shutdown"]) => {
            Response::json(200, Obj::new().str("status", "shutting down").finish())
        }
        (method, _) if !matches!(method, "GET" | "POST") => {
            Response::error(405, "method not allowed")
        }
        _ => Response::error(404, "no such resource"),
    }
}

/// `POST /admin/reload`: load a snapshot file and swap the whole store
/// to it without dropping a single live connection. The body may name
/// the snapshot path; empty falls back to the path the server was
/// started with ([`ServerConfig::snapshot_path`]).
fn reload(
    request: &Request,
    store: &Store,
    telemetry: &Telemetry,
    config: &ServerConfig,
) -> Response {
    let body = String::from_utf8_lossy(&request.body);
    let body_path = body.trim();
    let path = if body_path.is_empty() {
        match config.snapshot_path.as_deref() {
            Some(path) => path,
            None => return Response::error(
                400,
                "no snapshot path: server started without --snapshot and request body names none",
            ),
        }
    } else {
        body_path
    };
    let _span = telemetry.timed("serve.reload.load");
    let snapshot = match crate::snapshot::load_snapshot(Path::new(path)) {
        Ok(snapshot) => snapshot,
        Err(err) => return Response::error(400, &format!("loading snapshot {path:?}: {err}")),
    };
    let domains = store.reload(snapshot, telemetry);
    telemetry.incr("serve.reloads");
    telemetry.event(Severity::Info, Category::Reload, "reload.snapshot", || {
        vec![("path", path.into()), ("domains", (domains as u64).into())]
    });
    Response::json(
        200,
        Obj::new()
            .str("status", "reloaded")
            .str("path", path)
            .u64("domains", domains as u64)
            .finish(),
    )
}

/// `GET /metrics` with content negotiation: the Prometheus text
/// exposition when the `Accept` header asks for `text/plain`, sorted
/// JSON otherwise.
fn metrics(request: &Request, telemetry: &Telemetry) -> Response {
    let snapshot = telemetry.snapshot();
    // Media-type matching is case-insensitive (RFC 7231 §3.1.1.1).
    let wants_prometheus = request
        .header("accept")
        .is_some_and(|accept| accept.to_ascii_lowercase().contains("text/plain"));
    if wants_prometheus {
        Response::with_type(
            200,
            "text/plain; version=0.0.4",
            qi_runtime::prometheus_text(&snapshot),
        )
    } else {
        Response::json(200, snapshot.to_json())
    }
}

/// `GET /healthz` with content negotiation: a JSON liveness document
/// (uptime, store generation, per-domain artifact versions), or a bare
/// `ok` when the `Accept` header asks for `text/plain` (load-balancer
/// probes that only string-match).
fn healthz(request: &Request, store: &Store, observe: &Observe) -> Response {
    let wants_plain = request
        .header("accept")
        .is_some_and(|accept| accept.to_ascii_lowercase().contains("text/plain"));
    if wants_plain {
        return Response::with_type(200, "text/plain", "ok\n".to_string());
    }
    Response::json(
        200,
        Obj::new()
            .str("status", "ok")
            .u64("domains", store.len() as u64)
            .u64("uptime_seconds", observe.uptime_seconds())
            .u64("generation", store.generation())
            .raw("versions", domain_versions(store).finish())
            .finish(),
    )
}

/// Slug → current artifact version, for `/healthz` and `/debug/status`.
fn domain_versions(store: &Store) -> Obj {
    let mut versions = Obj::new();
    for slug in store.slugs() {
        if let Some(artifact) = store.get(&slug) {
            versions.u64(&slug, artifact.version);
        }
    }
    versions
}

/// `GET /metrics/history?windows=N`: the retained time-series windows
/// (per-interval deltas of the cumulative registry), oldest first.
fn metrics_history(request: &Request, observe: &Observe) -> Response {
    let cap = (observe.series.capacity() as u64).max(1);
    let windows = match u64_param(request, "windows", cap, 1, cap) {
        Ok(windows) => windows,
        Err(response) => return response,
    };
    Response::json(200, observe.series.history_json(windows as usize))
}

/// `GET /debug/events?since=&category=&limit=`: a cursor-resumable
/// page of the flight recorder's retained events. Pass the returned
/// `next_seq` back as `since` to read strictly newer events; a
/// `dropped_watermark` above the cursor means the ring evicted events
/// the cursor never saw.
fn debug_events(request: &Request, telemetry: &Telemetry) -> Response {
    let recorder = telemetry.events();
    let since = match u64_param(request, "since", 0, 0, u64::MAX) {
        Ok(since) => since,
        Err(response) => return response,
    };
    let limit = match u64_param(request, "limit", 256, 1, 4096) {
        Ok(limit) => limit,
        Err(response) => return response,
    };
    let category = match request.query_param("category") {
        None => None,
        Some(name) if name.is_empty() => None,
        Some(name) => match Category::parse(&name) {
            Some(category) => Some(category),
            None => {
                return Response::error(400, &format!("bad category: {name:?} is not a category"))
            }
        },
    };
    let page = recorder.events_since(since, category, limit as usize);
    let mut events = Arr::new();
    for event in &page.events {
        events.raw(event.to_json());
    }
    Response::json(
        200,
        Obj::new()
            .bool("enabled", recorder.is_enabled())
            .u64("next_seq", page.next_seq)
            .u64("dropped_watermark", page.dropped_watermark)
            .u64("dropped", page.dropped)
            .raw("events", events.finish())
            .finish(),
    )
}

/// `GET /debug/status`: one-page live introspection — uptime, snapshot
/// versions, queue depth, recorder state, and rolling rates computed
/// over the retained time-series windows.
fn debug_status(
    store: &Store,
    telemetry: &Telemetry,
    observe: &Observe,
    queue_depth: u64,
) -> Response {
    let (requests, span_ns) = observe.series.rolling_sum("serve.requests");
    let (errors, _) = observe.series.rolling_sum("serve.errors");
    let (shed, _) = observe.series.rolling_sum("serve.shed");
    let seconds = span_ns as f64 / 1e9;
    let per_sec = |count: u64| {
        if span_ns == 0 {
            0.0
        } else {
            count as f64 / seconds
        }
    };
    let rate_of = |count: u64| {
        if requests == 0 {
            0.0
        } else {
            count as f64 / requests as f64
        }
    };
    let mut rolling = Obj::new();
    rolling
        .f64("window_seconds", seconds, 3)
        .u64("requests", requests)
        .f64("requests_per_sec", per_sec(requests), 3)
        .u64("errors", errors)
        .f64("error_rate", rate_of(errors), 4)
        .u64("shed", shed)
        .f64("shed_rate", rate_of(shed), 4);
    let recorder = telemetry.events();
    let recorder_page = recorder.events_since(u64::MAX, None, 0);
    let mut events = Obj::new();
    events
        .bool("enabled", recorder.is_enabled())
        .u64("last_seq", recorder.last_seq())
        .u64("dropped", recorder_page.dropped);
    Response::json(
        200,
        Obj::new()
            .str("status", "ok")
            .u64("uptime_seconds", observe.uptime_seconds())
            .u64("generation", store.generation())
            .u64("domains", store.len() as u64)
            .u64("queue_depth", queue_depth)
            .raw("versions", domain_versions(store).finish())
            .raw("rolling", rolling.finish())
            .raw("events", events.finish())
            .finish(),
    )
}

/// Serve a per-domain GET through the rendered-response cache: look up
/// the domain, validate any cached entry against the artifact's current
/// version, render on a miss, and answer `304 Not Modified` when the
/// client's `If-None-Match` already names the entry's ETag.
fn cached_get(
    request: &Request,
    store: &Store,
    domain: &str,
    endpoint: &'static str,
    telemetry: &Telemetry,
    render: fn(&DomainArtifact) -> Response,
) -> Response {
    let Some(artifact) = store.get(domain) else {
        return Response::error(404, "no such domain");
    };
    let slug = artifact.slug();
    let entry = match store.cached(&slug, endpoint, artifact.version) {
        Some(entry) => {
            telemetry.incr("serve.cache.hits");
            entry
        }
        None => {
            telemetry.incr("serve.cache.misses");
            let rendered = render(&artifact);
            store.insert_cached(slug, endpoint, CacheEntry::of(artifact.version, &rendered))
        }
    };
    respond_from_cache(request, &entry)
}

/// Materialize a response from a cache entry: `304` without a body when
/// the client already holds these exact bytes, `200` sharing them
/// otherwise. Both carry the entry's ETag.
fn respond_from_cache(request: &Request, entry: &CacheEntry) -> Response {
    if request.header("if-none-match") == Some(entry.etag.as_str()) {
        return Response::bytes(304, entry.content_type, Arc::new(Vec::new()))
            .header("etag", entry.etag.clone());
    }
    Response::bytes(200, entry.content_type, Arc::clone(&entry.body))
        .header("etag", entry.etag.clone())
}

fn class_str(artifact: &DomainArtifact) -> String {
    artifact
        .class
        .map(|c| c.to_string())
        .unwrap_or_else(|| "unclassified".to_string())
}

fn summary(artifact: &DomainArtifact) -> String {
    Obj::new()
        .str("domain", &artifact.name)
        .str("slug", &artifact.slug())
        .u64("interfaces", artifact.interfaces() as u64)
        .u64("clusters", artifact.mapping.len() as u64)
        .u64("leaves", artifact.leaf_cluster.len() as u64)
        .str("class", &class_str(artifact))
        .finish()
}

fn list_domains(store: &Store) -> Response {
    let mut arr = Arr::new();
    for slug in store.slugs() {
        if let Some(artifact) = store.get(&slug) {
            arr.raw(summary(&artifact));
        }
    }
    Response::json(200, Obj::new().raw("domains", arr.finish()).finish())
}

fn labels(artifact: &DomainArtifact) -> Response {
    let mut arr = Arr::new();
    for (&node, &cluster) in &artifact.leaf_cluster {
        let leaf = artifact.labeled.node(node);
        let mut obj = Obj::new();
        obj.u64("node", node.0 as u64);
        match &leaf.label {
            Some(label) => obj.str("label", label),
            None => obj.raw("label", "null"),
        };
        obj.str("cluster", &artifact.mapping.cluster(cluster).concept);
        arr.raw(obj.finish());
    }
    Response::json(
        200,
        Obj::new()
            .str("domain", &artifact.name)
            .str("class", &class_str(artifact))
            .u64("unlabeled_fields", artifact.unlabeled_fields as u64)
            .u64("labeled_internal", artifact.labeled_internal as u64)
            .raw("labels", arr.finish())
            .finish(),
    )
}

fn tree(artifact: &DomainArtifact) -> Response {
    Response::json(
        200,
        Obj::new()
            .str("domain", &artifact.name)
            .str("class", &class_str(artifact))
            .str("tree", &qi_schema::text_format::render(&artifact.labeled))
            .finish(),
    )
}

/// `GET /domains/{d}/explain`: the per-node labeling-decision
/// provenance of the domain's current artifact, paginated with the
/// query engine's cursors. The bare GET renders the first page at the
/// default page size (and is the shape the rendered cache holds);
/// `?cursor=` / `?limit=` select other pages through [`explain_paged`].
fn explain(artifact: &DomainArtifact) -> Response {
    explain_page(artifact, 0, queryapi::DEFAULT_LIMIT as usize)
}

/// The tag hash pinning `/explain` cursors to this stream, so a query
/// cursor pasted into `/explain` (or vice versa) is rejected instead of
/// misread.
fn explain_hash() -> u64 {
    qi_query::query_hash("explain")
}

fn explain_page(artifact: &DomainArtifact, offset: usize, limit: usize) -> Response {
    let total = artifact.decisions.len();
    let end = offset.saturating_add(limit).min(total);
    let mut arr = Arr::new();
    for decision in artifact.decisions.get(offset..end).unwrap_or(&[]) {
        let mut candidates = Arr::new();
        for candidate in &decision.candidates {
            candidates.raw(
                Obj::new()
                    .str("label", &candidate.label)
                    .u64("frequency", candidate.frequency)
                    .bool("accepted", candidate.accepted)
                    .str("note", &candidate.note)
                    .finish(),
            );
        }
        let mut obj = Obj::new();
        obj.u64("node", decision.node as u64);
        obj.str("path", &decision.path);
        obj.str("rule", &decision.rule);
        match &decision.chosen {
            Some(label) => obj.str("label", label),
            None => obj.raw("label", "null"),
        };
        obj.raw("candidates", candidates.finish());
        arr.raw(obj.finish());
    }
    let mut obj = Obj::new();
    obj.str("domain", &artifact.name);
    obj.u64("decisions", total as u64);
    obj.u64("count", end.saturating_sub(offset) as u64);
    obj.raw("explain", arr.finish());
    if end < total {
        let cursor = Cursor {
            qhash: explain_hash(),
            slug: artifact.slug(),
            version: artifact.version,
            offset: end as u64,
        };
        obj.str("next_cursor", &cursor.encode());
    }
    Response::json(200, obj.finish())
}

/// `GET /domains/{d}/explain?cursor=…&limit=…`: an explicit page of the
/// decision list, outside the rendered cache.
fn explain_paged(
    request: &Request,
    store: &Store,
    domain: &str,
    telemetry: &Telemetry,
) -> Response {
    let Some(artifact) = store.get(domain) else {
        return Response::error(404, "no such domain");
    };
    let limit = match u64_param(
        request,
        "limit",
        queryapi::DEFAULT_LIMIT,
        1,
        queryapi::MAX_LIMIT,
    ) {
        Ok(limit) => limit,
        Err(response) => return response,
    };
    let offset = match request.query_param("cursor") {
        None => 0,
        Some(text) => match Cursor::decode(&text) {
            Err(_) => return Response::error(400, "bad cursor: cursor is not decodable"),
            Ok(cursor) => {
                if cursor.qhash != explain_hash() || cursor.slug != artifact.slug() {
                    return Response::error(
                        400,
                        "bad cursor: cursor was issued for a different stream",
                    );
                }
                if cursor.version != artifact.version {
                    telemetry.incr("query.stale_cursors");
                    telemetry.event(Severity::Warn, Category::Cursor, "cursor.stale", || {
                        vec![
                            ("stream", "explain".into()),
                            ("slug", artifact.slug().into()),
                        ]
                    });
                    return Response::error(
                        410,
                        "cursor is stale: the domain was re-labeled since the page was cut",
                    );
                }
                cursor.offset as usize
            }
        },
    };
    explain_page(&artifact, offset, limit as usize)
}

/// Parse an integer query parameter, defaulting when absent and
/// rejecting values outside `min..=max` with a 400.
fn u64_param(
    request: &Request,
    name: &str,
    default: u64,
    min: u64,
    max: u64,
) -> Result<u64, Response> {
    match request.query_param(name) {
        None => Ok(default),
        Some(text) => match text.parse::<u64>() {
            Ok(value) if (min..=max).contains(&value) => Ok(value),
            _ => Err(Response::error(
                400,
                &format!("bad {name}: expected an integer in {min}..={max}"),
            )),
        },
    }
}

/// `GET/POST /query`: parse, execute and paginate one query across the
/// served domains. `?q=` carries the text on GET; a POST body carries
/// it verbatim (no encoding needed). `?limit=`, `?budget=` and
/// `?cursor=` tune pagination; cursorless GETs flow through the
/// rendered-response cache keyed to the store generation, so a repeated
/// dashboard query costs one pointer clone and revalidates with ETags.
fn query_endpoint(request: &Request, store: &Store, telemetry: &Telemetry) -> Response {
    let text = if request.method == "POST" && !request.body.is_empty() {
        match std::str::from_utf8(&request.body) {
            Ok(text) => text.trim().to_string(),
            Err(_) => return Response::error(400, "query body is not UTF-8"),
        }
    } else {
        match request.query_param("q") {
            Some(q) => q,
            None => return Response::error(400, "missing query: pass ?q= or a POST body"),
        }
    };
    let limit = match u64_param(
        request,
        "limit",
        queryapi::DEFAULT_LIMIT,
        1,
        queryapi::MAX_LIMIT,
    ) {
        Ok(limit) => limit,
        Err(response) => return response,
    };
    let budget = match u64_param(
        request,
        "budget",
        queryapi::DEFAULT_BUDGET,
        1,
        queryapi::DEFAULT_BUDGET,
    ) {
        Ok(budget) => budget,
        Err(response) => return response,
    };
    let params = PageParams {
        limit,
        budget,
        cursor: request.query_param("cursor"),
    };

    // Parse up front: a 400 should not cost a corpus walk, and the
    // cache key needs the canonical hash (so whitespace variants of the
    // same query share one cached body).
    let parsed = match qi_query::parse(&text) {
        Ok(parsed) => parsed,
        Err(err) => {
            telemetry.incr("query.parse_errors");
            return Response::error(400, &format!("bad query: {err}"));
        }
    };
    let qhash = qi_query::query_hash(&parsed.to_string());
    let cacheable = request.method == "GET" && params.cursor.is_none();
    let generation = store.generation();
    let cache_slug = format!("q{qhash:016x}.{limit}.{budget}");
    if cacheable {
        if let Some(entry) = store.cached(&cache_slug, "query", generation) {
            telemetry.incr("serve.cache.hits");
            return respond_from_cache(request, &entry);
        }
        telemetry.incr("serve.cache.misses");
    }

    let arcs: Vec<Arc<DomainArtifact>> = store
        .slugs()
        .iter()
        .filter_map(|slug| store.get(slug))
        .collect();
    let refs: Vec<&DomainArtifact> = arcs.iter().map(|a| a.as_ref()).collect();
    telemetry.incr("query.executed");
    let timed = telemetry.timed("query.exec");
    let result = queryapi::run_query(&refs, store.lexicon(), &text, &params);
    drop(timed);
    let page = match result {
        Ok(page) => page,
        Err(err) => {
            let status = match &err {
                QueryError::Parse(_) => {
                    telemetry.incr("query.parse_errors");
                    400
                }
                QueryError::BadCursor(_) => 400,
                QueryError::StaleCursor => {
                    telemetry.incr("query.stale_cursors");
                    telemetry.event(Severity::Warn, Category::Cursor, "cursor.stale", || {
                        vec![("stream", "query".into())]
                    });
                    410
                }
                QueryError::BudgetExhausted { limit } => {
                    telemetry.incr("query.budget_exhausted");
                    let limit = *limit;
                    telemetry.event(
                        Severity::Warn,
                        Category::Budget,
                        "query.budget_exhausted",
                        || vec![("limit", limit.into())],
                    );
                    422
                }
            };
            return Response::error(status, &err.to_string());
        }
    };
    if params.cursor.is_some() {
        telemetry.incr("query.cursor_resumed");
    }
    telemetry.add("query.matches", page.matches.len() as u64);
    let rendered = Response::json(200, queryapi::page_json(&page));
    if cacheable {
        // Stale-generation query entries can never hit again (version
        // validation) but would otherwise accumulate one per distinct
        // query; drop them while holding the fresh body.
        store.prune_cached("query", generation);
        let entry = store.insert_cached(cache_slug, "query", CacheEntry::of(generation, &rendered));
        return respond_from_cache(request, &entry);
    }
    rendered
}

fn ingest(request: &Request, store: &Store, domain: &str, telemetry: &Telemetry) -> Response {
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return Response::error(400, "interface body is not UTF-8");
    };
    let interface = match qi_schema::text_format::parse(text) {
        Ok(interface) => interface,
        Err(err) => return Response::error(400, &format!("bad interface: {err}")),
    };
    match store.ingest_with(domain, interface, telemetry) {
        Some(artifact) => Response::json(200, summary(&artifact)),
        None => Response::error(404, "no such domain"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::build_artifact;
    use crate::http::reason;
    use qi_core::NamingPolicy;
    use qi_lexicon::Lexicon;

    fn request(method: &str, path: &str, body: &[u8]) -> Request {
        let (path, query) = match path.split_once('?') {
            Some((path, query)) => (path, query),
            None => (path, ""),
        };
        Request {
            method: method.to_string(),
            path: path.to_string(),
            query: query.to_string(),
            version_minor: 1,
            headers: Vec::new(),
            body: body.to_vec(),
        }
    }

    fn auto_store() -> Store {
        let lexicon = Lexicon::builtin();
        let telemetry = Telemetry::off();
        let artifact = build_artifact(
            &qi_datasets::auto::domain(),
            &lexicon,
            NamingPolicy::default(),
            &telemetry,
        );
        Store::new(vec![artifact], lexicon, NamingPolicy::default(), telemetry)
    }

    #[test]
    fn routes_cover_the_api_surface() {
        let store = auto_store();
        let telemetry = Telemetry::off();
        let config = ServerConfig::default();
        let observe = Observe::off();
        let ok = |req: &Request| handle(req, &store, &telemetry, &telemetry, &config, &observe, 0);

        let health = ok(&request("GET", "/healthz", b""));
        assert_eq!(health.status, 200);
        let text = String::from_utf8(health.body.to_vec()).unwrap();
        assert!(
            text.starts_with("{\"status\":\"ok\",\"domains\":1,"),
            "{text}"
        );
        assert!(text.contains("\"uptime_seconds\":"), "{text}");
        assert!(text.contains("\"generation\":0"), "{text}");
        assert!(text.contains("\"versions\":{\"auto\":"), "{text}");

        // The old probe body survives under `Accept: text/plain`.
        let mut plain = request("GET", "/healthz", b"");
        plain
            .headers
            .push(("accept".to_string(), "text/plain".to_string()));
        let probe = ok(&plain);
        assert_eq!(probe.status, 200);
        assert_eq!(probe.content_type, "text/plain");
        assert_eq!(*probe.body, b"ok\n");

        let domains = ok(&request("GET", "/domains", b""));
        assert_eq!(domains.status, 200);
        let text = String::from_utf8(domains.body.to_vec()).unwrap();
        assert!(text.contains("\"slug\":\"auto\""), "{text}");

        let labels = ok(&request("GET", "/domains/auto/labels", b""));
        assert_eq!(labels.status, 200);
        let text = String::from_utf8(labels.body.to_vec()).unwrap();
        assert!(text.contains("\"labels\":["), "{text}");

        let tree = ok(&request("GET", "/domains/Auto/tree", b""));
        assert_eq!(tree.status, 200);
        let text = String::from_utf8(tree.body.to_vec()).unwrap();
        assert!(text.contains("interface"), "{text}");

        let explain = ok(&request("GET", "/domains/auto/explain", b""));
        assert_eq!(explain.status, 200);
        let text = String::from_utf8(explain.body.to_vec()).unwrap();
        assert!(text.contains("\"rule\":"), "{text}");
        assert!(text.contains("\"accepted\":true"), "{text}");

        assert_eq!(ok(&request("GET", "/domains/nope/tree", b"")).status, 404);
        assert_eq!(
            ok(&request("GET", "/domains/nope/explain", b"")).status,
            404
        );
        assert_eq!(ok(&request("GET", "/nope", b"")).status, 404);
        assert_eq!(ok(&request("PUT", "/healthz", b"")).status, 405);
        assert_eq!(ok(&request("GET", "/metrics", b"")).status, 200);

        // The introspection surface answers even with everything
        // disabled: empty history, an empty event page, a status page.
        let history = ok(&request("GET", "/metrics/history", b""));
        assert_eq!(history.status, 200);
        assert_eq!(
            *history.body,
            b"{\"interval_ns\":0,\"capacity\":0,\"windows\":[]}"
        );
        let events = ok(&request("GET", "/debug/events", b""));
        assert_eq!(events.status, 200);
        let text = String::from_utf8(events.body.to_vec()).unwrap();
        assert!(text.contains("\"enabled\":false"), "{text}");
        assert_eq!(
            ok(&request("GET", "/debug/events?category=nope", b"")).status,
            400
        );
        let status = ok(&request("GET", "/debug/status", b""));
        assert_eq!(status.status, 200);
        let text = String::from_utf8(status.body.to_vec()).unwrap();
        assert!(text.contains("\"queue_depth\":0"), "{text}");
        assert!(text.contains("\"rolling\":{"), "{text}");
    }

    #[test]
    fn reload_without_a_path_is_a_client_error() {
        let store = auto_store();
        let telemetry = Telemetry::off();
        let config = ServerConfig::default();
        let observe = Observe::off();
        let response = handle(
            &request("POST", "/admin/reload", b""),
            &store,
            &telemetry,
            &telemetry,
            &config,
            &observe,
            0,
        );
        assert_eq!(response.status, 400);
        let text = String::from_utf8(response.body.to_vec()).unwrap();
        assert!(text.contains("no snapshot path"), "{text}");

        let response = handle(
            &request("POST", "/admin/reload", b"/definitely/not/a/file.snap"),
            &store,
            &telemetry,
            &telemetry,
            &config,
            &observe,
            0,
        );
        assert_eq!(response.status, 400);
    }

    #[test]
    fn metrics_negotiates_prometheus_and_json() {
        let store = auto_store();
        let telemetry = Telemetry::deterministic();
        telemetry.incr("probe.hits");
        drop(telemetry.timed("probe.work"));
        let config = ServerConfig::default();

        let observe = Observe::off();
        let json = handle(
            &request("GET", "/metrics", b""),
            &store,
            &telemetry,
            &telemetry,
            &config,
            &observe,
            0,
        );
        assert_eq!(json.status, 200);
        assert_eq!(json.content_type, "application/json");
        assert!(json.body.starts_with(b"{"));

        // Accept matching is case-insensitive per RFC 7231.
        let mut req = request("GET", "/metrics", b"");
        req.headers
            .push(("accept".to_string(), "TEXT/Plain".to_string()));
        let prom = handle(&req, &store, &telemetry, &telemetry, &config, &observe, 0);
        assert_eq!(prom.status, 200);
        assert_eq!(prom.content_type, "text/plain; version=0.0.4");
        let text = String::from_utf8(prom.body.to_vec()).unwrap();
        assert!(text.contains("qi_probe_hits_total 1"), "{text}");
        assert!(text.contains("# TYPE qi_probe_work histogram"), "{text}");
    }

    #[test]
    fn ingest_validates_and_rebuilds() {
        let store = auto_store();
        let telemetry = Telemetry::off();
        let config = ServerConfig::default();
        let before = store.get("auto").unwrap().interfaces();

        let observe = Observe::off();
        let bad = handle(
            &request("POST", "/domains/auto/interfaces", b"not an interface"),
            &store,
            &telemetry,
            &telemetry,
            &config,
            &observe,
            0,
        );
        assert_eq!(bad.status, 400);

        // An explicit "effective" registry receives the rebuild spans,
        // as under slow-request tracing.
        let local = Telemetry::deterministic();
        let good = handle(
            &request(
                "POST",
                "/domains/auto/interfaces",
                b"interface extra\n- Make\n- Model\n",
            ),
            &store,
            &telemetry,
            &local,
            &config,
            &observe,
            0,
        );
        assert_eq!(
            good.status,
            200,
            "{:?}",
            String::from_utf8(good.body.to_vec())
        );
        assert_eq!(store.get("auto").unwrap().interfaces(), before + 1);
        let snapshot = local.snapshot();
        assert!(snapshot.spans.contains_key("serve.ingest"));
        assert!(snapshot.spans.contains_key("serve.build_artifact"));

        let missing = handle(
            &request("POST", "/domains/zzz/interfaces", b"interface x\n- A\n"),
            &store,
            &telemetry,
            &telemetry,
            &config,
            &observe,
            0,
        );
        assert_eq!(missing.status, 404);
    }

    #[test]
    fn telemetry_labels_routes_without_domain_cardinality() {
        assert_eq!(
            route_name(&request("GET", "/domains/auto/labels", b"")),
            "labels"
        );
        assert_eq!(
            route_name(&request("GET", "/domains/books/labels", b"")),
            "labels"
        );
        assert_eq!(
            route_name(&request("GET", "/domains/auto/explain", b"")),
            "explain"
        );
        assert_eq!(
            route_name(&request("POST", "/domains/auto/interfaces", b"")),
            "ingest"
        );
        assert_eq!(route_name(&request("POST", "/admin/reload", b"")), "reload");
        assert_eq!(route_name(&request("DELETE", "/x", b"")), "other");
    }

    #[test]
    fn reason_phrases_cover_emitted_codes() {
        for code in [200u16, 400, 404, 405, 408, 410, 413, 422, 431, 500, 503] {
            assert_ne!(reason(code), "Unknown", "{code}");
        }
    }

    #[test]
    fn query_endpoint_executes_and_paginates() {
        let store = auto_store();
        let telemetry = Telemetry::off();
        let config = ServerConfig::default();
        let observe = Observe::off();
        let ok = |req: &Request| handle(req, &store, &telemetry, &telemetry, &config, &observe, 0);

        // GET with an encoded query.
        let page = ok(&request("GET", "/query?q=find%20fields&limit=2", b""));
        assert_eq!(page.status, 200);
        let text = String::from_utf8(page.body.to_vec()).unwrap();
        assert!(text.contains("\"query\":\"find fields\""), "{text}");
        assert!(text.contains("\"count\":2"), "{text}");
        let cursor = text
            .split("\"next_cursor\":\"")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .expect("auto has more than 2 fields");

        // Resuming with the cursor yields the next, different page.
        let next = ok(&request(
            "GET",
            &format!("/query?q=find%20fields&limit=2&cursor={cursor}"),
            b"",
        ));
        assert_eq!(next.status, 200);
        let next_text = String::from_utf8(next.body.to_vec()).unwrap();
        assert_ne!(text, next_text);

        // POST carries the query text verbatim in the body.
        let posted = ok(&request("POST", "/query", b"find fields where labeled"));
        assert_eq!(posted.status, 200);

        // Typed failures map to their statuses.
        assert_eq!(
            ok(&request("GET", "/query?q=find%20widgets", b"")).status,
            400
        );
        assert_eq!(ok(&request("GET", "/query", b"")).status, 400);
        assert_eq!(
            ok(&request("GET", "/query?q=find%20fields&limit=0", b"")).status,
            400
        );
        assert_eq!(
            ok(&request("GET", "/query?q=find%20fields&budget=1", b"")).status,
            422
        );
        assert_eq!(
            ok(&request("GET", "/query?q=find%20fields&cursor=zz", b"")).status,
            400
        );

        // A cursor outlives the artifact version it was cut from: 410.
        let extra = qi_schema::text_format::parse("interface extra\n- Make\n").unwrap();
        store.ingest("auto", extra).unwrap();
        assert_eq!(
            ok(&request(
                "GET",
                &format!("/query?q=find%20fields&limit=2&cursor={cursor}"),
                b"",
            ))
            .status,
            410
        );
    }

    #[test]
    fn query_endpoint_caches_cursorless_gets() {
        let store = auto_store();
        let telemetry = Telemetry::new();
        let config = ServerConfig::default();
        let observe = Observe::off();
        let ok = |req: &Request| handle(req, &store, &telemetry, &telemetry, &config, &observe, 0);

        let first = ok(&request("GET", "/query?q=find%20fields", b""));
        assert_eq!(first.status, 200);
        let etag = first
            .extra_headers
            .iter()
            .find(|(name, _)| *name == "etag")
            .map(|(_, value)| value.clone())
            .expect("cached query responses carry an etag");
        let again = ok(&request("GET", "/query?q=find%20fields", b""));
        assert_eq!(*first.body, *again.body);
        let snapshot = telemetry.snapshot();
        let hits = snapshot
            .counters
            .get("serve.cache.hits")
            .copied()
            .unwrap_or(0);
        assert!(hits >= 1, "repeat query must hit the rendered cache");

        // Revalidation with the entry's own ETag comes back 304.
        let mut revalidate = request("GET", "/query?q=find%20fields", b"");
        revalidate.headers.push(("if-none-match".to_string(), etag));
        let not_modified = ok(&revalidate);
        assert_eq!(not_modified.status, 304);
        assert!(not_modified.body.is_empty());
    }

    #[test]
    fn explain_pagination_rides_the_cursor_machinery() {
        let store = auto_store();
        let telemetry = Telemetry::off();
        let config = ServerConfig::default();
        let observe = Observe::off();
        let ok = |req: &Request| handle(req, &store, &telemetry, &telemetry, &config, &observe, 0);

        let full = ok(&request("GET", "/domains/auto/explain", b""));
        assert_eq!(full.status, 200);
        let full_text = String::from_utf8(full.body.to_vec()).unwrap();
        let total: usize = full_text
            .split("\"decisions\":")
            .nth(1)
            .and_then(|rest| rest.split(&[',', '}'][..]).next())
            .and_then(|n| n.parse().ok())
            .expect("explain reports its total");
        assert!(total > 2, "auto has several decisions");

        // Walk the stream two decisions at a time and count them.
        let mut seen = 0usize;
        let mut cursor: Option<String> = None;
        loop {
            let path = match &cursor {
                Some(c) => format!("/domains/auto/explain?limit=2&cursor={c}"),
                None => "/domains/auto/explain?limit=2".to_string(),
            };
            let page = ok(&request("GET", &path, b""));
            assert_eq!(page.status, 200);
            let text = String::from_utf8(page.body.to_vec()).unwrap();
            let count: usize = text
                .split("\"count\":")
                .nth(1)
                .and_then(|rest| rest.split(&[',', '}'][..]).next())
                .and_then(|n| n.parse().ok())
                .unwrap();
            assert!(count <= 2);
            seen += count;
            match text
                .split("\"next_cursor\":\"")
                .nth(1)
                .and_then(|rest| rest.split('"').next())
            {
                Some(next) => cursor = Some(next.to_string()),
                None => break,
            }
        }
        assert_eq!(seen, total, "paged explain covers every decision");

        // A query cursor pasted into explain is rejected.
        let q = ok(&request("GET", "/query?q=find%20fields&limit=1", b""));
        let q_text = String::from_utf8(q.body.to_vec()).unwrap();
        let q_cursor = q_text
            .split("\"next_cursor\":\"")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .unwrap();
        assert_eq!(
            ok(&request(
                "GET",
                &format!("/domains/auto/explain?cursor={q_cursor}"),
                b"",
            ))
            .status,
            400
        );

        // Re-labeling the domain invalidates outstanding explain cursors.
        let page = ok(&request("GET", "/domains/auto/explain?limit=1", b""));
        let text = String::from_utf8(page.body.to_vec()).unwrap();
        let stale = text
            .split("\"next_cursor\":\"")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .unwrap()
            .to_string();
        let extra = qi_schema::text_format::parse("interface extra\n- Make\n").unwrap();
        store.ingest("auto", extra).unwrap();
        assert_eq!(
            ok(&request(
                "GET",
                &format!("/domains/auto/explain?cursor={stale}"),
                b"",
            ))
            .status,
            410
        );
    }
}
