//! Zero-dependency HTTP/1.1 server over the artifact [`Store`].
//!
//! One acceptor thread feeds accepted connections into a bounded
//! [`JobQueue`]; a fixed worker pool drains it. When the queue is full
//! the acceptor answers `503` immediately instead of letting the
//! backlog grow. Shutdown is graceful: the acceptor stops accepting,
//! the queue is closed, and workers finish every in-flight and queued
//! request before the server thread exits.
//!
//! # Per-request observability
//!
//! Every accepted connection gets a monotonic request id, echoed back
//! in an `x-qi-request-id` response header. Queue time is measured from
//! accept to worker pickup (`serve.queue.wait` histogram,
//! `serve.queue.depth` gauge); handler time feeds a per-route
//! `serve.http.{route}` span + latency histogram. With
//! [`ServerConfig::access_log`] set, one structured line per request is
//! written to stderr or an append-only file; with
//! [`ServerConfig::slow_ms`] set, requests over the threshold
//! additionally log their full per-stage span breakdown, captured in a
//! request-local registry and merged into the global one afterwards.

use crate::artifact::DomainArtifact;
use crate::http::{read_request, Request, RequestError, Response};
use crate::store::{CacheEntry, Store};
use qi_runtime::json::{Arr, Obj};
use qi_runtime::{resolve_threads, JobQueue, Telemetry};
use std::io;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Tunables of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` picks an ephemeral port.
    pub addr: String,
    /// Worker threads (`0` → [`resolve_threads`] default).
    pub threads: usize,
    /// Bounded connection queue depth; beyond it the acceptor sheds
    /// load with `503`.
    pub queue_depth: usize,
    /// Cap on request bodies, in bytes.
    pub max_body: usize,
    /// Per-connection socket read timeout, in milliseconds.
    pub read_timeout_ms: u64,
    /// Per-connection socket write timeout, in milliseconds.
    pub write_timeout_ms: u64,
    /// Access-log sink: `None` disables it, `"stderr"` logs to stderr,
    /// anything else is an append-only file path.
    pub access_log: Option<String>,
    /// Log a per-stage span breakdown for requests at or above this
    /// many milliseconds (to the access-log sink, or stderr without
    /// one). `None` disables slow-request tracing.
    pub slow_ms: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 0,
            queue_depth: 64,
            max_body: 256 * 1024,
            read_timeout_ms: 5_000,
            write_timeout_ms: 5_000,
            access_log: None,
            slow_ms: None,
        }
    }
}

/// Where access-log lines go.
enum AccessLog {
    /// No sink configured.
    Off,
    Stderr,
    File(Mutex<std::fs::File>),
}

impl AccessLog {
    fn open(sink: Option<&str>) -> io::Result<AccessLog> {
        match sink {
            None => Ok(AccessLog::Off),
            Some("stderr") => Ok(AccessLog::Stderr),
            Some(path) => Ok(AccessLog::File(Mutex::new(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)?,
            ))),
        }
    }

    fn log(&self, line: &str) {
        match self {
            AccessLog::Off => {}
            AccessLog::Stderr => eprintln!("{line}"),
            AccessLog::File(file) => {
                if let Ok(mut file) = file.lock() {
                    let _ = writeln!(file, "{line}");
                }
            }
        }
    }

    /// Like [`AccessLog::log`], but slow-request breakdowns still land
    /// on stderr when no access log is configured.
    fn log_or_stderr(&self, line: &str) {
        match self {
            AccessLog::Off => eprintln!("{line}"),
            sink => sink.log(line),
        }
    }
}

/// One accepted connection waiting for a worker.
struct Job {
    stream: TcpStream,
    /// Monotonic request id, echoed as `x-qi-request-id`.
    id: u64,
    /// When the acceptor enqueued the connection.
    enqueued: Instant,
}

/// A configured, not-yet-started server.
pub struct Server {
    store: Arc<Store>,
    telemetry: Telemetry,
    config: ServerConfig,
}

/// Handle to a running server: its bound address and a graceful-stop
/// switch. Dropping the handle shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Wrap a store with the default configuration.
    pub fn new(store: Arc<Store>, telemetry: Telemetry) -> Self {
        Server::with_config(store, telemetry, ServerConfig::default())
    }

    /// Wrap a store with an explicit configuration.
    pub fn with_config(store: Arc<Store>, telemetry: Telemetry, config: ServerConfig) -> Self {
        Server {
            store,
            telemetry,
            config,
        }
    }

    /// Bind the listener and start the acceptor + worker pool in a
    /// background thread. The returned handle knows the bound address
    /// (useful with port `0`).
    pub fn start(self) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&self.config.addr)?;
        let addr = listener.local_addr()?;
        let access_log = AccessLog::open(self.config.access_log.as_deref())?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let thread = std::thread::Builder::new()
            .name("qi-serve".to_string())
            .spawn(move || run(listener, addr, self, access_log, flag))?;
        Ok(ServerHandle {
            addr,
            shutdown,
            thread: Some(thread),
        })
    }
}

impl ServerHandle {
    /// The address the server is actually listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Block until the server thread exits on its own (e.g. after a
    /// `POST /admin/shutdown`). Does not trigger a stop itself.
    pub fn wait(&mut self) {
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }

    /// Request a graceful stop and wait for in-flight requests to
    /// drain. Idempotent.
    pub fn shutdown(&mut self) {
        trigger_shutdown(&self.shutdown, self.addr);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Flip the stop flag and poke the blocking `accept` with a throwaway
/// connection so the acceptor notices immediately.
fn trigger_shutdown(flag: &AtomicBool, addr: SocketAddr) {
    if !flag.swap(true, Ordering::SeqCst) {
        let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(500));
    }
}

/// Acceptor + worker pool; runs on the dedicated server thread until
/// shutdown.
fn run(
    listener: TcpListener,
    addr: SocketAddr,
    server: Server,
    access_log: AccessLog,
    shutdown: Arc<AtomicBool>,
) {
    let Server {
        store,
        telemetry,
        config,
    } = server;
    let workers = resolve_threads(config.threads);
    let queue: JobQueue<Job> = JobQueue::bounded(config.queue_depth);
    let next_id = AtomicU64::new(1);
    telemetry.gauge("serve.workers", workers as u64);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                while let Some(job) = queue.pop() {
                    telemetry.observe("serve.queue.wait", job.enqueued.elapsed().as_nanos() as u64);
                    telemetry.gauge("serve.queue.depth", queue.len() as u64);
                    handle_connection(
                        job,
                        &store,
                        &telemetry,
                        &config,
                        &access_log,
                        &shutdown,
                        addr,
                    );
                }
            });
        }

        for accepted in listener.incoming() {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = accepted else { continue };
            // One request per connection: Nagle only delays the tail of
            // our two-write responses, so turn it off.
            let _ = stream.set_nodelay(true);
            let _ = stream.set_read_timeout(Some(Duration::from_millis(config.read_timeout_ms)));
            let _ = stream.set_write_timeout(Some(Duration::from_millis(config.write_timeout_ms)));
            let job = Job {
                stream,
                id: next_id.fetch_add(1, Ordering::Relaxed),
                enqueued: Instant::now(),
            };
            if let Err(mut rejected) = queue.push(job) {
                // Queue full: shed load here instead of queueing grief.
                telemetry.incr("serve.shed");
                let _ =
                    Response::error(503, "server is at capacity").write_to(&mut rejected.stream);
            }
            telemetry.gauge_max("serve.queue.depth.max", queue.len() as u64);
        }

        // Stop feeding, let workers drain what is already queued.
        queue.close();
    });
}

/// Serve one connection: read a request, route it, write the response.
/// Never panics outward — a handler panic becomes a `500`.
fn handle_connection(
    job: Job,
    store: &Store,
    telemetry: &Telemetry,
    config: &ServerConfig,
    access_log: &AccessLog,
    shutdown: &Arc<AtomicBool>,
    addr: SocketAddr,
) {
    let Job {
        mut stream,
        id,
        enqueued,
    } = job;
    let queue_wait = enqueued.elapsed();
    let started = Instant::now();
    let request = match read_request(&mut stream, config.max_body) {
        Ok(request) => request,
        Err(RequestError::Closed) => return,
        Err(err) => {
            let (status, message) = match err {
                RequestError::HeadTooLarge => (431, "request head too large".to_string()),
                RequestError::BodyTooLarge => (413, "request body too large".to_string()),
                RequestError::Malformed(what) => (400, what),
                RequestError::Io(_) => (408, "timed out reading request".to_string()),
                RequestError::Closed => unreachable!(),
            };
            telemetry.incr("serve.errors.read");
            let response =
                Response::error(status, &message).header("x-qi-request-id", id.to_string());
            let _ = response.write_to(&mut stream);
            access_log.log(&access_line(
                id,
                "-",
                "read_error",
                "-",
                status,
                response.body.len(),
                started.elapsed(),
                queue_wait,
            ));
            // The peer may still be sending the bytes we refused to read.
            // Closing now would RST the connection and discard the error
            // response; send our FIN first and briefly drain instead.
            drain_before_close(&mut stream);
            return;
        }
    };

    // With slow-request tracing on, handler spans go into a request-
    // local registry (so the breakdown is this request's alone), then
    // merge into the global one.
    let local = config.slow_ms.map(|_| Telemetry::new());
    let effective = local.as_ref().unwrap_or(telemetry);

    let route = route_name(&request);
    let (requests_key, span_key) = route_keys(route);
    telemetry.incr(requests_key);
    let timed = telemetry.timed(span_key);
    let response = catch_unwind(AssertUnwindSafe(|| {
        handle(&request, store, telemetry, effective)
    }))
    .unwrap_or_else(|_| {
        telemetry.incr("serve.panics");
        Response::error(500, "internal error")
    });
    drop(timed);
    let latency = started.elapsed();
    if response.status >= 400 {
        telemetry.incr(&format!("serve.errors.{route}"));
    }
    let response = response.header("x-qi-request-id", id.to_string());
    let _ = response.write_to(&mut stream);

    access_log.log(&access_line(
        id,
        &request.method,
        route,
        &request.path,
        response.status,
        response.body.len(),
        latency,
        queue_wait,
    ));
    if let (Some(slow_ms), Some(local)) = (config.slow_ms, &local) {
        let snapshot = local.snapshot();
        if latency.as_millis() as u64 >= slow_ms {
            let mut stages = String::new();
            for (name, span) in &snapshot.spans {
                stages.push_str(&format!(" {name}={}us", span.total_ns / 1_000));
            }
            access_log.log_or_stderr(&format!(
                "slow req={id} route={route} latency_us={}{stages}",
                latency.as_micros()
            ));
        }
        telemetry.absorb(&snapshot);
    }

    // The shutdown endpoint answers first, then stops the server.
    if route == "shutdown" && response.status == 200 {
        trigger_shutdown(shutdown, addr);
    }
}

/// One structured access-log line.
#[allow(clippy::too_many_arguments)]
fn access_line(
    id: u64,
    method: &str,
    route: &str,
    path: &str,
    status: u16,
    bytes: usize,
    latency: Duration,
    queue_wait: Duration,
) -> String {
    format!(
        "req={id} method={method} route={route} path={path} status={status} bytes={bytes} \
         latency_us={} queue_wait_us={}",
        latency.as_micros(),
        queue_wait.as_micros()
    )
}

/// Half-close the write side and swallow (bounded) whatever request
/// bytes are still in flight, so the error response survives the close.
fn drain_before_close(stream: &mut TcpStream) {
    use std::io::Read;
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut sink = [0u8; 4096];
    let mut budget = 1 << 20;
    while budget > 0 {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(n) => budget -= n.min(budget),
        }
    }
}

/// Stable route label for telemetry (no per-domain cardinality).
fn route_name(request: &Request) -> &'static str {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => "healthz",
        ("GET", ["metrics"]) => "metrics",
        ("GET", ["domains"]) => "domains",
        ("GET", ["domains", _, "labels"]) => "labels",
        ("GET", ["domains", _, "tree"]) => "tree",
        ("GET", ["domains", _, "explain"]) => "explain",
        ("POST", ["domains", _, "interfaces"]) => "ingest",
        ("POST", ["admin", "shutdown"]) => "shutdown",
        _ => "other",
    }
}

/// Pre-built telemetry keys (`serve.requests.*`, `serve.http.*`) per
/// route, so the per-request hot path allocates no key strings.
fn route_keys(route: &'static str) -> (&'static str, &'static str) {
    match route {
        "healthz" => ("serve.requests.healthz", "serve.http.healthz"),
        "metrics" => ("serve.requests.metrics", "serve.http.metrics"),
        "domains" => ("serve.requests.domains", "serve.http.domains"),
        "labels" => ("serve.requests.labels", "serve.http.labels"),
        "tree" => ("serve.requests.tree", "serve.http.tree"),
        "explain" => ("serve.requests.explain", "serve.http.explain"),
        "ingest" => ("serve.requests.ingest", "serve.http.ingest"),
        "shutdown" => ("serve.requests.shutdown", "serve.http.shutdown"),
        _ => ("serve.requests.other", "serve.http.other"),
    }
}

/// Route a parsed request to its handler.
///
/// `telemetry` is the server-global registry (what `GET /metrics`
/// reports); `effective` is where this request's pipeline spans land —
/// the same registry normally, a request-local one under slow-request
/// tracing.
fn handle(
    request: &Request,
    store: &Store,
    telemetry: &Telemetry,
    effective: &Telemetry,
) -> Response {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => Response::json(
            200,
            Obj::new()
                .str("status", "ok")
                .u64("domains", store.len() as u64)
                .finish(),
        ),
        ("GET", ["metrics"]) => metrics(request, telemetry),
        ("GET", ["domains"]) => {
            // The listing is rendered from the whole domain map, so it
            // is versioned by the store generation, not one artifact.
            let generation = store.generation();
            let entry = match store.cached("", "domains", generation) {
                Some(entry) => {
                    telemetry.incr("serve.cache.hits");
                    entry
                }
                None => {
                    telemetry.incr("serve.cache.misses");
                    let rendered = list_domains(store);
                    store.insert_cached(
                        String::new(),
                        "domains",
                        CacheEntry::of(generation, &rendered),
                    )
                }
            };
            respond_from_cache(request, &entry)
        }
        ("GET", ["domains", domain, "labels"]) => {
            cached_get(request, store, domain, "labels", telemetry, labels)
        }
        ("GET", ["domains", domain, "tree"]) => {
            cached_get(request, store, domain, "tree", telemetry, tree)
        }
        ("GET", ["domains", domain, "explain"]) => {
            cached_get(request, store, domain, "explain", telemetry, explain)
        }
        ("POST", ["domains", domain, "interfaces"]) => ingest(request, store, domain, effective),
        ("POST", ["admin", "shutdown"]) => {
            Response::json(200, Obj::new().str("status", "shutting down").finish())
        }
        (method, _) if !matches!(method, "GET" | "POST") => {
            Response::error(405, "method not allowed")
        }
        _ => Response::error(404, "no such resource"),
    }
}

/// `GET /metrics` with content negotiation: the Prometheus text
/// exposition when the `Accept` header asks for `text/plain`, sorted
/// JSON otherwise.
fn metrics(request: &Request, telemetry: &Telemetry) -> Response {
    let snapshot = telemetry.snapshot();
    let wants_prometheus = request
        .header("accept")
        .is_some_and(|accept| accept.contains("text/plain"));
    if wants_prometheus {
        Response::with_type(
            200,
            "text/plain; version=0.0.4",
            qi_runtime::prometheus_text(&snapshot),
        )
    } else {
        Response::json(200, snapshot.to_json())
    }
}

/// Serve a per-domain GET through the rendered-response cache: look up
/// the domain, validate any cached entry against the artifact's current
/// version, render on a miss, and answer `304 Not Modified` when the
/// client's `If-None-Match` already names the entry's ETag.
fn cached_get(
    request: &Request,
    store: &Store,
    domain: &str,
    endpoint: &'static str,
    telemetry: &Telemetry,
    render: fn(&DomainArtifact) -> Response,
) -> Response {
    let Some(artifact) = store.get(domain) else {
        return Response::error(404, "no such domain");
    };
    let slug = artifact.slug();
    let entry = match store.cached(&slug, endpoint, artifact.version) {
        Some(entry) => {
            telemetry.incr("serve.cache.hits");
            entry
        }
        None => {
            telemetry.incr("serve.cache.misses");
            let rendered = render(&artifact);
            store.insert_cached(slug, endpoint, CacheEntry::of(artifact.version, &rendered))
        }
    };
    respond_from_cache(request, &entry)
}

/// Materialize a response from a cache entry: `304` without a body when
/// the client already holds these exact bytes, `200` sharing them
/// otherwise. Both carry the entry's ETag.
fn respond_from_cache(request: &Request, entry: &CacheEntry) -> Response {
    if request.header("if-none-match") == Some(entry.etag.as_str()) {
        return Response::bytes(304, entry.content_type, Arc::new(Vec::new()))
            .header("etag", entry.etag.clone());
    }
    Response::bytes(200, entry.content_type, Arc::clone(&entry.body))
        .header("etag", entry.etag.clone())
}

fn class_str(artifact: &DomainArtifact) -> String {
    artifact
        .class
        .map(|c| c.to_string())
        .unwrap_or_else(|| "unclassified".to_string())
}

fn summary(artifact: &DomainArtifact) -> String {
    Obj::new()
        .str("domain", &artifact.name)
        .str("slug", &artifact.slug())
        .u64("interfaces", artifact.interfaces() as u64)
        .u64("clusters", artifact.mapping.len() as u64)
        .u64("leaves", artifact.leaf_cluster.len() as u64)
        .str("class", &class_str(artifact))
        .finish()
}

fn list_domains(store: &Store) -> Response {
    let mut arr = Arr::new();
    for slug in store.slugs() {
        if let Some(artifact) = store.get(&slug) {
            arr.raw(summary(&artifact));
        }
    }
    Response::json(200, Obj::new().raw("domains", arr.finish()).finish())
}

fn labels(artifact: &DomainArtifact) -> Response {
    let mut arr = Arr::new();
    for (&node, &cluster) in &artifact.leaf_cluster {
        let leaf = artifact.labeled.node(node);
        let mut obj = Obj::new();
        obj.u64("node", node.0 as u64);
        match &leaf.label {
            Some(label) => obj.str("label", label),
            None => obj.raw("label", "null"),
        };
        obj.str("cluster", &artifact.mapping.cluster(cluster).concept);
        arr.raw(obj.finish());
    }
    Response::json(
        200,
        Obj::new()
            .str("domain", &artifact.name)
            .str("class", &class_str(artifact))
            .u64("unlabeled_fields", artifact.unlabeled_fields as u64)
            .u64("labeled_internal", artifact.labeled_internal as u64)
            .raw("labels", arr.finish())
            .finish(),
    )
}

fn tree(artifact: &DomainArtifact) -> Response {
    Response::json(
        200,
        Obj::new()
            .str("domain", &artifact.name)
            .str("class", &class_str(artifact))
            .str("tree", &qi_schema::text_format::render(&artifact.labeled))
            .finish(),
    )
}

/// `GET /domains/{d}/explain`: the per-node labeling-decision
/// provenance of the domain's current artifact.
fn explain(artifact: &DomainArtifact) -> Response {
    let mut arr = Arr::new();
    for decision in &artifact.decisions {
        let mut candidates = Arr::new();
        for candidate in &decision.candidates {
            candidates.raw(
                Obj::new()
                    .str("label", &candidate.label)
                    .u64("frequency", candidate.frequency)
                    .bool("accepted", candidate.accepted)
                    .str("note", &candidate.note)
                    .finish(),
            );
        }
        let mut obj = Obj::new();
        obj.u64("node", decision.node as u64);
        obj.str("path", &decision.path);
        obj.str("rule", &decision.rule);
        match &decision.chosen {
            Some(label) => obj.str("label", label),
            None => obj.raw("label", "null"),
        };
        obj.raw("candidates", candidates.finish());
        arr.raw(obj.finish());
    }
    Response::json(
        200,
        Obj::new()
            .str("domain", &artifact.name)
            .u64("decisions", artifact.decisions.len() as u64)
            .raw("explain", arr.finish())
            .finish(),
    )
}

fn ingest(request: &Request, store: &Store, domain: &str, telemetry: &Telemetry) -> Response {
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return Response::error(400, "interface body is not UTF-8");
    };
    let interface = match qi_schema::text_format::parse(text) {
        Ok(interface) => interface,
        Err(err) => return Response::error(400, &format!("bad interface: {err}")),
    };
    match store.ingest_with(domain, interface, telemetry) {
        Some(artifact) => Response::json(200, summary(&artifact)),
        None => Response::error(404, "no such domain"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::build_artifact;
    use crate::http::reason;
    use qi_core::NamingPolicy;
    use qi_lexicon::Lexicon;

    fn request(method: &str, path: &str, body: &[u8]) -> Request {
        Request {
            method: method.to_string(),
            path: path.to_string(),
            headers: Vec::new(),
            body: body.to_vec(),
        }
    }

    fn auto_store() -> Store {
        let lexicon = Lexicon::builtin();
        let telemetry = Telemetry::off();
        let artifact = build_artifact(
            &qi_datasets::auto::domain(),
            &lexicon,
            NamingPolicy::default(),
            &telemetry,
        );
        Store::new(vec![artifact], lexicon, NamingPolicy::default(), telemetry)
    }

    #[test]
    fn routes_cover_the_api_surface() {
        let store = auto_store();
        let telemetry = Telemetry::off();
        let ok = |req: &Request| handle(req, &store, &telemetry, &telemetry);

        let health = ok(&request("GET", "/healthz", b""));
        assert_eq!(health.status, 200);
        assert_eq!(*health.body, b"{\"status\":\"ok\",\"domains\":1}");

        let domains = ok(&request("GET", "/domains", b""));
        assert_eq!(domains.status, 200);
        let text = String::from_utf8(domains.body.to_vec()).unwrap();
        assert!(text.contains("\"slug\":\"auto\""), "{text}");

        let labels = ok(&request("GET", "/domains/auto/labels", b""));
        assert_eq!(labels.status, 200);
        let text = String::from_utf8(labels.body.to_vec()).unwrap();
        assert!(text.contains("\"labels\":["), "{text}");

        let tree = ok(&request("GET", "/domains/Auto/tree", b""));
        assert_eq!(tree.status, 200);
        let text = String::from_utf8(tree.body.to_vec()).unwrap();
        assert!(text.contains("interface"), "{text}");

        let explain = ok(&request("GET", "/domains/auto/explain", b""));
        assert_eq!(explain.status, 200);
        let text = String::from_utf8(explain.body.to_vec()).unwrap();
        assert!(text.contains("\"rule\":"), "{text}");
        assert!(text.contains("\"accepted\":true"), "{text}");

        assert_eq!(ok(&request("GET", "/domains/nope/tree", b"")).status, 404);
        assert_eq!(
            ok(&request("GET", "/domains/nope/explain", b"")).status,
            404
        );
        assert_eq!(ok(&request("GET", "/nope", b"")).status, 404);
        assert_eq!(ok(&request("PUT", "/healthz", b"")).status, 405);
        assert_eq!(ok(&request("GET", "/metrics", b"")).status, 200);
    }

    #[test]
    fn metrics_negotiates_prometheus_and_json() {
        let store = auto_store();
        let telemetry = Telemetry::deterministic();
        telemetry.incr("probe.hits");
        drop(telemetry.timed("probe.work"));

        let json = handle(
            &request("GET", "/metrics", b""),
            &store,
            &telemetry,
            &telemetry,
        );
        assert_eq!(json.status, 200);
        assert_eq!(json.content_type, "application/json");
        assert!(json.body.starts_with(b"{"));

        let mut req = request("GET", "/metrics", b"");
        req.headers
            .push(("accept".to_string(), "text/plain".to_string()));
        let prom = handle(&req, &store, &telemetry, &telemetry);
        assert_eq!(prom.status, 200);
        assert_eq!(prom.content_type, "text/plain; version=0.0.4");
        let text = String::from_utf8(prom.body.to_vec()).unwrap();
        assert!(text.contains("qi_probe_hits_total 1"), "{text}");
        assert!(text.contains("# TYPE qi_probe_work histogram"), "{text}");
    }

    #[test]
    fn ingest_validates_and_rebuilds() {
        let store = auto_store();
        let telemetry = Telemetry::off();
        let before = store.get("auto").unwrap().interfaces();

        let bad = handle(
            &request("POST", "/domains/auto/interfaces", b"not an interface"),
            &store,
            &telemetry,
            &telemetry,
        );
        assert_eq!(bad.status, 400);

        // An explicit "effective" registry receives the rebuild spans,
        // as under slow-request tracing.
        let local = Telemetry::deterministic();
        let good = handle(
            &request(
                "POST",
                "/domains/auto/interfaces",
                b"interface extra\n- Make\n- Model\n",
            ),
            &store,
            &telemetry,
            &local,
        );
        assert_eq!(
            good.status,
            200,
            "{:?}",
            String::from_utf8(good.body.to_vec())
        );
        assert_eq!(store.get("auto").unwrap().interfaces(), before + 1);
        let snapshot = local.snapshot();
        assert!(snapshot.spans.contains_key("serve.ingest"));
        assert!(snapshot.spans.contains_key("serve.build_artifact"));

        let missing = handle(
            &request("POST", "/domains/zzz/interfaces", b"interface x\n- A\n"),
            &store,
            &telemetry,
            &telemetry,
        );
        assert_eq!(missing.status, 404);
    }

    #[test]
    fn telemetry_labels_routes_without_domain_cardinality() {
        assert_eq!(
            route_name(&request("GET", "/domains/auto/labels", b"")),
            "labels"
        );
        assert_eq!(
            route_name(&request("GET", "/domains/books/labels", b"")),
            "labels"
        );
        assert_eq!(
            route_name(&request("GET", "/domains/auto/explain", b"")),
            "explain"
        );
        assert_eq!(
            route_name(&request("POST", "/domains/auto/interfaces", b"")),
            "ingest"
        );
        assert_eq!(route_name(&request("DELETE", "/x", b"")), "other");
    }

    #[test]
    fn reason_phrases_cover_emitted_codes() {
        for code in [200u16, 400, 404, 405, 408, 413, 431, 500, 503] {
            assert_ne!(reason(code), "Unknown", "{code}");
        }
    }
}
