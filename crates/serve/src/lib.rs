//! Snapshot-backed labeling service.
//!
//! The batch pipeline (cluster → merge → label) rebuilds every artifact
//! from scratch on each invocation. This crate turns the pipeline into a
//! long-lived process in two layers:
//!
//! * [`snapshot`] — a versioned, std-only binary store (magic + format
//!   version + section table + per-section checksums) persisting the
//!   fully built per-domain artifacts: source schemas, clusters,
//!   normalized labels with their interned symbol table, the merged and
//!   labeled integrated tree, and the naming report digest. A server
//!   cold-starts by loading a snapshot instead of re-running the
//!   pipeline.
//! * [`server`] — a zero-dependency HTTP/1.1 server on
//!   `std::net::TcpListener` with a bounded acceptor/worker pool
//!   ([`qi_runtime::JobQueue`] + scoped workers), read endpoints over
//!   the snapshot and one write endpoint that re-clusters, re-merges
//!   and re-labels *only the affected domain* behind a copy-on-write
//!   swap — readers keep serving the old artifact, no global stall.
//!
//! [`artifact`] defines the unit both layers exchange: one domain's
//! fully built serving state, and [`store`] holds the live artifact map
//! behind an `RwLock`.

pub mod artifact;
pub mod http;
pub mod queryapi;
pub mod server;
pub mod snapshot;
pub mod store;

pub use artifact::{
    build_artifact, build_corpus_artifacts, ingest_interface, ingest_interface_full, DeltaState,
    DomainArtifact,
};
pub use queryapi::{page_json, run_query, view_of, PageParams, QueryError, QueryPage};
pub use server::{Server, ServerConfig, ServerHandle};
pub use snapshot::{load_snapshot, write_snapshot, Snapshot, SnapshotError, FORMAT_VERSION};
pub use store::{CacheEntry, Store};
