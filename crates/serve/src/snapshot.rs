//! Versioned binary snapshot store.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic      8 bytes   b"QISNAP01"
//! version    u32       FORMAT_VERSION
//! sections   u32       number of sections
//! table      per section:
//!              name      u32 length + UTF-8 bytes
//!              offset    u64   into the payload region
//!              length    u64   payload bytes
//!              checksum  u64   FNV-1a 64 of the payload
//! payloads   concatenated section payloads
//! ```
//!
//! One `"meta"` section carries the naming policy and the domain count;
//! one `"domain/<slug>"` section per domain carries the full
//! [`DomainArtifact`]; an optional `"decisions/<slug>"` section per
//! domain carries the labeling-decision provenance (omitted when
//! empty, so snapshots without provenance are byte-identical to the
//! pre-provenance format). Trees are encoded natively (node arena in id
//! order), so the round trip is exact for any label or instance text and
//! re-encoding a loaded snapshot reproduces the input byte for byte.
//!
//! The reader refuses snapshots with a bad magic, a future format
//! version, a truncated table or payload, or a section whose checksum
//! does not match — corruption is reported, never parsed. Sections with
//! an *unrecognized name* are checksum-verified and then skipped, so a
//! version-1 reader tolerates optional sections added later.

use crate::artifact::DomainArtifact;
use qi_core::{
    ConsistencyClass, ConsistencyLevel, InferenceRule, LabelSelection, LiUsage, NamingPolicy,
};
use qi_mapping::{ClusterId, FieldRef, Mapping};
use qi_schema::{NodeId, SchemaTree, Widget};
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// Leading magic bytes of every snapshot file.
pub const MAGIC: [u8; 8] = *b"QISNAP01";

/// Current snapshot format version. Readers refuse anything newer.
pub const FORMAT_VERSION: u32 = 1;

/// A fully materialized snapshot: the policy the artifacts were built
/// under, and every domain artifact in serving order.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Naming policy used for every domain in the snapshot.
    pub policy: NamingPolicy,
    /// Per-domain artifacts, in corpus (Table 6) order.
    pub domains: Vec<DomainArtifact>,
}

/// Why a snapshot could not be read or written.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file was written by a newer format than this reader supports.
    UnsupportedVersion {
        /// Version found in the file header.
        found: u32,
        /// Newest version this reader supports.
        supported: u32,
    },
    /// The file ends before a declared structure does.
    Truncated,
    /// A section's payload does not match its recorded checksum.
    ChecksumMismatch {
        /// Name of the corrupted section.
        section: String,
    },
    /// A payload decoded to something structurally invalid.
    Malformed(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(err) => write!(f, "snapshot i/o error: {err}"),
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot format version {found} is newer than supported version {supported}"
            ),
            SnapshotError::Truncated => write!(f, "snapshot file is truncated"),
            SnapshotError::ChecksumMismatch { section } => {
                write!(f, "snapshot section {section:?} failed its checksum")
            }
            SnapshotError::Malformed(what) => write!(f, "malformed snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(err: std::io::Error) -> Self {
        SnapshotError::Io(err)
    }
}

/// FNV-1a 64-bit hash of a byte slice (the section checksum).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------
// Byte-level writer/reader
// ---------------------------------------------------------------------

#[derive(Default)]
struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn opt_str(&mut self, s: Option<&str>) {
        match s {
            Some(s) => {
                self.u8(1);
                self.str(s);
            }
            None => self.u8(0),
        }
    }
}

struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A declared element count, rejected when it provably exceeds the
    /// remaining bytes (each element needs at least `min_size` bytes) —
    /// keeps corrupt counts from triggering huge allocations.
    fn count(&mut self, min_size: usize) -> Result<usize, SnapshotError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_size.max(1)) > self.remaining() {
            return Err(SnapshotError::Truncated);
        }
        Ok(n)
    }

    fn str(&mut self) -> Result<String, SnapshotError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Malformed("string is not UTF-8".into()))
    }

    fn opt_str(&mut self) -> Result<Option<String>, SnapshotError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.str()?)),
            tag => Err(SnapshotError::Malformed(format!("bad option tag {tag}"))),
        }
    }
}

// ---------------------------------------------------------------------
// Tree / mapping / artifact codecs
// ---------------------------------------------------------------------

fn widget_code(widget: Widget) -> u8 {
    match widget {
        Widget::TextBox => 0,
        Widget::SelectList => 1,
        Widget::RadioButtons => 2,
        Widget::CheckBoxes => 3,
    }
}

fn widget_from(code: u8) -> Result<Widget, SnapshotError> {
    Ok(match code {
        0 => Widget::TextBox,
        1 => Widget::SelectList,
        2 => Widget::RadioButtons,
        3 => Widget::CheckBoxes,
        other => return Err(SnapshotError::Malformed(format!("bad widget code {other}"))),
    })
}

fn write_tree(w: &mut ByteWriter, tree: &SchemaTree) {
    w.str(tree.name());
    let nodes: Vec<_> = tree.nodes().collect();
    w.u32(nodes.len() as u32);
    for node in nodes {
        match node.parent {
            Some(parent) => w.u32(parent.0),
            None => w.u32(u32::MAX),
        }
        w.opt_str(node.label.as_deref());
        if node.is_leaf() {
            w.u8(1);
            w.u8(widget_code(match &node.kind {
                qi_schema::NodeKind::Leaf { widget, .. } => *widget,
                qi_schema::NodeKind::Internal => unreachable!(),
            }));
            let instances = node.instances();
            w.u32(instances.len() as u32);
            for inst in instances {
                w.str(inst);
            }
        } else {
            w.u8(0);
        }
    }
}

fn read_tree(r: &mut ByteReader) -> Result<SchemaTree, SnapshotError> {
    let name = r.str()?;
    let count = r.count(6)?;
    if count == 0 {
        return Err(SnapshotError::Malformed("tree with no nodes".into()));
    }
    let mut tree = SchemaTree::new(&name);
    for index in 0..count {
        let parent = r.u32()?;
        let label = r.opt_str()?;
        let is_leaf = r.u8()? != 0;
        if index == 0 {
            if parent != u32::MAX || is_leaf {
                return Err(SnapshotError::Malformed("bad root node".into()));
            }
            tree.set_label(NodeId::ROOT, label);
            continue;
        }
        if parent as usize >= index {
            return Err(SnapshotError::Malformed(format!(
                "node {index} has forward parent {parent}"
            )));
        }
        let parent = NodeId(parent);
        if is_leaf {
            let widget = widget_from(r.u8()?)?;
            let n = r.count(4)?;
            let mut instances = Vec::with_capacity(n);
            for _ in 0..n {
                instances.push(r.str()?);
            }
            tree.add_leaf_full(parent, label.as_deref(), widget, instances);
        } else {
            tree.add_internal(parent, label.as_deref());
        }
    }
    Ok(tree)
}

fn write_mapping(w: &mut ByteWriter, mapping: &Mapping) {
    w.u32(mapping.len() as u32);
    for i in 0..mapping.len() {
        let cluster = mapping.cluster(ClusterId(i as u32));
        w.str(&cluster.concept);
        w.u32(cluster.members.len() as u32);
        for member in &cluster.members {
            w.u32(member.schema as u32);
            w.u32(member.node.0);
        }
    }
}

fn read_mapping(r: &mut ByteReader) -> Result<Mapping, SnapshotError> {
    let count = r.count(8)?;
    let mut clusters = Vec::with_capacity(count);
    for _ in 0..count {
        let concept = r.str()?;
        let members = r.count(8)?;
        let mut refs = Vec::with_capacity(members);
        for _ in 0..members {
            let schema = r.u32()? as usize;
            let node = NodeId(r.u32()?);
            refs.push(FieldRef { schema, node });
        }
        clusters.push((concept, refs));
    }
    Ok(Mapping::from_clusters(clusters))
}

fn class_code(class: Option<ConsistencyClass>) -> u8 {
    match class {
        None => 0,
        Some(ConsistencyClass::Consistent) => 1,
        Some(ConsistencyClass::WeaklyConsistent) => 2,
        Some(ConsistencyClass::Inconsistent) => 3,
    }
}

fn class_from(code: u8) -> Result<Option<ConsistencyClass>, SnapshotError> {
    Ok(match code {
        0 => None,
        1 => Some(ConsistencyClass::Consistent),
        2 => Some(ConsistencyClass::WeaklyConsistent),
        3 => Some(ConsistencyClass::Inconsistent),
        other => {
            return Err(SnapshotError::Malformed(format!(
                "bad consistency class code {other}"
            )))
        }
    })
}

fn write_domain(artifact: &DomainArtifact) -> Vec<u8> {
    let mut w = ByteWriter::default();
    w.str(&artifact.name);
    w.u32(artifact.schemas.len() as u32);
    for schema in &artifact.schemas {
        write_tree(&mut w, schema);
    }
    write_mapping(&mut w, &artifact.mapping);
    write_tree(&mut w, &artifact.labeled);
    w.u32(artifact.leaf_cluster.len() as u32);
    for (&node, &cluster) in &artifact.leaf_cluster {
        w.u32(node.0);
        w.u32(cluster.0);
    }
    w.u8(class_code(artifact.class));
    w.u32(artifact.unlabeled_fields as u32);
    w.u32(artifact.labeled_internal as u32);
    for &rule in InferenceRule::ALL.iter() {
        w.u64(artifact.li_usage.count(rule) as u64);
    }
    w.u32(artifact.symbols.len() as u32);
    for symbol in &artifact.symbols {
        w.str(symbol);
    }
    w.u32(artifact.normalized.len() as u32);
    for (label, keys) in &artifact.normalized {
        w.u32(*label);
        w.u32(keys.len() as u32);
        for &key in keys {
            w.u32(key);
        }
    }
    w.buf
}

fn read_domain(payload: &[u8]) -> Result<DomainArtifact, SnapshotError> {
    let mut r = ByteReader::new(payload);
    let name = r.str()?;
    let schema_count = r.count(10)?;
    let mut schemas = Vec::with_capacity(schema_count);
    for _ in 0..schema_count {
        schemas.push(read_tree(&mut r)?);
    }
    let mapping = read_mapping(&mut r)?;
    let labeled = read_tree(&mut r)?;
    let pair_count = r.count(8)?;
    let mut leaf_cluster = BTreeMap::new();
    for _ in 0..pair_count {
        let node = NodeId(r.u32()?);
        let cluster = ClusterId(r.u32()?);
        if cluster.index() >= mapping.len() {
            return Err(SnapshotError::Malformed(format!(
                "leaf cluster {} out of range",
                cluster.0
            )));
        }
        leaf_cluster.insert(node, cluster);
    }
    let class = class_from(r.u8()?)?;
    let unlabeled_fields = r.u32()? as usize;
    let labeled_internal = r.u32()? as usize;
    let mut li_usage = LiUsage::default();
    for &rule in InferenceRule::ALL.iter() {
        let uses = r.u64()?;
        for _ in 0..uses {
            li_usage.record(rule);
        }
    }
    let symbol_count = r.count(4)?;
    let mut symbols = Vec::with_capacity(symbol_count);
    for _ in 0..symbol_count {
        symbols.push(r.str()?);
    }
    let normalized_count = r.count(8)?;
    let mut normalized = Vec::with_capacity(normalized_count);
    for _ in 0..normalized_count {
        let label = r.u32()?;
        let key_count = r.count(4)?;
        let mut keys = Vec::with_capacity(key_count);
        for _ in 0..key_count {
            keys.push(r.u32()?);
        }
        if (label as usize) >= symbols.len() || keys.iter().any(|&k| (k as usize) >= symbols.len())
        {
            return Err(SnapshotError::Malformed(
                "normalized entry references missing symbol".into(),
            ));
        }
        normalized.push((label, keys));
    }
    if r.remaining() != 0 {
        return Err(SnapshotError::Malformed(format!(
            "{} trailing bytes in domain section",
            r.remaining()
        )));
    }
    Ok(DomainArtifact {
        name,
        schemas,
        mapping,
        labeled,
        leaf_cluster,
        class,
        li_usage,
        unlabeled_fields,
        labeled_internal,
        symbols,
        normalized,
        decisions: Vec::new(),
        version: 0,
        delta: None,
    })
}

// ---------------------------------------------------------------------
// Decision-provenance codec (optional decisions/<slug> sections)
// ---------------------------------------------------------------------

fn write_decisions(decisions: &[qi_core::LabelDecision]) -> Vec<u8> {
    let mut w = ByteWriter::default();
    w.u32(decisions.len() as u32);
    for decision in decisions {
        w.u32(decision.node);
        w.str(&decision.path);
        w.str(&decision.rule);
        w.opt_str(decision.chosen.as_deref());
        w.u32(decision.candidates.len() as u32);
        for candidate in &decision.candidates {
            w.str(&candidate.label);
            w.u64(candidate.frequency);
            w.u8(candidate.accepted as u8);
            w.str(&candidate.note);
        }
    }
    w.buf
}

fn read_decisions(payload: &[u8]) -> Result<Vec<qi_core::LabelDecision>, SnapshotError> {
    let mut r = ByteReader::new(payload);
    let count = r.count(17)?;
    let mut decisions = Vec::with_capacity(count);
    for _ in 0..count {
        let node = r.u32()?;
        let path = r.str()?;
        let rule = r.str()?;
        let chosen = r.opt_str()?;
        let candidate_count = r.count(17)?;
        let mut candidates = Vec::with_capacity(candidate_count);
        for _ in 0..candidate_count {
            let label = r.str()?;
            let frequency = r.u64()?;
            let accepted = match r.u8()? {
                0 => false,
                1 => true,
                tag => return Err(SnapshotError::Malformed(format!("bad accepted flag {tag}"))),
            };
            let note = r.str()?;
            candidates.push(qi_core::DecisionCandidate {
                label,
                frequency,
                accepted,
                note,
            });
        }
        decisions.push(qi_core::LabelDecision {
            node,
            path,
            rule,
            chosen,
            candidates,
        });
    }
    if r.remaining() != 0 {
        return Err(SnapshotError::Malformed(format!(
            "{} trailing bytes in decisions section",
            r.remaining()
        )));
    }
    Ok(decisions)
}

// ---------------------------------------------------------------------
// Policy codec (meta section)
// ---------------------------------------------------------------------

fn write_policy(w: &mut ByteWriter, policy: NamingPolicy) {
    w.u8(match policy.max_level {
        ConsistencyLevel::String => 0,
        ConsistencyLevel::Equality => 1,
        ConsistencyLevel::Synonymy => 2,
    });
    w.u8(match policy.selection {
        LabelSelection::MostDescriptive => 0,
        LabelSelection::MostGeneral => 1,
    });
    w.u8(policy.use_instances as u8);
    w.u8(policy.repair_conflicts as u8);
}

fn read_policy(r: &mut ByteReader) -> Result<NamingPolicy, SnapshotError> {
    let max_level = match r.u8()? {
        0 => ConsistencyLevel::String,
        1 => ConsistencyLevel::Equality,
        2 => ConsistencyLevel::Synonymy,
        other => {
            return Err(SnapshotError::Malformed(format!(
                "bad consistency level code {other}"
            )))
        }
    };
    let selection = match r.u8()? {
        0 => LabelSelection::MostDescriptive,
        1 => LabelSelection::MostGeneral,
        other => {
            return Err(SnapshotError::Malformed(format!(
                "bad label selection code {other}"
            )))
        }
    };
    let use_instances = r.u8()? != 0;
    let repair_conflicts = r.u8()? != 0;
    Ok(NamingPolicy {
        max_level,
        selection,
        use_instances,
        repair_conflicts,
    })
}

// ---------------------------------------------------------------------
// File-level encode / decode
// ---------------------------------------------------------------------

impl Snapshot {
    /// Serialize to the on-disk byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut meta = ByteWriter::default();
        write_policy(&mut meta, self.policy);
        meta.u32(self.domains.len() as u32);

        let mut sections: Vec<(String, Vec<u8>)> = vec![("meta".to_string(), meta.buf)];
        for artifact in &self.domains {
            sections.push((
                format!("domain/{}", artifact.slug()),
                write_domain(artifact),
            ));
            if !artifact.decisions.is_empty() {
                sections.push((
                    format!("decisions/{}", artifact.slug()),
                    write_decisions(&artifact.decisions),
                ));
            }
        }
        encode_sections(&sections)
    }

    /// Decode the on-disk byte format.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = ByteReader::new(bytes);
        if r.take(MAGIC.len()).map_err(|_| SnapshotError::BadMagic)? != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.u32()?;
        if version > FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let section_count = r.count(25)?;
        let mut table = Vec::with_capacity(section_count);
        for _ in 0..section_count {
            let name = r.str()?;
            let offset = r.u64()? as usize;
            let len = r.u64()? as usize;
            let checksum = r.u64()?;
            table.push((name, offset, len, checksum));
        }
        let payloads = &bytes[r.pos..];
        let mut meta: Option<&[u8]> = None;
        let mut domains: Vec<(&str, &[u8])> = Vec::new();
        let mut decisions: Vec<(&str, &[u8])> = Vec::new();
        for (name, offset, len, checksum) in &table {
            let end = offset.checked_add(*len).ok_or(SnapshotError::Truncated)?;
            if end > payloads.len() {
                return Err(SnapshotError::Truncated);
            }
            let payload = &payloads[*offset..end];
            if fnv1a(payload) != *checksum {
                return Err(SnapshotError::ChecksumMismatch {
                    section: name.clone(),
                });
            }
            if name == "meta" {
                meta = Some(payload);
            } else if name.starts_with("domain/") {
                domains.push((name, payload));
            } else if let Some(slug) = name.strip_prefix("decisions/") {
                decisions.push((slug, payload));
            }
            // Any other section name is a later, optional addition to
            // the format: checksum-verified above, then skipped.
        }
        let meta = meta.ok_or_else(|| SnapshotError::Malformed("missing meta section".into()))?;
        let mut mr = ByteReader::new(meta);
        let policy = read_policy(&mut mr)?;
        let declared = mr.u32()? as usize;
        if declared != domains.len() {
            return Err(SnapshotError::Malformed(format!(
                "meta declares {declared} domains, table has {}",
                domains.len()
            )));
        }
        let mut artifacts = Vec::with_capacity(domains.len());
        for (name, payload) in domains {
            let mut artifact = read_domain(payload)?;
            let expected = format!("domain/{}", artifact.slug());
            if name != expected {
                return Err(SnapshotError::Malformed(format!(
                    "section {name:?} holds domain {:?}",
                    artifact.name
                )));
            }
            let slug = artifact.slug();
            if let Some((_, payload)) = decisions.iter().find(|(s, _)| *s == slug) {
                artifact.decisions = read_decisions(payload)?;
            }
            artifacts.push(artifact);
        }
        Ok(Snapshot {
            policy,
            domains: artifacts,
        })
    }
}

/// Encode a section list into the file layout: magic, version, section
/// table, concatenated payloads.
fn encode_sections(sections: &[(String, Vec<u8>)]) -> Vec<u8> {
    let mut header = ByteWriter::default();
    header.buf.extend_from_slice(&MAGIC);
    header.u32(FORMAT_VERSION);
    header.u32(sections.len() as u32);
    let mut offset = 0u64;
    for (name, payload) in sections {
        header.str(name);
        header.u64(offset);
        header.u64(payload.len() as u64);
        header.u64(fnv1a(payload));
        offset += payload.len() as u64;
    }
    let mut bytes = header.buf;
    for (_, payload) in sections {
        bytes.extend_from_slice(payload);
    }
    bytes
}

/// Write a snapshot file.
pub fn write_snapshot(path: &Path, snapshot: &Snapshot) -> Result<(), SnapshotError> {
    std::fs::write(path, snapshot.to_bytes())?;
    Ok(())
}

/// Load a snapshot file.
pub fn load_snapshot(path: &Path) -> Result<Snapshot, SnapshotError> {
    let bytes = std::fs::read(path)?;
    Snapshot::from_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::build_artifact;
    use qi_lexicon::Lexicon;
    use qi_runtime::Telemetry;

    fn sample() -> Snapshot {
        let lexicon = Lexicon::builtin();
        let telemetry = Telemetry::off();
        let domain = qi_datasets::auto::domain();
        let artifact = build_artifact(&domain, &lexicon, NamingPolicy::default(), &telemetry);
        Snapshot {
            policy: NamingPolicy::default(),
            domains: vec![artifact],
        }
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let snapshot = sample();
        let bytes = snapshot.to_bytes();
        let loaded = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(loaded.domains.len(), 1);
        let again = loaded.to_bytes();
        assert_eq!(bytes, again, "re-encoding a loaded snapshot must be stable");
    }

    #[test]
    fn round_trip_preserves_artifact_content() {
        let snapshot = sample();
        let loaded = Snapshot::from_bytes(&snapshot.to_bytes()).unwrap();
        let (a, b) = (&snapshot.domains[0], &loaded.domains[0]);
        assert_eq!(a.name, b.name);
        assert_eq!(a.schemas, b.schemas);
        assert_eq!(a.labeled, b.labeled);
        assert_eq!(a.leaf_cluster, b.leaf_cluster);
        assert_eq!(a.class, b.class);
        assert_eq!(a.li_usage, b.li_usage);
        assert_eq!(a.unlabeled_fields, b.unlabeled_fields);
        assert_eq!(a.labeled_internal, b.labeled_internal);
        assert_eq!(a.symbols, b.symbols);
        assert_eq!(a.normalized, b.normalized);
        assert_eq!(a.mapping.len(), b.mapping.len());
        for i in 0..a.mapping.len() {
            let id = ClusterId(i as u32);
            assert_eq!(a.mapping.cluster(id).concept, b.mapping.cluster(id).concept);
            assert_eq!(a.mapping.cluster(id).members, b.mapping.cluster(id).members);
        }
        assert_eq!(snapshot.policy, loaded.policy);
    }

    #[test]
    fn decisions_round_trip_exactly() {
        let snapshot = sample();
        assert!(!snapshot.domains[0].decisions.is_empty());
        let loaded = Snapshot::from_bytes(&snapshot.to_bytes()).unwrap();
        assert_eq!(snapshot.domains[0].decisions, loaded.domains[0].decisions);
    }

    #[test]
    fn pre_provenance_snapshots_still_load() {
        // A snapshot whose artifacts carry no decisions encodes without
        // any decisions/ section — the exact pre-provenance file format.
        let mut snapshot = sample();
        snapshot.domains[0].decisions.clear();
        let bytes = snapshot.to_bytes();
        let names = section_names(&bytes);
        assert_eq!(names, vec!["meta", "domain/auto"]);
        let loaded = Snapshot::from_bytes(&bytes).unwrap();
        assert!(loaded.domains[0].decisions.is_empty());
        assert_eq!(loaded.domains[0].name, "Auto");
    }

    #[test]
    fn unknown_section_with_valid_checksum_is_skipped() {
        let snapshot = sample();
        let mut sections = vec![("meta".to_string(), {
            let mut meta = ByteWriter::default();
            write_policy(&mut meta, snapshot.policy);
            meta.u32(1);
            meta.buf
        })];
        sections.push((
            "domain/auto".to_string(),
            write_domain(&snapshot.domains[0]),
        ));
        sections.push(("future/extra".to_string(), b"opaque payload".to_vec()));
        let bytes = encode_sections(&sections);
        let loaded = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(loaded.domains.len(), 1);
        assert_eq!(loaded.domains[0].name, "Auto");
    }

    #[test]
    fn unknown_section_with_bad_checksum_is_rejected() {
        let snapshot = sample();
        let sections = vec![
            ("meta".to_string(), {
                let mut meta = ByteWriter::default();
                write_policy(&mut meta, snapshot.policy);
                meta.u32(1);
                meta.buf
            }),
            (
                "domain/auto".to_string(),
                write_domain(&snapshot.domains[0]),
            ),
            ("future/extra".to_string(), b"opaque payload".to_vec()),
        ];
        let mut bytes = encode_sections(&sections);
        // Flip a byte in the trailing (unknown) payload.
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        match Snapshot::from_bytes(&bytes) {
            Err(SnapshotError::ChecksumMismatch { section }) => {
                assert_eq!(section, "future/extra");
            }
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    /// Section names from a snapshot file's table, in order.
    fn section_names(bytes: &[u8]) -> Vec<String> {
        let mut r = ByteReader::new(bytes);
        r.take(MAGIC.len()).unwrap();
        r.u32().unwrap();
        let count = r.u32().unwrap();
        (0..count)
            .map(|_| {
                let name = r.str().unwrap();
                r.u64().unwrap();
                r.u64().unwrap();
                r.u64().unwrap();
                name
            })
            .collect()
    }

    #[test]
    fn corrupted_payload_is_rejected() {
        let mut bytes = sample().to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        match Snapshot::from_bytes(&bytes) {
            Err(SnapshotError::ChecksumMismatch { section }) => {
                assert!(
                    section.starts_with("domain/") || section.starts_with("decisions/"),
                    "section {section:?}"
                );
            }
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn future_version_is_refused() {
        let mut bytes = sample().to_bytes();
        bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        match Snapshot::from_bytes(&bytes) {
            Err(SnapshotError::UnsupportedVersion { found, supported }) => {
                assert_eq!(found, FORMAT_VERSION + 1);
                assert_eq!(supported, FORMAT_VERSION);
            }
            other => panic!("expected version refusal, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_is_refused() {
        assert!(matches!(
            Snapshot::from_bytes(b"notasnap"),
            Err(SnapshotError::BadMagic)
        ));
        assert!(matches!(
            Snapshot::from_bytes(b"qi"),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn truncated_file_is_refused() {
        let bytes = sample().to_bytes();
        let cut = &bytes[..bytes.len() / 2];
        assert!(matches!(
            Snapshot::from_bytes(cut),
            Err(SnapshotError::Truncated) | Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }
}
