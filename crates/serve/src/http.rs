//! Minimal HTTP/1.1 request/response codec.
//!
//! Covers exactly what the server needs: one request per connection
//! (`Connection: close`), `Content-Length` bodies, and hard limits on
//! header-block and body size so a hostile peer cannot make a worker
//! allocate without bound. The codec is generic over `Read`/`Write`,
//! which keeps it unit-testable without sockets.

use std::io::{Read, Write};
use std::sync::Arc;

/// Cap on the request line + headers, in bytes.
pub const MAX_HEAD: usize = 8 * 1024;

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method, e.g. `GET`.
    pub method: String,
    /// Request path with any query string stripped.
    pub path: String,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Request body (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum RequestError {
    /// The peer closed the connection before sending a full request
    /// head. Not an error worth answering.
    Closed,
    /// Request line or headers exceed [`MAX_HEAD`] → `431`.
    HeadTooLarge,
    /// Declared body exceeds the configured cap → `413`.
    BodyTooLarge,
    /// Anything else unparseable → `400`.
    Malformed(String),
    /// Socket error (including read timeout); the connection is dropped.
    Io(std::io::Error),
}

/// Read and parse one request. `max_body` caps the declared
/// `Content-Length`.
pub fn read_request<R: Read>(reader: &mut R, max_body: usize) -> Result<Request, RequestError> {
    // Accumulate until the blank line ending the head, never past the cap.
    let mut head = Vec::new();
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&head) {
            break pos;
        }
        if head.len() >= MAX_HEAD {
            return Err(RequestError::HeadTooLarge);
        }
        let n = reader.read(&mut chunk).map_err(RequestError::Io)?;
        if n == 0 {
            if head.is_empty() {
                return Err(RequestError::Closed);
            }
            return Err(RequestError::Malformed("connection closed mid-head".into()));
        }
        head.extend_from_slice(&chunk[..n]);
    };

    let head_text = std::str::from_utf8(&head[..head_end])
        .map_err(|_| RequestError::Malformed("head is not UTF-8".into()))?;
    let mut lines = head_text.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| RequestError::Malformed("empty request line".into()))?;
    let target = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("request line lacks a path".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("request line lacks a version".into()))?;
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return Err(RequestError::Malformed(format!(
            "bad request line {request_line:?}"
        )));
    }
    let path = target.split('?').next().unwrap_or("").to_string();
    if !path.starts_with('/') {
        return Err(RequestError::Malformed(format!("bad path {target:?}")));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| RequestError::Malformed(format!("bad header line {line:?}")))?;
        headers.push((name.trim().to_lowercase(), value.trim().to_string()));
    }

    let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| RequestError::Malformed(format!("bad content-length {v:?}")))?,
        None => 0,
    };
    if content_length > max_body {
        return Err(RequestError::BodyTooLarge);
    }

    // Body bytes already read past the head, then the rest from the wire.
    let mut body = head[head_end + 4..].to_vec();
    if body.len() > content_length {
        return Err(RequestError::Malformed("body longer than declared".into()));
    }
    while body.len() < content_length {
        let want = (content_length - body.len()).min(chunk.len());
        let n = reader.read(&mut chunk[..want]).map_err(RequestError::Io)?;
        if n == 0 {
            return Err(RequestError::Malformed("connection closed mid-body".into()));
        }
        body.extend_from_slice(&chunk[..n]);
    }

    Ok(Request {
        method: method.to_string(),
        path,
        headers,
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// A response ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code, e.g. `200`.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra response headers (lowercase names), written after the
    /// standard block.
    pub extra_headers: Vec<(&'static str, String)>,
    /// Response body. Shared so the rendered-response cache can hand
    /// the same immutable bytes to many concurrent requests without
    /// copying them per response.
    pub body: Arc<Vec<u8>>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Response::with_type(status, "application/json", body)
    }

    /// A response with an explicit `Content-Type` (e.g. the Prometheus
    /// text exposition's `text/plain; version=0.0.4`).
    pub fn with_type(status: u16, content_type: &'static str, body: String) -> Self {
        Response::bytes(status, content_type, Arc::new(body.into_bytes()))
    }

    /// A response over an already-rendered (possibly shared) body.
    pub fn bytes(status: u16, content_type: &'static str, body: Arc<Vec<u8>>) -> Self {
        Response {
            status,
            content_type,
            extra_headers: Vec::new(),
            body,
        }
    }

    /// A JSON error response with a `{"error": ...}` body.
    pub fn error(status: u16, message: &str) -> Self {
        let body = qi_runtime::json::Obj::new().str("error", message).finish();
        Response::json(status, body)
    }

    /// Append an extra header (builder style).
    pub fn header(mut self, name: &'static str, value: String) -> Self {
        self.extra_headers.push((name, value));
        self
    }

    /// Serialize as an HTTP/1.1 response with `Connection: close`.
    ///
    /// The head is assembled in one buffer so the whole response costs
    /// two writes (head, body) instead of one syscall per header line —
    /// the writer here is an unbuffered [`std::net::TcpStream`].
    pub fn write_to<W: Write>(&self, writer: &mut W) -> std::io::Result<()> {
        let mut head = String::with_capacity(128);
        use std::fmt::Write as _;
        let _ = write!(
            head,
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.extra_headers {
            let _ = write!(head, "{name}: {value}\r\n");
        }
        head.push_str("connection: close\r\n\r\n");
        writer.write_all(head.as_bytes())?;
        writer.write_all(&self.body)?;
        writer.flush()
    }
}

/// Canonical reason phrase of the status codes the server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        304 => "Not Modified",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> Result<Request, RequestError> {
        read_request(&mut Cursor::new(raw.as_bytes().to_vec()), 1024)
    }

    #[test]
    fn parses_a_get_with_headers_and_query() {
        let req =
            parse("GET /domains/auto/labels?x=1 HTTP/1.1\r\nHost: h\r\nX-A: b\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/domains/auto/labels");
        assert_eq!(req.header("host"), Some("h"));
        assert_eq!(req.header("x-a"), Some("b"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn reads_a_content_length_body() {
        let req = parse("POST /d HTTP/1.1\r\ncontent-length: 5\r\n\r\nhello").unwrap();
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn rejects_oversized_bodies_and_heads() {
        assert!(matches!(
            parse("POST /d HTTP/1.1\r\ncontent-length: 9999\r\n\r\n"),
            Err(RequestError::BodyTooLarge)
        ));
        let huge = format!("GET / HTTP/1.1\r\nx: {}\r\n\r\n", "a".repeat(MAX_HEAD));
        assert!(matches!(parse(&huge), Err(RequestError::HeadTooLarge)));
    }

    #[test]
    fn rejects_malformed_request_lines() {
        for raw in [
            "GET\r\n\r\n",
            "GET /\r\n\r\n",
            "GET / SPDY/3\r\n\r\n",
            "GET / HTTP/1.1 extra\r\n\r\n",
            "GET nopath HTTP/1.1\r\n\r\n",
            "GET / HTTP/1.1\r\nbadheader\r\n\r\n",
            "POST / HTTP/1.1\r\ncontent-length: two\r\n\r\n",
        ] {
            assert!(
                matches!(parse(raw), Err(RequestError::Malformed(_))),
                "{raw:?} should be malformed"
            );
        }
        assert!(matches!(parse(""), Err(RequestError::Closed)));
    }

    #[test]
    fn serializes_responses_with_length_and_close() {
        let mut out = Vec::new();
        Response::json(200, "{\"ok\":true}".into())
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));
        let err = Response::error(404, "no such domain");
        assert_eq!(err.status, 404);
        assert_eq!(*err.body, b"{\"error\":\"no such domain\"}");
    }

    #[test]
    fn extra_headers_and_content_types_serialize() {
        let mut out = Vec::new();
        Response::with_type(200, "text/plain; version=0.0.4", "x 1\n".into())
            .header("x-qi-request-id", "17".to_string())
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.contains("content-type: text/plain; version=0.0.4\r\n"),
            "{text}"
        );
        assert!(text.contains("x-qi-request-id: 17\r\n"), "{text}");
        // Extra headers stay inside the head, before the blank line.
        let head = text.split("\r\n\r\n").next().unwrap();
        assert!(head.contains("x-qi-request-id"), "{head}");
        assert!(text.ends_with("x 1\n"));
    }
}
