//! HTTP/1.1 request/response codec with incremental parsing.
//!
//! The parser is *incremental*: [`RequestBuf`] accumulates whatever
//! bytes the socket produced — a quarter of a header line, three
//! pipelined requests in one segment — and [`RequestBuf::next_request`]
//! yields complete requests as they materialize, leaving any trailing
//! bytes in place for the next call. That is exactly the shape a
//! readiness event loop needs: reads never block waiting for a request
//! boundary, and request boundaries never force a read.
//!
//! Hard limits keep a hostile peer from making the server allocate
//! without bound: the request line + headers are capped at
//! [`MAX_HEAD`], declared bodies at the caller's `max_body`.
//!
//! Header *names* are lowercased at parse time and matched
//! case-insensitively everywhere ([RFC 7230 §3.2]); header *values*
//! that carry case-insensitive tokens (`Connection`, `Accept` media
//! types) are compared through [`Request::header_has_token`] /
//! ASCII-case-folding helpers rather than raw string equality.
//!
//! [RFC 7230 §3.2]: https://datatracker.ietf.org/doc/html/rfc7230#section-3.2

use std::io::{Read, Write};
use std::sync::Arc;

/// Cap on the request line + headers, in bytes.
pub const MAX_HEAD: usize = 8 * 1024;

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method, e.g. `GET`.
    pub method: String,
    /// Request path with any query string stripped.
    pub path: String,
    /// Raw query string (after `?`, percent-encoded), empty if absent.
    pub query: String,
    /// Minor HTTP version: `1` for `HTTP/1.1`, `0` for `HTTP/1.0`.
    /// Decides the keep-alive default (1.1 persists, 1.0 closes).
    pub version_minor: u8,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Request body (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header; the name comparison is ASCII
    /// case-insensitive (parsed names are already lowercase, but
    /// callers may pass any casing).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether a comma-separated header value contains `token`,
    /// compared ASCII case-insensitively — `Connection: Keep-Alive`
    /// and `connection: keep-alive` are the same wire token.
    pub fn header_has_token(&self, name: &str, token: &str) -> bool {
        self.header(name)
            .is_some_and(|v| v.split(',').any(|t| t.trim().eq_ignore_ascii_case(token)))
    }

    /// First value of a query-string parameter, percent-decoded (`+`
    /// also decodes to space). `?q=a%20b&limit=5` yields
    /// `query_param("q") == Some("a b")`. Returns `None` when the
    /// parameter is absent; an empty value decodes to `Some("")`.
    pub fn query_param(&self, name: &str) -> Option<String> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (percent_decode(k).as_deref() == Some(name)).then(|| {
                // An undecodable value is kept verbatim: the route
                // handler's own validation will reject it with context.
                percent_decode(v).unwrap_or_else(|| v.to_string())
            })
        })
    }

    /// HTTP/1.1 persistence semantics: keep-alive unless the request
    /// says `Connection: close`, except HTTP/1.0 which closes unless it
    /// says `Connection: keep-alive`.
    pub fn keep_alive(&self) -> bool {
        if self.header_has_token("connection", "close") {
            return false;
        }
        if self.version_minor == 0 {
            return self.header_has_token("connection", "keep-alive");
        }
        true
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum RequestError {
    /// The peer closed the connection before sending a full request
    /// head. Not an error worth answering.
    Closed,
    /// Request line or headers exceed [`MAX_HEAD`] → `431`.
    HeadTooLarge,
    /// Declared body exceeds the configured cap → `413`.
    BodyTooLarge,
    /// Anything else unparseable → `400`.
    Malformed(String),
    /// Socket error (including read timeout); the connection is dropped.
    Io(std::io::Error),
}

/// Per-connection input buffer feeding the incremental parser.
///
/// [`RequestBuf::extend`] appends raw socket bytes;
/// [`RequestBuf::next_request`] consumes exactly one complete request
/// from the front when one is available. Pipelined requests therefore
/// come out one `next_request` call at a time, and a request torn
/// across reads (mid-header-line, mid-body-byte) simply stays buffered
/// until the rest arrives.
#[derive(Debug, Default)]
pub struct RequestBuf {
    buf: Vec<u8>,
}

impl RequestBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        RequestBuf::default()
    }

    /// Append bytes read from the socket.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Number of buffered, not-yet-consumed bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no bytes are buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Parse one complete request off the front of the buffer.
    ///
    /// * `Ok(Some(request))` — a full head + body was present; those
    ///   bytes are consumed, trailing (pipelined) bytes remain.
    /// * `Ok(None)` — the buffered bytes are a valid *prefix* of a
    ///   request; call again after the next read.
    /// * `Err(_)` — the buffer can never become a valid request
    ///   (oversized head/body, malformed syntax). The connection should
    ///   answer the mapped status and close.
    pub fn next_request(&mut self, max_body: usize) -> Result<Option<Request>, RequestError> {
        let Some(head_end) = find_head_end(&self.buf) else {
            if self.buf.len() >= MAX_HEAD {
                return Err(RequestError::HeadTooLarge);
            }
            return Ok(None);
        };
        if head_end > MAX_HEAD {
            return Err(RequestError::HeadTooLarge);
        }
        let (method, path, query, version_minor, headers) = parse_head(&self.buf[..head_end])?;
        let content_length = match headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case("content-length"))
        {
            Some((_, v)) => v
                .parse::<usize>()
                .map_err(|_| RequestError::Malformed(format!("bad content-length {v:?}")))?,
            None => 0,
        };
        if content_length > max_body {
            return Err(RequestError::BodyTooLarge);
        }
        let body_start = head_end + 4;
        let total = body_start + content_length;
        if self.buf.len() < total {
            return Ok(None);
        }
        let body = self.buf[body_start..total].to_vec();
        self.buf.drain(..total);
        Ok(Some(Request {
            method,
            path,
            query,
            version_minor,
            headers,
            body,
        }))
    }
}

/// Parse the request line + header block (everything before the blank
/// line, exclusive).
#[allow(clippy::type_complexity)]
fn parse_head(
    head: &[u8],
) -> Result<(String, String, String, u8, Vec<(String, String)>), RequestError> {
    let head_text = std::str::from_utf8(head)
        .map_err(|_| RequestError::Malformed("head is not UTF-8".into()))?;
    let mut lines = head_text.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| RequestError::Malformed("empty request line".into()))?;
    let target = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("request line lacks a path".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("request line lacks a version".into()))?;
    if parts.next().is_some() {
        return Err(RequestError::Malformed(format!(
            "bad request line {request_line:?}"
        )));
    }
    let version_minor = version
        .strip_prefix("HTTP/1.")
        .and_then(|minor| minor.parse::<u8>().ok())
        .ok_or_else(|| RequestError::Malformed(format!("bad request line {request_line:?}")))?;
    let (path, query) = match target.split_once('?') {
        Some((path, query)) => (path.to_string(), query.to_string()),
        None => (target.to_string(), String::new()),
    };
    if !path.starts_with('/') {
        return Err(RequestError::Malformed(format!("bad path {target:?}")));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| RequestError::Malformed(format!("bad header line {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok((method.to_string(), path, query, version_minor, headers))
}

/// Percent-decode one query-string component; `+` decodes to space.
/// Returns `None` on truncated or non-hex escapes or non-UTF-8 results.
fn percent_decode(text: &str) -> Option<String> {
    let raw = text.as_bytes();
    let mut out = Vec::with_capacity(raw.len());
    let mut i = 0;
    while i < raw.len() {
        match raw[i] {
            b'%' => {
                let hi = hex_digit(*raw.get(i + 1)?)?;
                let lo = hex_digit(*raw.get(i + 2)?)?;
                out.push(hi << 4 | lo);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            other => {
                out.push(other);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

fn hex_digit(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Read and parse one request from a blocking reader (the simple
/// clients: `qi fetch`, tests). `max_body` caps the declared
/// `Content-Length`. Built on the same incremental parser the server
/// reactor uses.
pub fn read_request<R: Read>(reader: &mut R, max_body: usize) -> Result<Request, RequestError> {
    let mut buf = RequestBuf::new();
    let mut chunk = [0u8; 1024];
    loop {
        if let Some(request) = buf.next_request(max_body)? {
            return Ok(request);
        }
        let n = reader.read(&mut chunk).map_err(RequestError::Io)?;
        if n == 0 {
            if buf.is_empty() {
                return Err(RequestError::Closed);
            }
            return Err(RequestError::Malformed(
                "connection closed mid-request".into(),
            ));
        }
        buf.extend(&chunk[..n]);
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// A response ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code, e.g. `200`.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra response headers (lowercase names), written after the
    /// standard block.
    pub extra_headers: Vec<(&'static str, String)>,
    /// Response body. Shared so the rendered-response cache can hand
    /// the same immutable bytes to many concurrent requests without
    /// copying them per response.
    pub body: Arc<Vec<u8>>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Response::with_type(status, "application/json", body)
    }

    /// A response with an explicit `Content-Type` (e.g. the Prometheus
    /// text exposition's `text/plain; version=0.0.4`).
    pub fn with_type(status: u16, content_type: &'static str, body: String) -> Self {
        Response::bytes(status, content_type, Arc::new(body.into_bytes()))
    }

    /// A response over an already-rendered (possibly shared) body.
    pub fn bytes(status: u16, content_type: &'static str, body: Arc<Vec<u8>>) -> Self {
        Response {
            status,
            content_type,
            extra_headers: Vec::new(),
            body,
        }
    }

    /// A JSON error response with a `{"error": ...}` body.
    pub fn error(status: u16, message: &str) -> Self {
        let body = qi_runtime::json::Obj::new().str("error", message).finish();
        Response::json(status, body)
    }

    /// Append an extra header (builder style).
    pub fn header(mut self, name: &'static str, value: String) -> Self {
        self.extra_headers.push((name, value));
        self
    }

    /// Serialize the full HTTP/1.1 wire form — status line, headers,
    /// blank line, body — into one buffer. `keep_alive` selects the
    /// `Connection` framing: `keep-alive` leaves the connection open
    /// for the next pipelined request, `close` announces the server
    /// will close after this response. One contiguous buffer means the
    /// reactor's writable path costs a single `write(2)` however many
    /// responses are coalesced behind it.
    pub fn serialize(&self, keep_alive: bool) -> Vec<u8> {
        let mut out = Vec::with_capacity(160 + self.body.len());
        use std::fmt::Write as _;
        let mut head = String::with_capacity(160);
        let _ = write!(
            head,
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.extra_headers {
            let _ = write!(head, "{name}: {value}\r\n");
        }
        head.push_str(if keep_alive {
            "connection: keep-alive\r\n\r\n"
        } else {
            "connection: close\r\n\r\n"
        });
        out.extend_from_slice(head.as_bytes());
        out.extend_from_slice(&self.body);
        out
    }

    /// Serialize as an HTTP/1.1 response with `Connection: close` and
    /// write it out (the one-shot, non-reactor path).
    pub fn write_to<W: Write>(&self, writer: &mut W) -> std::io::Result<()> {
        writer.write_all(&self.serialize(false))?;
        writer.flush()
    }
}

/// Canonical reason phrase of the status codes the server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        304 => "Not Modified",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        410 => "Gone",
        413 => "Payload Too Large",
        422 => "Unprocessable Content",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> Result<Request, RequestError> {
        read_request(&mut Cursor::new(raw.as_bytes().to_vec()), 1024)
    }

    #[test]
    fn parses_a_get_with_headers_and_query() {
        let req =
            parse("GET /domains/auto/labels?x=1 HTTP/1.1\r\nHost: h\r\nX-A: b\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/domains/auto/labels");
        assert_eq!(req.query, "x=1");
        assert_eq!(req.query_param("x").as_deref(), Some("1"));
        assert_eq!(req.version_minor, 1);
        assert_eq!(req.header("host"), Some("h"));
        assert_eq!(req.header("x-a"), Some("b"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn query_params_percent_decode() {
        let req = parse("GET /query?q=find%20fields&limit=5&plus=a+b HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.query_param("q").as_deref(), Some("find fields"));
        assert_eq!(req.query_param("limit").as_deref(), Some("5"));
        assert_eq!(req.query_param("plus").as_deref(), Some("a b"));
        assert_eq!(req.query_param("absent"), None);
        // Bare key with no `=` decodes to the empty string.
        let req = parse("GET /query?flag HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.query_param("flag").as_deref(), Some(""));
        // Truncated escapes keep the raw text rather than failing.
        let req = parse("GET /query?q=%zz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.query_param("q").as_deref(), Some("%zz"));
    }

    #[test]
    fn reads_a_content_length_body() {
        let req = parse("POST /d HTTP/1.1\r\ncontent-length: 5\r\n\r\nhello").unwrap();
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn rejects_oversized_bodies_and_heads() {
        assert!(matches!(
            parse("POST /d HTTP/1.1\r\ncontent-length: 9999\r\n\r\n"),
            Err(RequestError::BodyTooLarge)
        ));
        let huge = format!("GET / HTTP/1.1\r\nx: {}\r\n\r\n", "a".repeat(MAX_HEAD));
        assert!(matches!(parse(&huge), Err(RequestError::HeadTooLarge)));
    }

    #[test]
    fn rejects_malformed_request_lines() {
        for raw in [
            "GET\r\n\r\n",
            "GET /\r\n\r\n",
            "GET / SPDY/3\r\n\r\n",
            "GET / HTTP/9.9\r\n\r\n",
            "GET / HTTP/1.1 extra\r\n\r\n",
            "GET nopath HTTP/1.1\r\n\r\n",
            "GET / HTTP/1.1\r\nbadheader\r\n\r\n",
            "POST / HTTP/1.1\r\ncontent-length: two\r\n\r\n",
        ] {
            assert!(
                matches!(parse(raw), Err(RequestError::Malformed(_))),
                "{raw:?} should be malformed"
            );
        }
        assert!(matches!(parse(""), Err(RequestError::Closed)));
    }

    #[test]
    fn header_lookup_is_case_insensitive_per_rfc7230() {
        // Mixed-case names on the wire, mixed-case names at the call
        // site: both must resolve. RFC 7230 §3.2: field names are
        // case-insensitive.
        let req = parse(
            "GET / HTTP/1.1\r\nCoNNecTion: Keep-Alive\r\nACCEPT: TEXT/plain\r\n\
             If-None-Match: \"abc\"\r\n\r\n",
        )
        .unwrap();
        assert_eq!(req.header("connection"), Some("Keep-Alive"));
        assert_eq!(req.header("Connection"), Some("Keep-Alive"));
        assert_eq!(req.header("IF-NONE-MATCH"), Some("\"abc\""));
        assert!(req.header_has_token("connection", "keep-alive"));
        assert!(req.header_has_token("Accept", "text/plain"));
        assert!(!req.header_has_token("connection", "close"));

        // Content-Length in arbitrary case still frames the body.
        let req = parse("POST /d HTTP/1.1\r\nCONTENT-LENGTH: 5\r\n\r\nhello").unwrap();
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn keep_alive_semantics_follow_version_and_connection() {
        let keep = parse("GET / HTTP/1.1\r\n\r\n").unwrap();
        assert!(keep.keep_alive(), "HTTP/1.1 defaults to keep-alive");
        let close = parse("GET / HTTP/1.1\r\nConnection: Close\r\n\r\n").unwrap();
        assert!(!close.keep_alive(), "Connection: Close wins, any case");
        let multi = parse("GET / HTTP/1.1\r\nconnection: x-stuff, CLOSE\r\n\r\n").unwrap();
        assert!(!multi.keep_alive(), "close as one of several tokens");
        let old = parse("GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!old.keep_alive(), "HTTP/1.0 defaults to close");
        let old_keep = parse("GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n").unwrap();
        assert!(old_keep.keep_alive(), "HTTP/1.0 opts in explicitly");
    }

    #[test]
    fn incremental_parse_survives_any_read_boundary() {
        let wire = b"POST /d HTTP/1.1\r\ncontent-length: 5\r\nx-a: b\r\n\r\nhello";
        // Feed the request one byte at a time: the parser must report
        // "incomplete" at every prefix and produce the request exactly
        // once, at the final byte.
        let mut buf = RequestBuf::new();
        for (i, byte) in wire.iter().enumerate() {
            buf.extend(&[*byte]);
            let parsed = buf.next_request(1024).unwrap();
            if i + 1 < wire.len() {
                assert!(parsed.is_none(), "byte {i}: request not complete yet");
            } else {
                let request = parsed.expect("final byte completes the request");
                assert_eq!(request.body, b"hello");
                assert_eq!(request.header("x-a"), Some("b"));
            }
        }
        assert!(buf.is_empty());
    }

    #[test]
    fn pipelined_requests_parse_in_order_from_one_segment() {
        let mut buf = RequestBuf::new();
        buf.extend(
            b"GET /a HTTP/1.1\r\nhost: h\r\n\r\nGET /b HTTP/1.1\r\nhost: h\r\n\r\n\
              POST /c HTTP/1.1\r\ncontent-length: 2\r\n\r\nxy",
        );
        let a = buf.next_request(1024).unwrap().expect("first request");
        assert_eq!(a.path, "/a");
        let b = buf.next_request(1024).unwrap().expect("second request");
        assert_eq!(b.path, "/b");
        let c = buf.next_request(1024).unwrap().expect("third request");
        assert_eq!((c.path.as_str(), c.body.as_slice()), ("/c", &b"xy"[..]));
        assert!(buf.next_request(1024).unwrap().is_none());
        assert!(buf.is_empty());
    }

    #[test]
    fn malformed_second_request_fails_only_after_the_first_parses() {
        let mut buf = RequestBuf::new();
        buf.extend(b"GET /ok HTTP/1.1\r\n\r\nGARBAGE\r\n\r\n");
        let ok = buf.next_request(1024).unwrap().expect("valid first");
        assert_eq!(ok.path, "/ok");
        assert!(matches!(
            buf.next_request(1024),
            Err(RequestError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_head_without_terminator_is_rejected_incrementally() {
        let mut buf = RequestBuf::new();
        buf.extend(format!("GET / HTTP/1.1\r\nx: {}", "a".repeat(MAX_HEAD)).as_bytes());
        assert!(matches!(
            buf.next_request(1024),
            Err(RequestError::HeadTooLarge)
        ));
    }

    #[test]
    fn serializes_responses_with_length_and_close() {
        let mut out = Vec::new();
        Response::json(200, "{\"ok\":true}".into())
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));
        let err = Response::error(404, "no such domain");
        assert_eq!(err.status, 404);
        assert_eq!(*err.body, b"{\"error\":\"no such domain\"}");
    }

    #[test]
    fn keep_alive_serialization_never_says_close() {
        let kept = Response::json(200, "{}".into()).serialize(true);
        let text = String::from_utf8(kept).unwrap();
        assert!(text.contains("connection: keep-alive\r\n"), "{text}");
        assert!(!text.contains("connection: close"), "{text}");
    }

    #[test]
    fn extra_headers_and_content_types_serialize() {
        let mut out = Vec::new();
        Response::with_type(200, "text/plain; version=0.0.4", "x 1\n".into())
            .header("x-qi-request-id", "17".to_string())
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.contains("content-type: text/plain; version=0.0.4\r\n"),
            "{text}"
        );
        assert!(text.contains("x-qi-request-id: 17\r\n"), "{text}");
        // Extra headers stay inside the head, before the blank line.
        let head = text.split("\r\n\r\n").next().unwrap();
        assert!(head.contains("x-qi-request-id"), "{head}");
        assert!(text.ends_with("x 1\n"));
    }
}
