//! The per-domain serving artifact: everything the pipeline computed for
//! one domain, in the form the server reads and the snapshot persists.

use qi_core::{ConsistencyClass, Labeler, LiUsage, NamingPolicy, RelabelCache, RelabelDelta};
use qi_datasets::Domain;
use qi_lexicon::Lexicon;
use qi_mapping::{ClusterId, DeltaOutcome, FallbackReason, Mapping, MatcherConfig};
use qi_merge::MergeState;
use qi_runtime::{Category, Interner, Severity, Telemetry};
use qi_schema::{NodeId, SchemaTree};
use qi_text::LabelText;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One domain's fully built serving state.
///
/// Holds the *raw* source interfaces and clusters (what a rebuild needs)
/// alongside the pipeline outputs (what a read query needs): the labeled
/// integrated tree, the leaf→cluster correspondence, the naming report
/// digest, and the lexical sidecar — every distinct source label's
/// normalized content-word keys plus the interned symbol table they are
/// stored against.
#[derive(Debug, Clone)]
pub struct DomainArtifact {
    /// Display name (Table 6 row).
    pub name: String,
    /// Raw source interfaces (pre 1:m expansion).
    pub schemas: Vec<SchemaTree>,
    /// Raw clusters (possibly 1:m, as ground truth or matcher output).
    pub mapping: Mapping,
    /// The labeled integrated interface.
    pub labeled: SchemaTree,
    /// Integrated leaf → cluster correspondence.
    pub leaf_cluster: BTreeMap<NodeId, ClusterId>,
    /// Definition 8 classification of the labeled tree.
    pub class: Option<ConsistencyClass>,
    /// Inference-rule usage for this domain (Figure 10 slice).
    pub li_usage: LiUsage,
    /// Fields left unlabeled (no source label anywhere).
    pub unlabeled_fields: usize,
    /// Internal nodes that received a label.
    pub labeled_internal: usize,
    /// Interned string table, in symbol order: every distinct source
    /// label followed by every normalized key, first-encounter order.
    pub symbols: Vec<String>,
    /// Distinct source label → its normalized content-word keys, as
    /// indices into [`DomainArtifact::symbols`]. Sorted by label symbol.
    pub normalized: Vec<(u32, Vec<u32>)>,
    /// Per-node labeling-decision provenance, sorted by node id. Empty
    /// for artifacts loaded from snapshots that predate the
    /// `decisions/` section.
    pub decisions: Vec<qi_core::LabelDecision>,
    /// Monotonic rebuild counter: bumped on every ingest swap, `0` for a
    /// freshly built or snapshot-loaded artifact. Response caches key on
    /// it; it is deliberately *not* persisted (a snapshot round-trip must
    /// be byte-identical regardless of ingest history).
    pub version: u64,
    /// Incremental-ingest carry state. `Some` exactly when
    /// [`DomainArtifact::mapping`] is label-matcher output under the
    /// default configuration — the precondition of the delta-clustering
    /// equivalence argument. `None` for ground-truth corpus builds and
    /// snapshot loads, whose first ingest therefore takes the full
    /// rebuild path (and captures carry state for the next one).
    pub delta: Option<Arc<DeltaState>>,
}

/// Everything an incremental ingest replays instead of recomputing: the
/// merge folds and the phase-1 labeling cache of the previous build.
#[derive(Debug, Clone)]
pub struct DeltaState {
    merge_state: MergeState,
    relabel_cache: RelabelCache,
    match_carry: qi_mapping::MatchCarry,
}

impl DomainArtifact {
    /// URL-safe identifier: lowercase, spaces → `_` (matches the corpus
    /// export directory naming).
    pub fn slug(&self) -> String {
        slug_of(&self.name)
    }

    /// Resolve a symbol index into its string.
    pub fn symbol(&self, index: u32) -> &str {
        &self.symbols[index as usize]
    }

    /// The normalized content-word keys of a source label, if the label
    /// occurs in this domain.
    pub fn normalized_keys(&self, label: &str) -> Option<Vec<&str>> {
        self.normalized
            .iter()
            .find(|(sym, _)| self.symbol(*sym) == label)
            .map(|(_, keys)| keys.iter().map(|&k| self.symbol(k)).collect())
    }

    /// Number of source interfaces.
    pub fn interfaces(&self) -> usize {
        self.schemas.len()
    }
}

/// The slug of a display name.
pub fn slug_of(name: &str) -> String {
    name.replace(' ', "_").to_lowercase()
}

/// Run the full pipeline on one domain and package the serving artifact.
pub fn build_artifact(
    domain: &Domain,
    lexicon: &Lexicon,
    policy: NamingPolicy,
    telemetry: &Telemetry,
) -> DomainArtifact {
    build_artifact_with(domain, lexicon, policy, telemetry, false)
}

/// [`build_artifact`], optionally capturing the incremental-ingest carry
/// state. Capture is only sound when `domain.mapping` is label-matcher
/// output under the default configuration — ground-truth corpus builds
/// must not capture.
fn build_artifact_with(
    domain: &Domain,
    lexicon: &Lexicon,
    policy: NamingPolicy,
    telemetry: &Telemetry,
    capture_delta: bool,
) -> DomainArtifact {
    let span = telemetry.timed("serve.build_artifact");
    let prepared = domain.prepare();
    let labeler = Labeler::new(lexicon, policy).with_telemetry(telemetry.clone());
    let (labeled, delta) = if capture_delta {
        let merge_state = MergeState::capture(&prepared.schemas, &prepared.mapping);
        let match_carry =
            qi_mapping::MatchCarry::build(&prepared.schemas, lexicon, MatcherConfig::default());
        let (labeled, relabel_cache) = labeler.label_with(
            &prepared.schemas,
            &prepared.mapping,
            &prepared.integrated,
            None,
        );
        (
            labeled,
            Some(Arc::new(DeltaState {
                merge_state,
                relabel_cache,
                match_carry,
            })),
        )
    } else {
        (
            labeler.label(&prepared.schemas, &prepared.mapping, &prepared.integrated),
            None,
        )
    };
    let decisions = qi_core::provenance::decisions(&labeled, &policy);
    let (symbols, normalized) = sidecar(&domain.schemas, lexicon, None);
    drop(span);

    DomainArtifact {
        name: domain.name.clone(),
        schemas: domain.schemas.clone(),
        mapping: domain.mapping.clone(),
        labeled: labeled.tree,
        leaf_cluster: labeled.leaf_cluster,
        class: labeled.report.class,
        li_usage: labeled.report.li_usage,
        unlabeled_fields: labeled.report.unlabeled_fields,
        labeled_internal: labeled.report.labeled_internal,
        symbols,
        normalized,
        decisions,
        version: 0,
        delta,
    }
}

/// Lexical sidecar: normalize every distinct source label once and
/// intern both the labels and their content-word keys so the snapshot
/// stores each distinct string exactly once. Interning is first-encounter
/// in schema order, so a schema's contribution depends only on the
/// schemas before it — `base` replays a previous run's table and resumes
/// at schema `from`, reproducing the batch result byte-for-byte.
/// A previous sidecar run to replay: its interned symbols, its
/// normalized entries, and the schema index to resume from.
type SidecarBase<'a> = (&'a [String], &'a [(u32, Vec<u32>)], usize);

fn sidecar(
    schemas: &[SchemaTree],
    lexicon: &Lexicon,
    base: Option<SidecarBase<'_>>,
) -> (Vec<String>, Vec<(u32, Vec<u32>)>) {
    let interner = Interner::new();
    let mut normalized: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    let from = match base {
        Some((symbols, entries, from)) => {
            for symbol in symbols {
                interner.intern(symbol);
            }
            normalized.extend(entries.iter().cloned());
            from
        }
        None => 0,
    };
    for schema in &schemas[from..] {
        for node in schema.nodes() {
            let Some(label) = &node.label else { continue };
            let sym = interner.intern(label);
            if normalized.contains_key(&sym.0) {
                continue;
            }
            let text = LabelText::new(label, lexicon);
            let keys: Vec<u32> = text
                .keys()
                .into_iter()
                .map(|k| interner.intern(k).0)
                .collect();
            normalized.insert(sym.0, keys);
        }
    }
    let symbols: Vec<String> = (0..interner.len() as u32)
        .map(|i| interner.resolve(qi_runtime::Symbol(i)).to_string())
        .collect();
    (symbols, normalized.into_iter().collect())
}

/// Build the artifacts of the whole builtin seven-domain corpus, in
/// Table 6 order.
pub fn build_corpus_artifacts(
    lexicon: &Lexicon,
    policy: NamingPolicy,
    telemetry: &Telemetry,
) -> Vec<DomainArtifact> {
    qi_datasets::all_domains()
        .iter()
        .map(|d| build_artifact(d, lexicon, policy, telemetry))
        .collect()
}

/// Add one interface to a domain and rebuild its artifact.
///
/// When the artifact carries [`DeltaState`] (its mapping is matcher
/// output), the delta path runs: the new interface's fields are scored
/// against old clusters only, the merge folds are extended rather than
/// recomputed, and the labeler replays every phase-1 result whose inputs
/// the append did not touch. The result is byte-identical (through the
/// snapshot encoding) to a full rebuild; any structural change the delta
/// tracker does not support — a bridge between old clusters, two new
/// fields landing in one cluster, an unexpected 1:m expansion — falls
/// back to the full path automatically. Either way the rebuild touches
/// *only* this domain — callers swap the result in behind the store's
/// lock while readers keep serving the old artifact.
pub fn ingest_interface(
    artifact: &DomainArtifact,
    interface: SchemaTree,
    lexicon: &Lexicon,
    policy: NamingPolicy,
    telemetry: &Telemetry,
) -> DomainArtifact {
    let span = telemetry.timed("serve.ingest");
    let delta_attempt = artifact.delta.as_deref().and_then(|state| {
        try_delta_ingest(artifact, state, &interface, lexicon, policy, telemetry)
    });
    let rebuilt = match delta_attempt {
        Some(rebuilt) => {
            telemetry.add("serve.ingest.delta", 1);
            rebuilt
        }
        None => {
            telemetry.add("serve.ingest.full", 1);
            ingest_interface_full(artifact, interface, lexicon, policy, telemetry)
        }
    };
    drop(span);
    rebuilt
}

/// The unconditional O(domain) rebuild: re-cluster everything with the
/// label-similarity matcher, re-merge and re-label. Public so the
/// equivalence tests and the ingest bench can force it; [`ingest_interface`]
/// uses it as the fallback. The rebuilt artifact captures fresh delta
/// carry state, so the *next* ingest takes the incremental path.
pub fn ingest_interface_full(
    artifact: &DomainArtifact,
    interface: SchemaTree,
    lexicon: &Lexicon,
    policy: NamingPolicy,
    telemetry: &Telemetry,
) -> DomainArtifact {
    let mut schemas = artifact.schemas.clone();
    schemas.push(interface);
    let mapping = qi_mapping::match_by_labels(&schemas, lexicon);
    let domain = Domain {
        name: artifact.name.clone(),
        schemas,
        mapping,
    };
    let mut rebuilt = build_artifact_with(&domain, lexicon, policy, telemetry, true);
    rebuilt.version = artifact.version + 1;
    rebuilt
}

/// The incremental ingest path. Returns `None` (with a reason counter
/// bumped) when a guard fires, leaving the caller to run the full
/// rebuild.
fn try_delta_ingest(
    artifact: &DomainArtifact,
    state: &DeltaState,
    interface: &SchemaTree,
    lexicon: &Lexicon,
    policy: NamingPolicy,
    telemetry: &Telemetry,
) -> Option<DomainArtifact> {
    let span = telemetry.timed("serve.ingest.delta_path");
    let mut schemas = artifact.schemas.clone();
    schemas.push(interface.clone());
    let config = MatcherConfig::default();
    let delta = match qi_mapping::delta_match_carried(
        &schemas,
        &artifact.mapping,
        lexicon,
        config,
        Some(&state.match_carry),
    ) {
        DeltaOutcome::Incremental(delta) => delta,
        DeltaOutcome::Fallback(reason) => {
            telemetry.add(fallback_counter(reason), 1);
            telemetry.event(
                Severity::Info,
                Category::Ingest,
                "ingest.delta_fallback",
                || {
                    vec![
                        ("domain", artifact.name.as_str().into()),
                        ("reason", fallback_counter(reason).into()),
                    ]
                },
            );
            return None;
        }
    };
    telemetry.add("serve.ingest.pairs_scored", delta.pairs_scored);
    // Matcher output is 1:1, so the 1:m expansion must be an identity;
    // anything else is a structural change the tracker does not model.
    let mut mapping = delta.mapping;
    let expansion = qi_mapping::expand_one_to_many(&mut schemas, &mut mapping);
    if !expansion.expanded.is_empty() {
        telemetry.add("serve.ingest.fallback.expansion", 1);
        telemetry.event(
            Severity::Info,
            Category::Ingest,
            "ingest.delta_fallback",
            || {
                vec![
                    ("domain", artifact.name.as_str().into()),
                    ("reason", "serve.ingest.fallback.expansion".into()),
                ]
            },
        );
        return None;
    }
    let mut merge_state = state.merge_state.clone();
    merge_state.extend(&schemas, &mapping);
    let integrated = merge_state.finish(&schemas, &mapping);
    // Clusters born with the appended interface: ids absent from the
    // pre-ingest mapping. The labeler uses these to recover a touched
    // group's previous cache key (its columns minus the new ones).
    let old_ids: std::collections::BTreeSet<qi_mapping::ClusterId> =
        artifact.mapping.clusters.iter().map(|c| c.id).collect();
    let new_clusters = mapping
        .clusters
        .iter()
        .map(|c| c.id)
        .filter(|id| !old_ids.contains(id))
        .collect();
    let reuse = RelabelDelta {
        dirty: delta.dirty,
        new_clusters,
        new_schema: schemas.len() - 1,
    };
    let labeler = Labeler::new(lexicon, policy).with_telemetry(telemetry.clone());
    let (labeled, relabel_cache) = labeler.label_with(
        &schemas,
        &mapping,
        &integrated,
        Some((&state.relabel_cache, &reuse)),
    );
    let decisions = qi_core::provenance::decisions(&labeled, &policy);
    let (symbols, normalized) = sidecar(
        &schemas,
        lexicon,
        Some((
            &artifact.symbols,
            &artifact.normalized,
            artifact.schemas.len(),
        )),
    );
    drop(span);
    Some(DomainArtifact {
        name: artifact.name.clone(),
        schemas,
        mapping,
        labeled: labeled.tree,
        leaf_cluster: labeled.leaf_cluster,
        class: labeled.report.class,
        li_usage: labeled.report.li_usage,
        unlabeled_fields: labeled.report.unlabeled_fields,
        labeled_internal: labeled.report.labeled_internal,
        symbols,
        normalized,
        decisions,
        version: artifact.version + 1,
        delta: Some(Arc::new(DeltaState {
            merge_state,
            relabel_cache,
            match_carry: delta.carry,
        })),
    })
}

/// Telemetry counter name of a delta-clustering fallback reason.
fn fallback_counter(reason: FallbackReason) -> &'static str {
    match reason {
        FallbackReason::BaseMismatch => "serve.ingest.fallback.base_mismatch",
        FallbackReason::Bridge => "serve.ingest.fallback.bridge",
        FallbackReason::SharedJoin => "serve.ingest.fallback.shared_join",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_carries_pipeline_outputs() {
        let lexicon = Lexicon::builtin();
        let telemetry = Telemetry::off();
        let domain = qi_datasets::auto::domain();
        let artifact = build_artifact(&domain, &lexicon, NamingPolicy::default(), &telemetry);
        assert_eq!(artifact.name, "Auto");
        assert_eq!(artifact.slug(), "auto");
        assert_eq!(artifact.interfaces(), domain.schemas.len());
        assert!(artifact.labeled.leaves().all(|l| l.label.is_some()));
        assert_eq!(
            artifact.leaf_cluster.len(),
            artifact.labeled.leaves().count()
        );
        assert!(artifact.class.is_some());
        // Every cluster referenced by a leaf resolves to a concept.
        for &cluster in artifact.leaf_cluster.values() {
            assert!(cluster.index() < artifact.mapping.len());
        }
        // The sidecar covers every distinct source label.
        for schema in &artifact.schemas {
            for node in schema.nodes() {
                if let Some(label) = &node.label {
                    assert!(
                        artifact.normalized_keys(label).is_some(),
                        "missing normalized entry for {label:?}"
                    );
                }
            }
        }
        // Symbol table indices are in range.
        for (sym, keys) in &artifact.normalized {
            assert!((*sym as usize) < artifact.symbols.len());
            for &k in keys {
                assert!((k as usize) < artifact.symbols.len());
            }
        }
        // Provenance: decisions are sorted by node, each names a rule,
        // and every decision's node exists in the labeled tree.
        assert!(!artifact.decisions.is_empty());
        let node_count = artifact.labeled.nodes().count() as u32;
        for pair in artifact.decisions.windows(2) {
            assert!(pair[0].node <= pair[1].node);
        }
        for decision in &artifact.decisions {
            assert!(!decision.rule.is_empty());
            assert!(decision.node < node_count, "{decision:?}");
        }
    }

    #[test]
    fn ingest_adds_an_interface_and_relabels() {
        let lexicon = Lexicon::builtin();
        let telemetry = Telemetry::off();
        let domain = qi_datasets::auto::domain();
        let artifact = build_artifact(&domain, &lexicon, NamingPolicy::default(), &telemetry);
        let extra =
            qi_schema::text_format::parse("interface extra\n- Make\n- Model\n- Price\n").unwrap();
        let rebuilt = ingest_interface(
            &artifact,
            extra,
            &lexicon,
            NamingPolicy::default(),
            &telemetry,
        );
        assert_eq!(rebuilt.interfaces(), artifact.interfaces() + 1);
        assert_eq!(rebuilt.name, artifact.name);
        assert!(rebuilt.labeled.leaves().count() > 0);
        // Matcher-based re-clustering may leave unlabeled singletons (the
        // ground truth no longer covers the grown domain), but the report
        // must agree with the tree about how many.
        assert_eq!(
            rebuilt.unlabeled_fields,
            rebuilt
                .labeled
                .leaves()
                .filter(|l| l.label.is_none())
                .count()
        );
        assert!(
            rebuilt
                .labeled
                .leaves()
                .filter(|l| l.label.is_some())
                .count()
                > 0
        );
    }

    #[test]
    fn slug_normalizes_names() {
        assert_eq!(slug_of("Real Estate"), "real_estate");
        assert_eq!(slug_of("Auto"), "auto");
    }

    /// The artifact a delta ingest produces is byte-identical (through
    /// the snapshot encoding) to the full-rebuild artifact, and the
    /// delta/full paths fire in the documented order: ground-truth base
    /// → full, matcher-derived base → delta.
    #[test]
    fn delta_ingest_matches_full_rebuild_bytes() {
        let lexicon = Lexicon::builtin();
        let telemetry = Telemetry::new();
        let policy = NamingPolicy::default();
        let base = build_artifact(&qi_datasets::auto::domain(), &lexicon, policy, &telemetry);
        assert!(base.delta.is_none(), "ground-truth build must not capture");

        // First ingest: no carry state → full rebuild, which captures.
        let extra1 = qi_schema::text_format::parse("interface e1\n- Make\n- Mileage\n").unwrap();
        let v1 = ingest_interface(&base, extra1, &lexicon, policy, &telemetry);
        assert!(v1.delta.is_some(), "full ingest must capture carry state");
        assert_eq!(v1.version, 1);
        let counter = |name: &str| {
            telemetry
                .snapshot()
                .counters
                .get(name)
                .copied()
                .unwrap_or(0)
        };
        assert_eq!(counter("serve.ingest.full"), 1);
        assert_eq!(counter("serve.ingest.delta"), 0);

        // Second ingest: carry state present → delta path, identical
        // bytes to forcing the full path from the same base.
        let extra2 =
            qi_schema::text_format::parse("interface e2\n- Model\n- Body Style\n").unwrap();
        let incremental = ingest_interface(&v1, extra2.clone(), &lexicon, policy, &telemetry);
        assert_eq!(counter("serve.ingest.delta"), 1);
        let full = ingest_interface_full(&v1, extra2, &lexicon, policy, &telemetry);
        assert_eq!(incremental.version, 2);
        let encode = |artifact: &DomainArtifact| {
            crate::snapshot::Snapshot {
                policy,
                domains: vec![artifact.clone()],
            }
            .to_bytes()
        };
        assert_eq!(
            encode(&incremental),
            encode(&full),
            "delta and full ingest artifacts diverge"
        );
    }
}
