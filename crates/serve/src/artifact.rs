//! The per-domain serving artifact: everything the pipeline computed for
//! one domain, in the form the server reads and the snapshot persists.

use qi_core::{ConsistencyClass, Labeler, LiUsage, NamingPolicy};
use qi_datasets::Domain;
use qi_lexicon::Lexicon;
use qi_mapping::{ClusterId, Mapping};
use qi_runtime::{Interner, Telemetry};
use qi_schema::{NodeId, SchemaTree};
use qi_text::LabelText;
use std::collections::BTreeMap;

/// One domain's fully built serving state.
///
/// Holds the *raw* source interfaces and clusters (what a rebuild needs)
/// alongside the pipeline outputs (what a read query needs): the labeled
/// integrated tree, the leaf→cluster correspondence, the naming report
/// digest, and the lexical sidecar — every distinct source label's
/// normalized content-word keys plus the interned symbol table they are
/// stored against.
#[derive(Debug, Clone)]
pub struct DomainArtifact {
    /// Display name (Table 6 row).
    pub name: String,
    /// Raw source interfaces (pre 1:m expansion).
    pub schemas: Vec<SchemaTree>,
    /// Raw clusters (possibly 1:m, as ground truth or matcher output).
    pub mapping: Mapping,
    /// The labeled integrated interface.
    pub labeled: SchemaTree,
    /// Integrated leaf → cluster correspondence.
    pub leaf_cluster: BTreeMap<NodeId, ClusterId>,
    /// Definition 8 classification of the labeled tree.
    pub class: Option<ConsistencyClass>,
    /// Inference-rule usage for this domain (Figure 10 slice).
    pub li_usage: LiUsage,
    /// Fields left unlabeled (no source label anywhere).
    pub unlabeled_fields: usize,
    /// Internal nodes that received a label.
    pub labeled_internal: usize,
    /// Interned string table, in symbol order: every distinct source
    /// label followed by every normalized key, first-encounter order.
    pub symbols: Vec<String>,
    /// Distinct source label → its normalized content-word keys, as
    /// indices into [`DomainArtifact::symbols`]. Sorted by label symbol.
    pub normalized: Vec<(u32, Vec<u32>)>,
    /// Per-node labeling-decision provenance, sorted by node id. Empty
    /// for artifacts loaded from snapshots that predate the
    /// `decisions/` section.
    pub decisions: Vec<qi_core::LabelDecision>,
}

impl DomainArtifact {
    /// URL-safe identifier: lowercase, spaces → `_` (matches the corpus
    /// export directory naming).
    pub fn slug(&self) -> String {
        slug_of(&self.name)
    }

    /// Resolve a symbol index into its string.
    pub fn symbol(&self, index: u32) -> &str {
        &self.symbols[index as usize]
    }

    /// The normalized content-word keys of a source label, if the label
    /// occurs in this domain.
    pub fn normalized_keys(&self, label: &str) -> Option<Vec<&str>> {
        self.normalized
            .iter()
            .find(|(sym, _)| self.symbol(*sym) == label)
            .map(|(_, keys)| keys.iter().map(|&k| self.symbol(k)).collect())
    }

    /// Number of source interfaces.
    pub fn interfaces(&self) -> usize {
        self.schemas.len()
    }
}

/// The slug of a display name.
pub fn slug_of(name: &str) -> String {
    name.replace(' ', "_").to_lowercase()
}

/// Run the full pipeline on one domain and package the serving artifact.
pub fn build_artifact(
    domain: &Domain,
    lexicon: &Lexicon,
    policy: NamingPolicy,
    telemetry: &Telemetry,
) -> DomainArtifact {
    let span = telemetry.timed("serve.build_artifact");
    let prepared = domain.prepare();
    let labeled = Labeler::new(lexicon, policy)
        .with_telemetry(telemetry.clone())
        .label(&prepared.schemas, &prepared.mapping, &prepared.integrated);
    let decisions = qi_core::provenance::decisions(&labeled, &policy);

    // Lexical sidecar: normalize every distinct source label once and
    // intern both the labels and their content-word keys so the snapshot
    // stores each distinct string exactly once.
    let interner = Interner::new();
    let mut normalized: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for schema in &domain.schemas {
        for node in schema.nodes() {
            let Some(label) = &node.label else { continue };
            let sym = interner.intern(label);
            if normalized.contains_key(&sym.0) {
                continue;
            }
            let text = LabelText::new(label, lexicon);
            let keys: Vec<u32> = text
                .keys()
                .into_iter()
                .map(|k| interner.intern(k).0)
                .collect();
            normalized.insert(sym.0, keys);
        }
    }
    let symbols: Vec<String> = (0..interner.len() as u32)
        .map(|i| interner.resolve(qi_runtime::Symbol(i)).to_string())
        .collect();
    drop(span);

    DomainArtifact {
        name: domain.name.clone(),
        schemas: domain.schemas.clone(),
        mapping: domain.mapping.clone(),
        labeled: labeled.tree,
        leaf_cluster: labeled.leaf_cluster,
        class: labeled.report.class,
        li_usage: labeled.report.li_usage,
        unlabeled_fields: labeled.report.unlabeled_fields,
        labeled_internal: labeled.report.labeled_internal,
        symbols,
        normalized: normalized.into_iter().collect(),
        decisions,
    }
}

/// Build the artifacts of the whole builtin seven-domain corpus, in
/// Table 6 order.
pub fn build_corpus_artifacts(
    lexicon: &Lexicon,
    policy: NamingPolicy,
    telemetry: &Telemetry,
) -> Vec<DomainArtifact> {
    qi_datasets::all_domains()
        .iter()
        .map(|d| build_artifact(d, lexicon, policy, telemetry))
        .collect()
}

/// Add one interface to a domain and rebuild its artifact.
///
/// The new interface is not covered by the domain's ground-truth
/// clusters, so the whole domain is re-clustered with the
/// label-similarity matcher, then re-merged and re-labeled. The rebuild
/// touches *only* this domain — callers swap the result in behind the
/// store's lock while readers keep serving the old artifact.
pub fn ingest_interface(
    artifact: &DomainArtifact,
    interface: SchemaTree,
    lexicon: &Lexicon,
    policy: NamingPolicy,
    telemetry: &Telemetry,
) -> DomainArtifact {
    let span = telemetry.timed("serve.ingest");
    let mut schemas = artifact.schemas.clone();
    schemas.push(interface);
    let mapping = qi_mapping::match_by_labels(&schemas, lexicon);
    let domain = Domain {
        name: artifact.name.clone(),
        schemas,
        mapping,
    };
    let rebuilt = build_artifact(&domain, lexicon, policy, telemetry);
    drop(span);
    rebuilt
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_carries_pipeline_outputs() {
        let lexicon = Lexicon::builtin();
        let telemetry = Telemetry::off();
        let domain = qi_datasets::auto::domain();
        let artifact = build_artifact(&domain, &lexicon, NamingPolicy::default(), &telemetry);
        assert_eq!(artifact.name, "Auto");
        assert_eq!(artifact.slug(), "auto");
        assert_eq!(artifact.interfaces(), domain.schemas.len());
        assert!(artifact.labeled.leaves().all(|l| l.label.is_some()));
        assert_eq!(
            artifact.leaf_cluster.len(),
            artifact.labeled.leaves().count()
        );
        assert!(artifact.class.is_some());
        // Every cluster referenced by a leaf resolves to a concept.
        for &cluster in artifact.leaf_cluster.values() {
            assert!(cluster.index() < artifact.mapping.len());
        }
        // The sidecar covers every distinct source label.
        for schema in &artifact.schemas {
            for node in schema.nodes() {
                if let Some(label) = &node.label {
                    assert!(
                        artifact.normalized_keys(label).is_some(),
                        "missing normalized entry for {label:?}"
                    );
                }
            }
        }
        // Symbol table indices are in range.
        for (sym, keys) in &artifact.normalized {
            assert!((*sym as usize) < artifact.symbols.len());
            for &k in keys {
                assert!((k as usize) < artifact.symbols.len());
            }
        }
        // Provenance: decisions are sorted by node, each names a rule,
        // and every decision's node exists in the labeled tree.
        assert!(!artifact.decisions.is_empty());
        let node_count = artifact.labeled.nodes().count() as u32;
        for pair in artifact.decisions.windows(2) {
            assert!(pair[0].node <= pair[1].node);
        }
        for decision in &artifact.decisions {
            assert!(!decision.rule.is_empty());
            assert!(decision.node < node_count, "{decision:?}");
        }
    }

    #[test]
    fn ingest_adds_an_interface_and_relabels() {
        let lexicon = Lexicon::builtin();
        let telemetry = Telemetry::off();
        let domain = qi_datasets::auto::domain();
        let artifact = build_artifact(&domain, &lexicon, NamingPolicy::default(), &telemetry);
        let extra =
            qi_schema::text_format::parse("interface extra\n- Make\n- Model\n- Price\n").unwrap();
        let rebuilt = ingest_interface(
            &artifact,
            extra,
            &lexicon,
            NamingPolicy::default(),
            &telemetry,
        );
        assert_eq!(rebuilt.interfaces(), artifact.interfaces() + 1);
        assert_eq!(rebuilt.name, artifact.name);
        assert!(rebuilt.labeled.leaves().count() > 0);
        // Matcher-based re-clustering may leave unlabeled singletons (the
        // ground truth no longer covers the grown domain), but the report
        // must agree with the tree about how many.
        assert_eq!(
            rebuilt.unlabeled_fields,
            rebuilt
                .labeled
                .leaves()
                .filter(|l| l.label.is_none())
                .count()
        );
        assert!(
            rebuilt
                .labeled
                .leaves()
                .filter(|l| l.label.is_some())
                .count()
                > 0
        );
    }

    #[test]
    fn slug_normalizes_names() {
        assert_eq!(slug_of("Real Estate"), "real_estate");
        assert_eq!(slug_of("Auto"), "auto");
    }
}
