//! The live artifact store: copy-on-write per-domain state.
//!
//! Readers take a brief read lock, clone one `Arc`, and serve from the
//! immutable artifact — they never observe a half-rebuilt domain and
//! never stall behind an ingest. Writers rebuild the affected domain
//! *outside* any lock, then swap the new `Arc` in under a short write
//! lock. Concurrent ingests into the same store are serialized by a
//! dedicated mutex so two `POST`s cannot both rebuild from the same
//! base and lose one interface.

//!
//! # Rendered-response cache
//!
//! The store also holds a cache of fully rendered response bodies,
//! keyed by `(domain slug, endpoint)` and versioned: each entry
//! remembers the [`DomainArtifact::version`] (or, for the corpus-wide
//! `/domains` listing, the store [`Store::generation`]) it was rendered
//! from, and [`Store::cached`] only returns an entry whose recorded
//! version equals the caller's *current* version. Staleness is
//! therefore impossible by construction — a reader that raced an
//! ingest either sees the new artifact (and misses, re-rendering from
//! it) or the old artifact Arc it already cloned (a consistent, merely
//! old view, exactly as without the cache). Bodies are immutable
//! `Arc<Vec<u8>>`, so a hit costs one pointer clone and zero
//! serialization work.

use crate::artifact::{ingest_interface, slug_of, DomainArtifact};
use crate::snapshot::{fnv1a, Snapshot};
use qi_core::NamingPolicy;
use qi_lexicon::Lexicon;
use qi_runtime::{Category, Severity, Telemetry};
use qi_schema::SchemaTree;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// One immutable rendered response, pinned to the artifact version it
/// was rendered from.
pub struct CacheEntry {
    /// The [`DomainArtifact::version`] (or store generation) the body
    /// reflects; entries with a non-current version never hit.
    pub version: u64,
    /// Strong validator: `"{version}-{fnv1a(body):x}"`, quoted.
    pub etag: String,
    /// `Content-Type` of the rendered body.
    pub content_type: &'static str,
    /// The rendered bytes, shared with every response served from them.
    pub body: Arc<Vec<u8>>,
}

impl CacheEntry {
    /// Capture a freshly rendered response at a known version.
    pub fn of(version: u64, response: &crate::http::Response) -> CacheEntry {
        CacheEntry {
            version,
            etag: format!("\"{version}-{:x}\"", fnv1a(&response.body)),
            content_type: response.content_type,
            body: Arc::clone(&response.body),
        }
    }
}

/// Thread-safe map of domain slug → current artifact.
pub struct Store {
    domains: RwLock<BTreeMap<String, Arc<DomainArtifact>>>,
    /// Rendered-response cache; see the module docs. The corpus-wide
    /// `/domains` listing caches under the empty slug.
    cache: RwLock<HashMap<(String, &'static str), Arc<CacheEntry>>>,
    /// Bumped after every successful ingest swap; versions responses
    /// derived from the whole domain map rather than one artifact.
    generation: AtomicU64,
    ingest_lock: Mutex<()>,
    lexicon: Lexicon,
    /// Behind a lock because a hot reload may install a snapshot built
    /// under a different policy.
    policy: RwLock<NamingPolicy>,
    telemetry: Telemetry,
}

impl Store {
    /// Build a store over already-constructed artifacts.
    pub fn new(
        artifacts: Vec<DomainArtifact>,
        lexicon: Lexicon,
        policy: NamingPolicy,
        telemetry: Telemetry,
    ) -> Self {
        let domains = artifacts
            .into_iter()
            .map(|a| (a.slug(), Arc::new(a)))
            .collect();
        Store {
            domains: RwLock::new(domains),
            cache: RwLock::new(HashMap::new()),
            generation: AtomicU64::new(0),
            ingest_lock: Mutex::new(()),
            lexicon,
            policy: RwLock::new(policy),
            telemetry,
        }
    }

    /// Build a store from a loaded snapshot (the cold-start path — no
    /// pipeline work at all).
    pub fn from_snapshot(snapshot: Snapshot, lexicon: Lexicon, telemetry: Telemetry) -> Self {
        let policy = snapshot.policy;
        Store::new(snapshot.domains, lexicon, policy, telemetry)
    }

    /// The naming policy every artifact was (and will be) built under.
    pub fn policy(&self) -> NamingPolicy {
        *self.policy.read().unwrap()
    }

    /// The lexicon the artifacts were normalized against — query
    /// execution resolves `synonym-of`-style predicates through it.
    pub fn lexicon(&self) -> &Lexicon {
        &self.lexicon
    }

    /// Slugs of all served domains, sorted.
    pub fn slugs(&self) -> Vec<String> {
        self.domains.read().unwrap().keys().cloned().collect()
    }

    /// The current artifact of a domain, by slug or display name.
    pub fn get(&self, domain: &str) -> Option<Arc<DomainArtifact>> {
        self.domains.read().unwrap().get(&slug_of(domain)).cloned()
    }

    /// Number of served domains.
    pub fn len(&self) -> usize {
        self.domains.read().unwrap().len()
    }

    /// True when no domain is served.
    pub fn is_empty(&self) -> bool {
        self.domains.read().unwrap().is_empty()
    }

    /// The corpus-wide version: bumped after every successful ingest.
    /// Responses rendered from the whole domain map (the `/domains`
    /// listing) are cache-validated against it.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// The cached rendered response of `(slug, endpoint)`, if one
    /// exists *and* was rendered from exactly `version`. Callers count
    /// hits and misses into their own telemetry registry.
    pub fn cached(
        &self,
        slug: &str,
        endpoint: &'static str,
        version: u64,
    ) -> Option<Arc<CacheEntry>> {
        self.cache
            .read()
            .unwrap()
            .get(&(slug.to_string(), endpoint))
            .filter(|entry| entry.version == version)
            .cloned()
    }

    /// Insert a freshly rendered response and return the shared entry.
    /// A concurrent insert for the same key simply overwrites — both
    /// entries are correct for their recorded version.
    pub fn insert_cached(
        &self,
        slug: String,
        endpoint: &'static str,
        entry: CacheEntry,
    ) -> Arc<CacheEntry> {
        let entry = Arc::new(entry);
        self.cache
            .write()
            .unwrap()
            .insert((slug, endpoint), Arc::clone(&entry));
        entry
    }

    /// Drop every cached entry for `endpoint` whose recorded version is
    /// not `current`. The per-slug eviction in [`Store::ingest_with`]
    /// cannot see `/query` entries (their slug slot carries a query
    /// hash, not a domain), so the query handler calls this with the
    /// store generation before inserting — stale generations never hit
    /// anyway (version validation), this just stops them accumulating.
    pub fn prune_cached(&self, endpoint: &'static str, current: u64) {
        self.cache
            .write()
            .unwrap()
            .retain(|(_, e), entry| *e != endpoint || entry.version == current);
    }

    /// Add an interface to a domain: re-cluster, re-merge and re-label
    /// only that domain, then atomically swap the rebuilt artifact in.
    /// Returns the new artifact, or `None` for an unknown domain.
    pub fn ingest(&self, domain: &str, interface: SchemaTree) -> Option<Arc<DomainArtifact>> {
        let telemetry = self.telemetry.clone();
        self.ingest_with(domain, interface, &telemetry)
    }

    /// [`Store::ingest`] recording its pipeline spans into an explicit
    /// registry — lets the server attribute rebuild time to one request.
    pub fn ingest_with(
        &self,
        domain: &str,
        interface: SchemaTree,
        telemetry: &Telemetry,
    ) -> Option<Arc<DomainArtifact>> {
        let _serialized = self.ingest_lock.lock().unwrap();
        let slug = slug_of(domain);
        // Clone the current base under a brief read lock; the expensive
        // rebuild below runs with no lock held, so readers keep going.
        let base = self.domains.read().unwrap().get(&slug)?.clone();
        let policy = self.policy();
        let rebuilt = Arc::new(ingest_interface(
            &base,
            interface,
            &self.lexicon,
            policy,
            telemetry,
        ));
        self.domains
            .write()
            .unwrap()
            .insert(slug.clone(), Arc::clone(&rebuilt));
        // The bump must happen after the swap: a reader that sees the
        // new generation is then guaranteed to also see the new map.
        self.generation.fetch_add(1, Ordering::AcqRel);
        // Drop the touched domain's rendered responses — and only
        // those; other domains' entries stay valid. The corpus-level
        // `/domains` entry is keyed by generation, so the bump above
        // already retired it without an explicit eviction.
        let mut cache = self.cache.write().unwrap();
        let before = cache.len();
        cache.retain(|(s, _), _| *s != slug);
        let dropped = (before - cache.len()) as u64;
        drop(cache);
        if dropped > 0 {
            telemetry.add("serve.cache.invalidations", dropped);
            telemetry.event(Severity::Info, Category::Cache, "cache.invalidate", || {
                vec![("slug", slug.as_str().into()), ("entries", dropped.into())]
            });
        }
        Some(rebuilt)
    }

    /// Replace the whole served corpus with a loaded snapshot — the hot
    /// path behind `POST /admin/reload`. Serialized against ingests by
    /// the same lock, swapped in under one brief write lock, so live
    /// readers either keep the artifact `Arc` they already cloned or
    /// see the complete new map; nothing in between. Returns the number
    /// of domains now served.
    ///
    /// Snapshot files deliberately do not persist artifact versions
    /// (every loaded artifact carries version 0), so reload assigns
    /// every incoming artifact a version strictly above anything the
    /// rendered-response cache may have recorded — a cached body can
    /// never validate against a post-reload artifact it was not
    /// rendered from.
    pub fn reload(&self, snapshot: Snapshot, telemetry: &Telemetry) -> usize {
        let _serialized = self.ingest_lock.lock().unwrap();
        let Snapshot { policy, domains } = snapshot;
        let floor = self
            .domains
            .read()
            .unwrap()
            .values()
            .map(|a| a.version)
            .max()
            .unwrap_or(0);
        let count = domains.len();
        let map: BTreeMap<String, Arc<DomainArtifact>> = domains
            .into_iter()
            .map(|mut artifact| {
                artifact.version = floor + 1;
                (artifact.slug(), Arc::new(artifact))
            })
            .collect();
        *self.policy.write().unwrap() = policy;
        *self.domains.write().unwrap() = map;
        // Bump after the swap, as in ingest: a reader that observes the
        // new generation is guaranteed to also observe the new map.
        self.generation.fetch_add(1, Ordering::AcqRel);
        let mut cache = self.cache.write().unwrap();
        let dropped = cache.len() as u64;
        cache.clear();
        drop(cache);
        if dropped > 0 {
            telemetry.add("serve.cache.invalidations", dropped);
            telemetry.event(Severity::Info, Category::Cache, "cache.clear", || {
                vec![("entries", dropped.into())]
            });
        }
        count
    }

    /// Capture the current state as a snapshot value (for persistence).
    pub fn snapshot(&self) -> Snapshot {
        let domains = self
            .domains
            .read()
            .unwrap()
            .values()
            .map(|a| (**a).clone())
            .collect();
        Snapshot {
            policy: self.policy(),
            domains,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::build_artifact;

    fn auto_store() -> Store {
        let lexicon = Lexicon::builtin();
        let telemetry = Telemetry::off();
        let artifact = build_artifact(
            &qi_datasets::auto::domain(),
            &lexicon,
            NamingPolicy::default(),
            &telemetry,
        );
        Store::new(vec![artifact], lexicon, NamingPolicy::default(), telemetry)
    }

    #[test]
    fn lookup_accepts_slug_and_display_name() {
        let store = auto_store();
        assert_eq!(store.len(), 1);
        assert!(store.get("auto").is_some());
        assert!(store.get("Auto").is_some());
        assert!(store.get("nope").is_none());
        assert_eq!(store.slugs(), vec!["auto".to_string()]);
    }

    #[test]
    fn ingest_swaps_only_the_target_domain() {
        let store = auto_store();
        let before = store.get("auto").unwrap();
        let extra = qi_schema::text_format::parse("interface extra\n- Make\n- Model\n").unwrap();
        let after = store.ingest("auto", extra).unwrap();
        assert_eq!(after.interfaces(), before.interfaces() + 1);
        // The old Arc is still fully readable (copy-on-write).
        assert_eq!(
            before.interfaces() + 1,
            store.get("auto").unwrap().interfaces()
        );
        assert!(store.ingest("missing", before.schemas[0].clone()).is_none());
    }

    #[test]
    fn ingest_invalidates_only_the_touched_domains_cache() {
        let lexicon = Lexicon::builtin();
        let telemetry = Telemetry::off();
        let policy = NamingPolicy::default();
        let auto = build_artifact(&qi_datasets::auto::domain(), &lexicon, policy, &telemetry);
        let book = build_artifact(&qi_datasets::book::domain(), &lexicon, policy, &telemetry);
        let store = Store::new(vec![auto, book], lexicon, policy, telemetry);

        let rendered = crate::http::Response::json(200, "{}".to_string());
        store.insert_cached("auto".to_string(), "labels", CacheEntry::of(0, &rendered));
        store.insert_cached("book".to_string(), "labels", CacheEntry::of(0, &rendered));
        assert!(store.cached("auto", "labels", 0).is_some());
        assert!(store.cached("book", "labels", 0).is_some());

        let generation = store.generation();
        let extra = qi_schema::text_format::parse("interface extra\n- Make\n").unwrap();
        store.ingest("auto", extra).unwrap();
        assert_eq!(
            store.generation(),
            generation + 1,
            "ingest bumps generation"
        );
        assert!(
            store.cached("auto", "labels", 0).is_none(),
            "touched domain must be evicted"
        );
        assert!(
            store.cached("book", "labels", 0).is_some(),
            "untouched domain keeps its rendered responses"
        );
        // Version validation alone also rejects a non-current entry.
        assert!(store.cached("book", "labels", 99).is_none());
    }

    #[test]
    fn reload_swaps_the_corpus_and_defeats_stale_cache_entries() {
        let lexicon = Lexicon::builtin();
        let telemetry = Telemetry::off();
        let policy = NamingPolicy::default();
        let auto = build_artifact(&qi_datasets::auto::domain(), &lexicon, policy, &telemetry);
        let book = build_artifact(&qi_datasets::book::domain(), &lexicon, policy, &telemetry);
        let store = Store::new(vec![auto], lexicon, policy, telemetry.clone());

        // Grow the live corpus past the snapshot we will reload.
        let extra = qi_schema::text_format::parse("interface extra\n- Make\n").unwrap();
        store.ingest("auto", extra).unwrap();
        let grown = store.get("auto").unwrap();
        let old_reader = Arc::clone(&grown); // a request mid-flight
        let rendered = crate::http::Response::json(200, "{}".to_string());
        store.insert_cached(
            "auto".to_string(),
            "labels",
            CacheEntry::of(grown.version, &rendered),
        );
        let generation = store.generation();

        // Reload a two-domain snapshot whose `auto` lacks the ingest.
        let lexicon = Lexicon::builtin();
        let snap_auto = build_artifact(&qi_datasets::auto::domain(), &lexicon, policy, &telemetry);
        let snapshot = Snapshot {
            policy,
            domains: vec![snap_auto, book],
        };
        assert_eq!(store.reload(snapshot, &telemetry), 2);

        assert_eq!(store.len(), 2);
        assert!(store.get("book").is_some());
        let reloaded = store.get("auto").unwrap();
        assert_eq!(reloaded.interfaces(), grown.interfaces() - 1);
        assert!(
            reloaded.version > grown.version,
            "reloaded artifacts must out-version every pre-reload one \
             ({} vs {})",
            reloaded.version,
            grown.version
        );
        assert_eq!(store.generation(), generation + 1);
        assert!(
            store.cached("auto", "labels", reloaded.version).is_none(),
            "pre-reload rendered bodies must not validate"
        );
        // The in-flight reader's Arc is still fully usable.
        assert_eq!(old_reader.interfaces(), grown.interfaces());
    }

    #[test]
    fn snapshot_captures_current_state() {
        let store = auto_store();
        let extra = qi_schema::text_format::parse("interface extra\n- Make\n").unwrap();
        store.ingest("auto", extra).unwrap();
        let snapshot = store.snapshot();
        assert_eq!(snapshot.domains.len(), 1);
        assert_eq!(
            snapshot.domains[0].interfaces(),
            store.get("auto").unwrap().interfaces()
        );
    }
}
