//! The live artifact store: copy-on-write per-domain state.
//!
//! Readers take a brief read lock, clone one `Arc`, and serve from the
//! immutable artifact — they never observe a half-rebuilt domain and
//! never stall behind an ingest. Writers rebuild the affected domain
//! *outside* any lock, then swap the new `Arc` in under a short write
//! lock. Concurrent ingests into the same store are serialized by a
//! dedicated mutex so two `POST`s cannot both rebuild from the same
//! base and lose one interface.

use crate::artifact::{ingest_interface, slug_of, DomainArtifact};
use crate::snapshot::Snapshot;
use qi_core::NamingPolicy;
use qi_lexicon::Lexicon;
use qi_runtime::Telemetry;
use qi_schema::SchemaTree;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, RwLock};

/// Thread-safe map of domain slug → current artifact.
pub struct Store {
    domains: RwLock<BTreeMap<String, Arc<DomainArtifact>>>,
    ingest_lock: Mutex<()>,
    lexicon: Lexicon,
    policy: NamingPolicy,
    telemetry: Telemetry,
}

impl Store {
    /// Build a store over already-constructed artifacts.
    pub fn new(
        artifacts: Vec<DomainArtifact>,
        lexicon: Lexicon,
        policy: NamingPolicy,
        telemetry: Telemetry,
    ) -> Self {
        let domains = artifacts
            .into_iter()
            .map(|a| (a.slug(), Arc::new(a)))
            .collect();
        Store {
            domains: RwLock::new(domains),
            ingest_lock: Mutex::new(()),
            lexicon,
            policy,
            telemetry,
        }
    }

    /// Build a store from a loaded snapshot (the cold-start path — no
    /// pipeline work at all).
    pub fn from_snapshot(snapshot: Snapshot, lexicon: Lexicon, telemetry: Telemetry) -> Self {
        let policy = snapshot.policy;
        Store::new(snapshot.domains, lexicon, policy, telemetry)
    }

    /// The naming policy every artifact was (and will be) built under.
    pub fn policy(&self) -> NamingPolicy {
        self.policy
    }

    /// Slugs of all served domains, sorted.
    pub fn slugs(&self) -> Vec<String> {
        self.domains.read().unwrap().keys().cloned().collect()
    }

    /// The current artifact of a domain, by slug or display name.
    pub fn get(&self, domain: &str) -> Option<Arc<DomainArtifact>> {
        self.domains.read().unwrap().get(&slug_of(domain)).cloned()
    }

    /// Number of served domains.
    pub fn len(&self) -> usize {
        self.domains.read().unwrap().len()
    }

    /// True when no domain is served.
    pub fn is_empty(&self) -> bool {
        self.domains.read().unwrap().is_empty()
    }

    /// Add an interface to a domain: re-cluster, re-merge and re-label
    /// only that domain, then atomically swap the rebuilt artifact in.
    /// Returns the new artifact, or `None` for an unknown domain.
    pub fn ingest(&self, domain: &str, interface: SchemaTree) -> Option<Arc<DomainArtifact>> {
        let telemetry = self.telemetry.clone();
        self.ingest_with(domain, interface, &telemetry)
    }

    /// [`Store::ingest`] recording its pipeline spans into an explicit
    /// registry — lets the server attribute rebuild time to one request.
    pub fn ingest_with(
        &self,
        domain: &str,
        interface: SchemaTree,
        telemetry: &Telemetry,
    ) -> Option<Arc<DomainArtifact>> {
        let _serialized = self.ingest_lock.lock().unwrap();
        let slug = slug_of(domain);
        // Clone the current base under a brief read lock; the expensive
        // rebuild below runs with no lock held, so readers keep going.
        let base = self.domains.read().unwrap().get(&slug)?.clone();
        let rebuilt = Arc::new(ingest_interface(
            &base,
            interface,
            &self.lexicon,
            self.policy,
            telemetry,
        ));
        self.domains
            .write()
            .unwrap()
            .insert(slug, Arc::clone(&rebuilt));
        Some(rebuilt)
    }

    /// Capture the current state as a snapshot value (for persistence).
    pub fn snapshot(&self) -> Snapshot {
        let domains = self
            .domains
            .read()
            .unwrap()
            .values()
            .map(|a| (**a).clone())
            .collect();
        Snapshot {
            policy: self.policy,
            domains,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::build_artifact;

    fn auto_store() -> Store {
        let lexicon = Lexicon::builtin();
        let telemetry = Telemetry::off();
        let artifact = build_artifact(
            &qi_datasets::auto::domain(),
            &lexicon,
            NamingPolicy::default(),
            &telemetry,
        );
        Store::new(vec![artifact], lexicon, NamingPolicy::default(), telemetry)
    }

    #[test]
    fn lookup_accepts_slug_and_display_name() {
        let store = auto_store();
        assert_eq!(store.len(), 1);
        assert!(store.get("auto").is_some());
        assert!(store.get("Auto").is_some());
        assert!(store.get("nope").is_none());
        assert_eq!(store.slugs(), vec!["auto".to_string()]);
    }

    #[test]
    fn ingest_swaps_only_the_target_domain() {
        let store = auto_store();
        let before = store.get("auto").unwrap();
        let extra = qi_schema::text_format::parse("interface extra\n- Make\n- Model\n").unwrap();
        let after = store.ingest("auto", extra).unwrap();
        assert_eq!(after.interfaces(), before.interfaces() + 1);
        // The old Arc is still fully readable (copy-on-write).
        assert_eq!(
            before.interfaces() + 1,
            store.get("auto").unwrap().interfaces()
        );
        assert!(store.ingest("missing", before.schemas[0].clone()).is_none());
    }

    #[test]
    fn snapshot_captures_current_state() {
        let store = auto_store();
        let extra = qi_schema::text_format::parse("interface extra\n- Make\n").unwrap();
        store.ingest("auto", extra).unwrap();
        let snapshot = store.snapshot();
        assert_eq!(snapshot.domains.len(), 1);
        assert_eq!(
            snapshot.domains[0].interfaces(),
            store.get("auto").unwrap().interfaces()
        );
    }
}
