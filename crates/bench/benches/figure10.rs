//! Benchmark regenerating Figure 10: the candidate-label derivation
//! (LI1–LI7) workload across the corpus, plus the per-domain naming run
//! that produces the usage counters.
//!
//! Prints the regenerated LI-involvement chart once before measuring.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qi_core::{Labeler, NamingPolicy};
use qi_eval::{evaluate_corpus, table, Panel};
use qi_lexicon::Lexicon;
use std::hint::black_box;

fn bench_figure10(c: &mut Criterion) {
    let domains = qi_datasets::all_domains();
    let lexicon = Lexicon::builtin();
    let result = evaluate_corpus(&domains, &lexicon, NamingPolicy::default(), Panel::default());
    println!("\n{}", table::render_figure10(&result.li_usage));

    let prepared: Vec<_> = domains.iter().map(|d| d.prepare()).collect();
    let mut group = c.benchmark_group("figure10");
    group.sample_size(10);
    for domain in &prepared {
        group.bench_with_input(
            BenchmarkId::new("label-and-count", &domain.name),
            domain,
            |b, domain| {
                let labeler = Labeler::new(&lexicon, NamingPolicy::default());
                b.iter(|| {
                    let labeled =
                        labeler.label(&domain.schemas, &domain.mapping, &domain.integrated);
                    black_box(labeled.report.li_usage)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_figure10);
criterion_main!(benches);
