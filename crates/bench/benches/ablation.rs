//! Ablation benchmarks over the design choices DESIGN.md calls out:
//!
//! * **policy** — most-descriptive (paper) vs most-general (\[12\]);
//! * **levels** — the Definition 2 relaxation ladder capped at each rung;
//! * **instances** — LI6/LI7 on vs off;
//! * **repair** — homonym repair on vs off.
//!
//! Each variant runs the full naming pass over the Airline domain (the
//! structurally richest one). The cost differences quantify what each
//! mechanism adds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qi_core::{ConsistencyLevel, Labeler, NamingPolicy};
use qi_lexicon::Lexicon;
use std::hint::black_box;

fn bench_ablation(c: &mut Criterion) {
    let prepared = qi_datasets::airline::domain().prepare();
    let lexicon = Lexicon::builtin();
    let variants: Vec<(String, NamingPolicy)> = vec![
        ("paper-default".to_string(), NamingPolicy::default()),
        (
            "most-general-baseline".to_string(),
            NamingPolicy::most_general_baseline(),
        ),
        (
            "cap-string".to_string(),
            NamingPolicy {
                max_level: ConsistencyLevel::String,
                ..NamingPolicy::default()
            },
        ),
        (
            "cap-equality".to_string(),
            NamingPolicy {
                max_level: ConsistencyLevel::Equality,
                ..NamingPolicy::default()
            },
        ),
        (
            "no-instances".to_string(),
            NamingPolicy {
                use_instances: false,
                ..NamingPolicy::default()
            },
        ),
        (
            "no-repair".to_string(),
            NamingPolicy {
                repair_conflicts: false,
                ..NamingPolicy::default()
            },
        ),
    ];
    let mut group = c.benchmark_group("ablation");
    group.sample_size(20);
    for (name, policy) in variants {
        group.bench_with_input(BenchmarkId::new("airline", &name), &policy, |b, policy| {
            let labeler = Labeler::new(&lexicon, *policy);
            b.iter(|| {
                black_box(labeler.label(
                    &prepared.schemas,
                    &prepared.mapping,
                    &prepared.integrated,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
