//! Scalability of the pipeline on synthetic domains: runtime vs number
//! of interfaces, vs number of concepts, and vs group width.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qi_core::{Labeler, NamingPolicy};
use qi_datasets::{SynthConfig, SynthDomain};
use qi_lexicon::Lexicon;
use std::hint::black_box;

fn run(config: SynthConfig, lexicon: &Lexicon) -> usize {
    let synth = SynthDomain::generate(config);
    let prepared = synth.domain.prepare();
    let labeler = Labeler::new(lexicon, NamingPolicy::default());
    let labeled = labeler.label(&prepared.schemas, &prepared.mapping, &prepared.integrated);
    labeled.tree.leaves().count()
}

fn bench_scale(c: &mut Criterion) {
    let lexicon = Lexicon::builtin();
    let mut group = c.benchmark_group("scale");
    group.sample_size(10);
    for interfaces in [10usize, 20, 40, 80] {
        let config = SynthConfig {
            interfaces,
            ..SynthConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::new("interfaces", interfaces),
            &config,
            |b, config| b.iter(|| black_box(run(config.clone(), &lexicon))),
        );
    }
    for concepts in [12usize, 24, 48, 96] {
        let config = SynthConfig {
            concepts,
            groups: concepts / 4,
            ..SynthConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::new("concepts", concepts),
            &config,
            |b, config| b.iter(|| black_box(run(config.clone(), &lexicon))),
        );
    }
    for group_width in [2usize, 4, 8, 12] {
        let config = SynthConfig {
            concepts: 24,
            groups: (24 / group_width).max(1),
            ..SynthConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::new("group_width", group_width),
            &config,
            |b, config| b.iter(|| black_box(run(config.clone(), &lexicon))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scale);
criterion_main!(benches);
