//! Micro-benchmarks of the paper's worked examples and their underlying
//! primitives: the Table 2/3/4 group-naming runs, Definition 1 label
//! relations, and the Porter stemmer.

use criterion::{criterion_group, criterion_main, Criterion};
use qi_core::{ctx::NamingCtx, relations::relate, solution::name_group, NamingPolicy};
use qi_lexicon::Lexicon;
use qi_mapping::{ClusterId, GroupRelation};
use qi_text::LabelText;
use std::hint::black_box;

fn cids(n: u32) -> Vec<ClusterId> {
    (0..n).map(ClusterId).collect()
}

fn table2_relation() -> GroupRelation {
    GroupRelation::from_rows(
        &cids(4),
        &[
            vec![None, Some("Adults"), Some("Children"), None],
            vec![None, Some("Adult"), Some("Child"), Some("Infant")],
            vec![None, Some("Adult"), Some("Child"), None],
            vec![Some("Seniors"), Some("Adults"), Some("Children"), None],
            vec![None, Some("Adults"), Some("Children"), Some("Infants")],
            vec![Some("Seniors"), Some("Adults"), Some("Children"), None],
        ],
    )
}

fn table3_relation() -> GroupRelation {
    GroupRelation::from_rows(
        &cids(4),
        &[
            vec![Some("State"), Some("City"), None, None],
            vec![None, None, Some("Zip Code"), Some("Distance")],
            vec![Some("State"), Some("City"), None, None],
            vec![None, None, Some("Your Zip"), Some("Within")],
        ],
    )
}

fn table4_relation() -> GroupRelation {
    GroupRelation::from_rows(
        &cids(3),
        &[
            vec![Some("NonStop"), None, Some("Choose an Airline")],
            vec![Some("Number of Connections"), None, Some("Airline Preference")],
            vec![None, Some("Class of Ticket"), Some("Preferred Airline")],
            vec![Some("Max. Number of Stops"), None, Some("Airline Preference")],
            vec![None, Some("Class"), Some("Airline")],
        ],
    )
}

fn bench_group_naming(c: &mut Criterion) {
    let lexicon = Lexicon::builtin();
    let policy = NamingPolicy::default();
    let mut group = c.benchmark_group("paper_examples");
    for (name, relation) in [
        ("table2_string_level", table2_relation()),
        ("table3_partially_consistent", table3_relation()),
        ("table4_equality_level", table4_relation()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                // Fresh context per iteration: measure the uncached path.
                let ctx = NamingCtx::new(&lexicon);
                black_box(name_group(black_box(&relation), &ctx, &policy))
            })
        });
    }
    group.finish();
}

fn bench_relations(c: &mut Criterion) {
    let lexicon = Lexicon::builtin();
    let pairs = [
        ("Type of Job", "Job Type"),
        ("Area of Study", "Field of Work"),
        ("Class", "Class of Tickets"),
        ("Location", "Property Location"),
        ("Make", "Model"),
        ("Do you have any preferences?", "Airline Preferences"),
    ];
    let texts: Vec<(LabelText, LabelText)> = pairs
        .iter()
        .map(|(a, b)| (LabelText::new(a, &lexicon), LabelText::new(b, &lexicon)))
        .collect();
    c.bench_function("definition1_relations", |b| {
        b.iter(|| {
            for (a, bb) in &texts {
                black_box(relate(a, bb, &lexicon));
            }
        })
    });
    c.bench_function("label_normalization", |b| {
        b.iter(|| {
            for (a, _) in &pairs {
                black_box(LabelText::new(a, &lexicon));
            }
        })
    });
}

fn bench_porter(c: &mut Criterion) {
    let words = [
        "connections",
        "preferences",
        "preferred",
        "departing",
        "traveling",
        "availability",
        "characteristics",
        "internationalization",
    ];
    c.bench_function("porter_stemmer", |b| {
        b.iter(|| {
            for w in &words {
                black_box(qi_text::stem(w));
            }
        })
    });
}

criterion_group!(benches, bench_group_naming, bench_relations, bench_porter);
criterion_main!(benches);
