//! Benchmark regenerating Table 6: the full pipeline (1:m expansion →
//! merge → naming → metrics) per domain and for the whole corpus.
//!
//! Run with `cargo bench -p qi-bench --bench table6`. The bench prints
//! the regenerated table once before measuring.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qi_core::NamingPolicy;
use qi_eval::{evaluate_corpus, evaluate_domain, table, Panel};
use qi_lexicon::Lexicon;
use std::hint::black_box;

fn bench_table6(c: &mut Criterion) {
    let domains = qi_datasets::all_domains();
    let lexicon = Lexicon::builtin();
    // Print the regenerated artifact once.
    let result = evaluate_corpus(&domains, &lexicon, NamingPolicy::default(), Panel::default());
    println!("\n{}", table::render_table6(&result.domains));

    let mut group = c.benchmark_group("table6");
    group.sample_size(10);
    for domain in &domains {
        group.bench_with_input(
            BenchmarkId::new("domain", &domain.name),
            domain,
            |b, domain| {
                b.iter(|| {
                    black_box(evaluate_domain(
                        black_box(domain),
                        &lexicon,
                        NamingPolicy::default(),
                        Panel::default(),
                    ))
                })
            },
        );
    }
    group.bench_function("corpus", |b| {
        b.iter(|| {
            black_box(evaluate_corpus(
                black_box(&domains),
                &lexicon,
                NamingPolicy::default(),
                Panel::default(),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table6);
criterion_main!(benches);
