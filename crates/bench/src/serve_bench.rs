//! `qi-serve-bench` — snapshot cold-start vs full rebuild, and serve
//! throughput over a real socket.
//!
//! Measures, on the builtin seven-domain corpus:
//!
//! * `full_rebuild` — running the whole pipeline (cluster → merge →
//!   label, all domains) as a server would on a cold start without a
//!   snapshot;
//! * `snapshot_load` — decoding a snapshot file and building the store
//!   from it (the snapshot cold-start path);
//! * `serve` — end-to-end `GET` throughput against a running server,
//!   several concurrent std-only clients (`--clients` takes a comma
//!   list and sweeps each count). Every client count runs twice: in
//!   *close* mode (one connection per request, as cold external traffic
//!   would) and in *keep-alive* mode (one persistent connection per
//!   client, requests pipelined `--pipeline` deep, as a warm reverse
//!   proxy would drive the server). Keep-alive latency is amortized:
//!   each request in a pipelined batch is charged batch-RTT ÷ batch
//!   size, the marginal cost of one more request on a warm connection;
//! * `ingest` — incremental (delta) vs full-rebuild ingest medians for
//!   one interface into a warm domain, plus `POST` latency and read
//!   latency measured *while* ingests run against the live server;
//! * `query_scaled` — the query engine's representative query set
//!   (every primitive, every predicate atom, lexicon relations,
//!   provenance filters) executed against a seeded drift corpus, one
//!   full set-over-all-domains pass per run. `scripts/bench.sh` warns
//!   when the median regresses >10% against the committed reference.
//!
//! Emits a single-line JSON document (default `BENCH_serve.json`)
//! consumed by `scripts/bench.sh`.
//!
//! ```text
//! qi-serve-bench [--iters N] [--requests N] [--ka-requests N]
//!                [--clients N[,N...]] [--pipeline N] [--out FILE]
//! ```

use qi_core::NamingPolicy;
use qi_lexicon::Lexicon;
use qi_runtime::json::{Arr, Obj};
use qi_runtime::Telemetry;
use qi_serve::{Server, ServerConfig, Snapshot, Store};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Timing medians carry three fraction digits, rates carry one.
const DECIMALS: usize = 3;

struct Config {
    iters: usize,
    /// Requests per close-mode sweep point.
    requests: usize,
    /// Requests per keep-alive sweep point (persistent connections push
    /// vastly more traffic, so they need more samples to measure).
    ka_requests: usize,
    /// Client counts to sweep; the first is the primary configuration
    /// reported in the top-level `serve` object.
    clients: Vec<usize>,
    /// Pipelining depth per keep-alive batch.
    pipeline: usize,
    out: Option<String>,
}

fn parse_args() -> Result<Config, String> {
    let mut config = Config {
        iters: 5,
        requests: 2_000,
        ka_requests: 32_000,
        clients: vec![1, 4, 16, 64],
        pipeline: 32,
        out: Some("BENCH_serve.json".to_string()),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut number = |name: &str| -> Result<usize, String> {
            iter.next()
                .ok_or(format!("{name} needs a number"))?
                .parse()
                .map_err(|e| format!("{name}: {e}"))
        };
        match arg.as_str() {
            "--iters" => config.iters = number("--iters")?.max(1),
            "--requests" => config.requests = number("--requests")?.max(1),
            "--ka-requests" => config.ka_requests = number("--ka-requests")?.max(1),
            "--pipeline" => config.pipeline = number("--pipeline")?.max(1),
            "--clients" => {
                let list = iter
                    .next()
                    .ok_or("--clients needs a number or comma list")?;
                config.clients = list
                    .split(',')
                    .map(|part| {
                        part.trim()
                            .parse::<usize>()
                            .map(|n| n.max(1))
                            .map_err(|e| format!("--clients {part:?}: {e}"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                if config.clients.is_empty() {
                    return Err("--clients list is empty".to_string());
                }
            }
            "--out" => {
                config.out = Some(
                    iter.next()
                        .ok_or("--out needs a file argument")?
                        .to_string(),
                )
            }
            "--stdout" => config.out = None,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(config)
}

fn median(mut runs: Vec<f64>) -> f64 {
    runs.sort_by(|a, b| a.total_cmp(b));
    runs[runs.len() / 2]
}

fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed().as_secs_f64() * 1e3)
}

fn runs_json(runs: &[f64]) -> String {
    let mut arr = Arr::new();
    for &ms in runs {
        arr.raw(qi_runtime::json::number(ms, DECIMALS));
    }
    arr.finish()
}

/// One raw `GET` against the server; returns true on a 200. Records the
/// connect-to-last-byte latency into `latency` (nanoseconds).
fn get_ok(addr: std::net::SocketAddr, path: &str, latency: &qi_runtime::Histogram) -> bool {
    let request = format!("GET {path} HTTP/1.1\r\nhost: bench\r\nconnection: close\r\n\r\n");
    let start = Instant::now();
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return false;
    };
    if stream.write_all(request.as_bytes()).is_err() {
        return false;
    }
    let mut response = Vec::new();
    if stream.read_to_end(&mut response).is_err() {
        return false;
    }
    latency.record(start.elapsed().as_nanos() as u64);
    response.starts_with(b"HTTP/1.1 200")
}

/// One raw `GET`; returns the response body (empty on any failure).
fn fetch_body(addr: std::net::SocketAddr, path: &str) -> String {
    let request = format!("GET {path} HTTP/1.1\r\nhost: bench\r\nconnection: close\r\n\r\n");
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return String::new();
    };
    if stream.write_all(request.as_bytes()).is_err() {
        return String::new();
    }
    let mut response = Vec::new();
    if stream.read_to_end(&mut response).is_err() {
        return String::new();
    }
    let text = String::from_utf8_lossy(&response);
    text.split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .unwrap_or_default()
}

/// One raw `POST` against the server; returns true on a 200. Records
/// connect-to-last-byte latency (nanoseconds).
fn post_ok(
    addr: std::net::SocketAddr,
    path: &str,
    body: &str,
    latency: &qi_runtime::Histogram,
) -> bool {
    let request = format!(
        "POST {path} HTTP/1.1\r\nhost: bench\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    );
    let start = Instant::now();
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return false;
    };
    if stream.write_all(request.as_bytes()).is_err() {
        return false;
    }
    let mut response = Vec::new();
    if stream.read_to_end(&mut response).is_err() {
        return false;
    }
    latency.record(start.elapsed().as_nanos() as u64);
    response.starts_with(b"HTTP/1.1 200")
}

/// Read one `content-length`-framed response off a persistent
/// connection, leaving pipelined surplus in `buffered`. Returns the
/// status code, or `None` on a malformed/truncated response.
fn read_framed(stream: &mut TcpStream, buffered: &mut Vec<u8>) -> Option<u16> {
    let mut chunk = [0u8; 16 * 1024];
    let head_end = loop {
        if let Some(pos) = buffered.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        match stream.read(&mut chunk) {
            Ok(n) if n > 0 => buffered.extend_from_slice(&chunk[..n]),
            _ => return None,
        }
    };
    let head = String::from_utf8_lossy(&buffered[..head_end]);
    let status: u16 = head.split(' ').nth(1)?.parse().ok()?;
    let length: usize = head
        .lines()
        .skip(1)
        .find_map(|line| {
            let (name, value) = line.split_once(':')?;
            name.trim()
                .eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse().ok())?
        })
        .unwrap_or(0);
    while buffered.len() < head_end + length {
        match stream.read(&mut chunk) {
            Ok(n) if n > 0 => buffered.extend_from_slice(&chunk[..n]),
            _ => return None,
        }
    }
    buffered.drain(..head_end + length);
    Some(status)
}

/// One keep-alive client: a single persistent connection issuing
/// `total` GETs in pipelined batches of `depth`. Each request is
/// charged batch-RTT ÷ batch-size nanoseconds of latency — the
/// amortized per-request cost on a warm connection. Returns how many
/// answered 200.
fn keepalive_client(
    addr: std::net::SocketAddr,
    paths: &[&str],
    total: usize,
    depth: usize,
    latency: &qi_runtime::Histogram,
) -> usize {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return 0;
    };
    let _ = stream.set_nodelay(true);
    let mut ok = 0;
    let mut buffered = Vec::new();
    let mut sent = 0;
    while sent < total {
        let batch = depth.min(total - sent);
        let mut wire = Vec::with_capacity(batch * 48);
        for i in 0..batch {
            let path = paths[(sent + i) % paths.len()];
            wire.extend_from_slice(
                format!("GET {path} HTTP/1.1\r\nhost: bench\r\n\r\n").as_bytes(),
            );
        }
        let start = Instant::now();
        if stream.write_all(&wire).is_err() {
            return ok;
        }
        for _ in 0..batch {
            match read_framed(&mut stream, &mut buffered) {
                Some(200) => ok += 1,
                _ => return ok,
            }
        }
        let per_request = (start.elapsed().as_nanos() as u64 / batch as u64).max(1);
        for _ in 0..batch {
            latency.record(per_request);
        }
        sent += batch;
    }
    ok
}

const GROW: usize = 100;

fn parse_interface(text: &str) -> qi_schema::SchemaTree {
    qi_schema::text_format::parse(text).expect("benchmark interface parses")
}

fn main() {
    let config = match parse_args() {
        Ok(config) => config,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    };
    let lexicon = Lexicon::builtin();
    let policy = NamingPolicy::default();
    let telemetry = Telemetry::off();

    // Cold start without a snapshot: the full pipeline over all domains.
    let mut rebuild_runs = Vec::new();
    let mut artifacts = None;
    for _ in 0..config.iters {
        let (built, ms) = timed(|| qi_serve::build_corpus_artifacts(&lexicon, policy, &telemetry));
        rebuild_runs.push(ms);
        artifacts = Some(built);
    }
    let artifacts = artifacts.expect("at least one rebuild iteration");
    let domain_count = artifacts.len();

    // Snapshot the artifacts once, then time the snapshot cold start.
    let snapshot = Snapshot {
        policy,
        domains: artifacts,
    };
    let (bytes, encode_ms) = timed(|| snapshot.to_bytes());
    let snapshot_bytes = bytes.len();
    let path = std::env::temp_dir().join(format!("qi-serve-bench-{}.snap", std::process::id()));
    std::fs::write(&path, &bytes).expect("writing benchmark snapshot");
    let mut load_runs = Vec::new();
    let mut store = None;
    for _ in 0..config.iters {
        // The lexicon is rebuilt outside the timed section: both cold
        // starts need one, so it cancels out of the comparison.
        let iteration_lexicon = Lexicon::builtin();
        let iteration_telemetry = telemetry.clone();
        let path = &path;
        let (loaded, ms) = timed(move || {
            let snapshot = qi_serve::load_snapshot(path).expect("loading benchmark snapshot");
            Store::from_snapshot(snapshot, iteration_lexicon, iteration_telemetry)
        });
        load_runs.push(ms);
        store = Some(loaded);
    }
    let _ = std::fs::remove_file(&path);
    let store = Arc::new(store.expect("at least one load iteration"));

    // Incremental vs full ingest, in-process: one interface into a warm
    // domain (its delta carry state captured by a prior ingest), delta
    // path against forced full rebuild. The base is first grown to a
    // realistic long-running size — the full path re-clusters and
    // re-labels every accumulated interface, the delta path only the
    // new one, so this is where the two diverge. Runs before the
    // threaded server stages so the single-threaded medians are not
    // skewed by the heap state those stages leave behind.
    let auto = store.get("auto").expect("auto domain in corpus");
    let mut warm = qi_serve::ingest_interface(
        &auto,
        parse_interface("interface warm\n- Color\n- Price\n"),
        &lexicon,
        policy,
        &telemetry,
    );
    for i in 0..GROW {
        let interface = parse_interface(&format!(
            "interface grow{i}\n- Make\n- Model\n- Grown Field {i}\n"
        ));
        warm = qi_serve::ingest_interface(&warm, interface, &lexicon, policy, &telemetry);
    }
    let ingest_telemetry = Telemetry::new();
    let mut delta_runs = Vec::new();
    let mut full_runs = Vec::new();
    for i in 0..config.iters {
        let interface = parse_interface(&format!(
            "interface bench{i}\n- Make\n- Mileage\n- Bench Field {i}\n"
        ));
        let (_, ms) = timed(|| {
            qi_serve::ingest_interface(
                &warm,
                interface.clone(),
                &lexicon,
                policy,
                &ingest_telemetry,
            )
        });
        delta_runs.push(ms);
        let (_, ms) = timed(|| {
            qi_serve::ingest_interface_full(&warm, interface, &lexicon, policy, &ingest_telemetry)
        });
        full_runs.push(ms);
    }
    let delta_taken = ingest_telemetry
        .snapshot()
        .counters
        .get("serve.ingest.delta")
        .copied()
        .unwrap_or(0);
    assert_eq!(
        delta_taken, config.iters as u64,
        "warm ingest did not take the delta path"
    );

    // Query engine over a seeded drift corpus: one run = the whole
    // representative query set (every primitive, lexicon relations,
    // provenance filters) over every drift domain, unpaginated. The
    // drift labels exercise the interner and the per-query lexicon
    // symbol sets the way real heterogeneity would — verbatim clones
    // would collapse every label comparison onto a handful of symbols.
    const QUERY_SET: &[&str] = &[
        "find fields",
        "find nodes where unlabeled",
        "find fields where label ~ \"date\"",
        "find nodes where label synonym-of \"passenger\"",
        "find nodes where label hyponym-of \"location\"",
        "find nodes where rule ~ \"internal\"",
        "find fields where rejected ~ \"a\"",
        "path to groups where labeled",
        "traverse nodes from (kind = group and labeled) where kind = field",
        "find fields where label ~ \"city\" and not unlabeled or labeled",
    ];
    let drift_config = qi_datasets::DriftConfig {
        seed: 5,
        domains: 7,
        ..qi_datasets::DriftConfig::default()
    };
    let drift_corpus = qi_datasets::generate_drift_corpus(&drift_config, &lexicon);
    let query_artifacts: Vec<_> = drift_corpus
        .iter()
        .map(|domain| qi_serve::build_artifact(domain, &lexicon, policy, &telemetry))
        .collect();
    let mut query_refs: Vec<&qi_serve::DomainArtifact> = query_artifacts.iter().collect();
    query_refs.sort_by_key(|a| a.slug());
    let unpaginated = qi_serve::PageParams {
        limit: u64::MAX,
        ..qi_serve::PageParams::default()
    };
    let mut query_runs = Vec::new();
    let mut query_matches = 0u64;
    for _ in 0..config.iters {
        let (count, ms) = timed(|| {
            QUERY_SET
                .iter()
                .map(|text| {
                    qi_serve::run_query(&query_refs, &lexicon, text, &unpaginated)
                        .expect("benchmark query")
                        .matches
                        .len() as u64
                })
                .sum::<u64>()
        });
        query_matches = count;
        query_runs.push(ms);
    }
    let query_median = median(query_runs.clone());
    drop(query_refs);
    drop(query_artifacts);

    // Serve throughput: concurrent clients hammering read endpoints,
    // once per requested client count. Repeated paths hit the
    // rendered-response cache after their first render, as production
    // reads would.
    let serve_telemetry = Telemetry::new();
    let server_config = ServerConfig {
        // Deep enough that 64 clients × 64 pipelined requests never
        // shed: this benchmark measures throughput, not backpressure.
        queue_depth: 8192,
        // A single benchmark connection pushes the whole --ka-requests
        // budget; the default per-connection request cap would cut it
        // off mid-run.
        max_requests_per_conn: u64::MAX,
        ..ServerConfig::default()
    };
    let server = Server::with_config(Arc::clone(&store), serve_telemetry.clone(), server_config);
    let mut handle = server.start().expect("starting benchmark server");
    let addr = handle.addr();
    let paths = [
        "/healthz",
        "/domains",
        "/domains/auto/labels",
        "/domains/auto/tree",
    ];
    let warmup = qi_runtime::Histogram::new();
    assert!(get_ok(addr, "/healthz", &warmup), "server did not come up");

    struct SweepPoint {
        mode: &'static str,
        clients: usize,
        sent: usize,
        ok_count: usize,
        elapsed_ms: f64,
        latency: qi_runtime::HistogramData,
    }
    let mut sweep = Vec::new();
    for &clients in &config.clients {
        // Close mode: a fresh connection per request.
        let latency = qi_runtime::Histogram::new();
        let per_client = config.requests.div_ceil(clients);
        let (ok_count, elapsed_ms) = timed(|| {
            std::thread::scope(|scope| {
                let workers: Vec<_> = (0..clients)
                    .map(|c| {
                        let paths = &paths;
                        let latency = &latency;
                        scope.spawn(move || {
                            (0..per_client)
                                .filter(|i| get_ok(addr, paths[(c + i) % paths.len()], latency))
                                .count()
                        })
                    })
                    .collect();
                workers
                    .into_iter()
                    .map(|w| w.join().unwrap())
                    .sum::<usize>()
            })
        });
        sweep.push(SweepPoint {
            mode: "close",
            clients,
            sent: per_client * clients,
            ok_count,
            elapsed_ms,
            latency: latency.data(),
        });

        // Keep-alive mode: one persistent pipelined connection per
        // client.
        let latency = qi_runtime::Histogram::new();
        let per_client = config.ka_requests.div_ceil(clients);
        let (ok_count, elapsed_ms) = timed(|| {
            std::thread::scope(|scope| {
                let workers: Vec<_> = (0..clients)
                    .map(|_| {
                        let paths = &paths[..];
                        let latency = &latency;
                        scope.spawn(move || {
                            keepalive_client(addr, paths, per_client, config.pipeline, latency)
                        })
                    })
                    .collect();
                workers
                    .into_iter()
                    .map(|w| w.join().unwrap())
                    .sum::<usize>()
            })
        });
        sweep.push(SweepPoint {
            mode: "keepalive",
            clients,
            sent: per_client * clients,
            ok_count,
            elapsed_ms,
            latency: latency.data(),
        });
    }

    // Ingest under read load: readers keep hammering one domain's
    // labels while interfaces are POSTed into it, measuring both the
    // POST latency (mostly the rebuild) and what reads cost *during*
    // the ingests (cache misses + copy-on-write swaps included).
    let read_clients = config.clients[0];
    let posts = config.iters.max(3);
    let read_latency = qi_runtime::Histogram::new();
    let post_latency = qi_runtime::Histogram::new();
    let ingesting = std::sync::atomic::AtomicBool::new(true);
    std::thread::scope(|scope| {
        let readers: Vec<_> = (0..read_clients)
            .map(|_| {
                let read_latency = &read_latency;
                let ingesting = &ingesting;
                scope.spawn(move || {
                    while ingesting.load(std::sync::atomic::Ordering::Relaxed) {
                        get_ok(addr, "/domains/auto/labels", read_latency);
                    }
                })
            })
            .collect();
        for i in 0..posts {
            let body = format!("interface load{i}\n- Make\n- Mileage\n- Load Field {i}\n");
            assert!(
                post_ok(addr, "/domains/auto/interfaces", &body, &post_latency),
                "benchmark ingest POST failed"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        ingesting.store(false, std::sync::atomic::Ordering::Relaxed);
        for reader in readers {
            reader.join().unwrap();
        }
    });
    let read_latency = read_latency.data();
    let post_latency = post_latency.data();
    let serve_counters = serve_telemetry.snapshot().counters;
    let counter = |name: &str| serve_counters.get(name).copied().unwrap_or(0);
    handle.shutdown();

    // Observability overhead (`observe_scaled`): the same keep-alive
    // workload against two fresh servers — flight recorder + windowed
    // time-series fully on vs fully off — plus an in-process recorder
    // saturation run for the events/sec headline. Key names are unique
    // in the whole document so scripts/bench.sh's flat first-match
    // scan can grab them.
    let observe_requests = (config.ka_requests / 4).max(1_000);
    let observe_clients = config.clients.iter().copied().max().unwrap_or(1).min(4);
    let observe_workload = |server_config: ServerConfig, telemetry: Telemetry| {
        let server = Server::with_config(Arc::clone(&store), telemetry, server_config);
        let handle = server.start().expect("starting observe benchmark server");
        let addr = handle.addr();
        let warm = qi_runtime::Histogram::new();
        assert!(get_ok(addr, "/healthz", &warm), "observe server came up");
        let latency = qi_runtime::Histogram::new();
        let per_client = observe_requests.div_ceil(observe_clients);
        let (ok_count, elapsed_ms) = timed(|| {
            std::thread::scope(|scope| {
                let workers: Vec<_> = (0..observe_clients)
                    .map(|_| {
                        let paths = &paths[..];
                        let latency = &latency;
                        scope.spawn(move || {
                            keepalive_client(addr, paths, per_client, config.pipeline, latency)
                        })
                    })
                    .collect();
                workers
                    .into_iter()
                    .map(|w| w.join().unwrap())
                    .sum::<usize>()
            })
        });
        (handle, ok_count, elapsed_ms)
    };
    let off_config = ServerConfig {
        queue_depth: 8192,
        max_requests_per_conn: u64::MAX,
        events_capacity: 0,
        history_windows: 0,
        ..ServerConfig::default()
    };
    let (mut off_handle, off_ok, off_ms) = observe_workload(off_config, Telemetry::new());
    off_handle.shutdown();
    let on_config = ServerConfig {
        queue_depth: 8192,
        max_requests_per_conn: u64::MAX,
        events_capacity: 4096,
        history_interval_ms: 50,
        history_windows: 64,
        ..ServerConfig::default()
    };
    let (mut on_handle, on_ok, on_ms) = observe_workload(on_config, Telemetry::new());
    // While the observed server is still up, smoke the introspection
    // endpoints it paid for: the ring must have closed windows that
    // recorded the load, and the events page must answer.
    let on_addr = on_handle.addr();
    // Windows close on the server's own 50ms cadence, so a fast
    // workload may finish before the first tick — poll until a closed
    // window shows the traffic (each probe also wakes the reactor).
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut history = fetch_body(on_addr, "/metrics/history");
    while !history.contains("\"serve.requests\":") && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
        history = fetch_body(on_addr, "/metrics/history");
    }
    assert!(
        history.contains("\"serve.requests\":"),
        "history windows recorded no traffic: {history}"
    );
    let events_page = fetch_body(on_addr, "/debug/events?limit=1");
    assert!(
        events_page.contains("\"enabled\":true"),
        "recorder not enabled on the observed server: {events_page}"
    );
    on_handle.shutdown();
    let observe_sent = 2 * observe_clients * observe_requests.div_ceil(observe_clients);
    if off_ok + on_ok < observe_sent {
        eprintln!(
            "warning: {} observe-stage requests failed",
            observe_sent - off_ok - on_ok
        );
    }
    let rps_of = |ok: usize, ms: f64| ok as f64 / (ms / 1e3).max(1e-9);
    let observe_off_rps = rps_of(off_ok, off_ms);
    let observe_on_rps = rps_of(on_ok, on_ms);
    let observe_overhead_pct = (observe_off_rps - observe_on_rps) / observe_off_rps * 100.0;

    // Recorder saturation, in process: concurrent emitters through the
    // full `Telemetry::event` path (severity gate, field closure, ring
    // push, bookkeeping counters) into one shared 4096-slot ring.
    const EMITTERS: usize = 4;
    const EVENTS_PER_EMITTER: u64 = 100_000;
    let recorder_telemetry =
        qi_runtime::Telemetry::new().attach_events(qi_runtime::EventRecorder::new(4096));
    let (_, recorder_ms) = timed(|| {
        std::thread::scope(|scope| {
            for worker in 0..EMITTERS {
                let telemetry = &recorder_telemetry;
                scope.spawn(move || {
                    for i in 0..EVENTS_PER_EMITTER {
                        telemetry.event(
                            qi_runtime::Severity::Info,
                            qi_runtime::Category::Ingest,
                            "bench.saturate",
                            || vec![("worker", (worker as u64).into()), ("i", i.into())],
                        );
                    }
                });
            }
        });
    });
    let recorder_events = EMITTERS as u64 * EVENTS_PER_EMITTER;
    let recorder_events_per_sec = recorder_events as f64 / (recorder_ms / 1e3).max(1e-9);

    // Primary close-mode point (first client count); peak points of
    // both modes at the largest client count for the headline
    // keep-alive vs close comparison.
    let primary = &sweep[0];
    let (sent, ok_count, serve_ms) = (primary.sent, primary.ok_count, primary.elapsed_ms);
    let latency = primary.latency.clone();
    let max_clients = config.clients.iter().copied().max().unwrap_or(1);
    let peak_of = |mode: &str| {
        sweep
            .iter()
            .find(|p| p.mode == mode && p.clients == max_clients)
            .expect("sweep covers every mode at every client count")
    };
    let ka_peak = peak_of("keepalive");
    let close_peak = peak_of("close");
    let point_rps = |point: &SweepPoint| point.ok_count as f64 / (point.elapsed_ms / 1e3).max(1e-9);

    let rebuild_median = median(rebuild_runs.clone());
    let load_median = median(load_runs.clone());
    let speedup = rebuild_median / load_median.max(1e-9);
    let rps = ok_count as f64 / (serve_ms / 1e3).max(1e-9);
    let delta_median = median(delta_runs.clone());
    let full_median = median(full_runs.clone());
    let ingest_speedup = full_median / delta_median.max(1e-9);

    let mut doc = Obj::new();
    doc.raw(
        "config",
        Obj::new()
            .u64("iters", config.iters as u64)
            .u64("requests", sent as u64)
            .u64("clients", config.clients[0] as u64)
            .u64("pipeline", config.pipeline as u64)
            .u64("domains", domain_count as u64)
            .finish(),
    );
    doc.raw(
        "snapshot",
        Obj::new()
            .u64("bytes", snapshot_bytes as u64)
            .f64("encode_ms", encode_ms, DECIMALS)
            .f64("rebuild_median_ms", rebuild_median, DECIMALS)
            .raw("rebuild_runs_ms", runs_json(&rebuild_runs))
            .f64("load_median_ms", load_median, DECIMALS)
            .raw("load_runs_ms", runs_json(&load_runs))
            .f64("speedup", speedup, 1)
            .finish(),
    );
    doc.raw(
        "serve",
        Obj::new()
            .u64("requests_ok", ok_count as u64)
            .f64("elapsed_ms", serve_ms, DECIMALS)
            .f64("requests_per_sec", rps, 1)
            .f64(
                "latency_p50_us",
                latency.quantile(0.50) as f64 / 1e3,
                DECIMALS,
            )
            .f64(
                "latency_p99_us",
                latency.quantile(0.99) as f64 / 1e3,
                DECIMALS,
            )
            .finish(),
    );
    // Headline keep-alive vs close comparison at the largest client
    // count, under key names unique in the whole document so
    // `scripts/bench.sh` can grab them with a flat first-match scan.
    doc.raw(
        "serve_keepalive",
        Obj::new()
            .u64("keepalive_clients", ka_peak.clients as u64)
            .u64("keepalive_requests_ok", ka_peak.ok_count as u64)
            .f64("keepalive_requests_per_sec", point_rps(ka_peak), 1)
            .f64(
                "keepalive_p50_us",
                ka_peak.latency.quantile(0.50) as f64 / 1e3,
                DECIMALS,
            )
            .f64(
                "keepalive_p99_us",
                ka_peak.latency.quantile(0.99) as f64 / 1e3,
                DECIMALS,
            )
            .f64("close_requests_per_sec", point_rps(close_peak), 1)
            .f64(
                "keepalive_speedup",
                point_rps(ka_peak) / point_rps(close_peak).max(1e-9),
                1,
            )
            .finish(),
    );
    let mut sweep_arr = Arr::new();
    for point in &sweep {
        sweep_arr.raw(
            Obj::new()
                .str("mode", point.mode)
                .u64("clients", point.clients as u64)
                .u64("requests_ok", point.ok_count as u64)
                .f64("requests_per_sec", point_rps(point), 1)
                .f64(
                    "latency_p50_us",
                    point.latency.quantile(0.50) as f64 / 1e3,
                    DECIMALS,
                )
                .f64(
                    "latency_p99_us",
                    point.latency.quantile(0.99) as f64 / 1e3,
                    DECIMALS,
                )
                .finish(),
        );
    }
    doc.raw("serve_sweep", sweep_arr.finish());
    doc.raw(
        "query_scaled",
        Obj::new()
            .str("name", "query_scaled")
            .f64("median_ms", query_median, DECIMALS)
            .raw("runs_ms", runs_json(&query_runs))
            .u64("queries", QUERY_SET.len() as u64)
            .u64("query_domains", drift_config.domains as u64)
            .u64("query_matches", query_matches)
            .finish(),
    );
    doc.raw(
        "observe_scaled",
        Obj::new()
            .u64("observe_requests", observe_requests as u64)
            .u64("observe_clients", observe_clients as u64)
            .f64("observe_on_rps", observe_on_rps, 1)
            .f64("observe_off_rps", observe_off_rps, 1)
            .f64("observe_overhead_pct", observe_overhead_pct, 1)
            .u64("recorder_events", recorder_events)
            .f64("recorder_events_per_sec", recorder_events_per_sec, 0)
            .finish(),
    );
    doc.raw(
        "ingest",
        Obj::new()
            .f64("delta_median_ms", delta_median, DECIMALS)
            .raw("delta_runs_ms", runs_json(&delta_runs))
            .f64("full_median_ms", full_median, DECIMALS)
            .raw("full_runs_ms", runs_json(&full_runs))
            .f64("ingest_speedup", ingest_speedup, 1)
            .u64("posts", posts as u64)
            .f64(
                "post_p50_us",
                post_latency.quantile(0.50) as f64 / 1e3,
                DECIMALS,
            )
            .f64(
                "post_p99_us",
                post_latency.quantile(0.99) as f64 / 1e3,
                DECIMALS,
            )
            .f64(
                "read_during_ingest_p50_us",
                read_latency.quantile(0.50) as f64 / 1e3,
                DECIMALS,
            )
            .f64(
                "read_during_ingest_p99_us",
                read_latency.quantile(0.99) as f64 / 1e3,
                DECIMALS,
            )
            .u64("server_delta_ingests", counter("serve.ingest.delta"))
            .u64("server_full_ingests", counter("serve.ingest.full"))
            .u64("cache_hits", counter("serve.cache.hits"))
            .u64("cache_misses", counter("serve.cache.misses"))
            .u64("cache_invalidations", counter("serve.cache.invalidations"))
            .finish(),
    );
    let json = doc.finish();

    match &config.out {
        Some(file) => {
            std::fs::write(file, format!("{json}\n")).expect("writing benchmark output");
            eprintln!(
                "cold start: rebuild {rebuild_median:.1} ms, snapshot load {load_median:.1} ms \
                 ({speedup:.1}x); serve {ok_count}/{sent} ok at {rps:.0} req/s \
                 (p50 {:.0} us, p99 {:.0} us); ingest delta {delta_median:.1} ms vs full \
                 {full_median:.1} ms ({ingest_speedup:.1}x) -> {file}",
                latency.quantile(0.50) as f64 / 1e3,
                latency.quantile(0.99) as f64 / 1e3
            );
            eprintln!(
                "keep-alive @{} clients (pipeline {}): {:.0} req/s \
                 (p50 {:.0} us, p99 {:.0} us) vs {:.0} req/s close ({:.1}x)",
                ka_peak.clients,
                config.pipeline,
                point_rps(ka_peak),
                ka_peak.latency.quantile(0.50) as f64 / 1e3,
                ka_peak.latency.quantile(0.99) as f64 / 1e3,
                point_rps(close_peak),
                point_rps(ka_peak) / point_rps(close_peak).max(1e-9),
            );
            eprintln!(
                "query engine: {}-query set over {} drift domains in {query_median:.1} ms \
                 median ({query_matches} matches)",
                QUERY_SET.len(),
                drift_config.domains,
            );
            eprintln!(
                "observability: {observe_on_rps:.0} req/s with recorder+history on vs \
                 {observe_off_rps:.0} req/s off ({observe_overhead_pct:+.1}% overhead); \
                 recorder saturates at {:.1}M events/s",
                recorder_events_per_sec / 1e6
            );
        }
        None => println!("{json}"),
    }
    let failed: usize = sweep.iter().map(|p| p.sent - p.ok_count).sum();
    if failed > 0 {
        eprintln!("warning: {failed} requests failed across the sweep");
        std::process::exit(1);
    }
}
