//! `qi-serve-bench` — snapshot cold-start vs full rebuild, and serve
//! throughput over a real socket.
//!
//! Measures, on the builtin seven-domain corpus:
//!
//! * `full_rebuild` — running the whole pipeline (cluster → merge →
//!   label, all domains) as a server would on a cold start without a
//!   snapshot;
//! * `snapshot_load` — decoding a snapshot file and building the store
//!   from it (the snapshot cold-start path);
//! * `serve` — end-to-end `GET` throughput against a running server,
//!   several concurrent std-only clients.
//!
//! Emits a single-line JSON document (default `BENCH_serve.json`)
//! consumed by `scripts/bench.sh`.
//!
//! ```text
//! qi-serve-bench [--iters N] [--requests N] [--clients N] [--out FILE]
//! ```

use qi_core::NamingPolicy;
use qi_lexicon::Lexicon;
use qi_runtime::json::{Arr, Obj};
use qi_runtime::Telemetry;
use qi_serve::{Server, ServerConfig, Snapshot, Store};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

/// Timing medians carry three fraction digits, rates carry one.
const DECIMALS: usize = 3;

struct Config {
    iters: usize,
    requests: usize,
    clients: usize,
    out: Option<String>,
}

fn parse_args() -> Result<Config, String> {
    let mut config = Config {
        iters: 5,
        requests: 200,
        clients: 4,
        out: Some("BENCH_serve.json".to_string()),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut number = |name: &str| -> Result<usize, String> {
            iter.next()
                .ok_or(format!("{name} needs a number"))?
                .parse()
                .map_err(|e| format!("{name}: {e}"))
        };
        match arg.as_str() {
            "--iters" => config.iters = number("--iters")?.max(1),
            "--requests" => config.requests = number("--requests")?.max(1),
            "--clients" => config.clients = number("--clients")?.max(1),
            "--out" => {
                config.out = Some(
                    iter.next()
                        .ok_or("--out needs a file argument")?
                        .to_string(),
                )
            }
            "--stdout" => config.out = None,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(config)
}

fn median(mut runs: Vec<f64>) -> f64 {
    runs.sort_by(|a, b| a.total_cmp(b));
    runs[runs.len() / 2]
}

fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed().as_secs_f64() * 1e3)
}

fn runs_json(runs: &[f64]) -> String {
    let mut arr = Arr::new();
    for &ms in runs {
        arr.raw(qi_runtime::json::number(ms, DECIMALS));
    }
    arr.finish()
}

/// One raw `GET` against the server; returns true on a 200. Records the
/// connect-to-last-byte latency into `latency` (nanoseconds).
fn get_ok(addr: std::net::SocketAddr, path: &str, latency: &qi_runtime::Histogram) -> bool {
    let start = Instant::now();
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return false;
    };
    let request = format!("GET {path} HTTP/1.1\r\nhost: bench\r\nconnection: close\r\n\r\n");
    if stream.write_all(request.as_bytes()).is_err() {
        return false;
    }
    let mut response = Vec::new();
    if stream.read_to_end(&mut response).is_err() {
        return false;
    }
    latency.record(start.elapsed().as_nanos() as u64);
    response.starts_with(b"HTTP/1.1 200")
}

fn main() {
    let config = match parse_args() {
        Ok(config) => config,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    };
    let lexicon = Lexicon::builtin();
    let policy = NamingPolicy::default();
    let telemetry = Telemetry::off();

    // Cold start without a snapshot: the full pipeline over all domains.
    let mut rebuild_runs = Vec::new();
    let mut artifacts = None;
    for _ in 0..config.iters {
        let (built, ms) = timed(|| qi_serve::build_corpus_artifacts(&lexicon, policy, &telemetry));
        rebuild_runs.push(ms);
        artifacts = Some(built);
    }
    let artifacts = artifacts.expect("at least one rebuild iteration");
    let domain_count = artifacts.len();

    // Snapshot the artifacts once, then time the snapshot cold start.
    let snapshot = Snapshot {
        policy,
        domains: artifacts,
    };
    let (bytes, encode_ms) = timed(|| snapshot.to_bytes());
    let snapshot_bytes = bytes.len();
    let path = std::env::temp_dir().join(format!("qi-serve-bench-{}.snap", std::process::id()));
    std::fs::write(&path, &bytes).expect("writing benchmark snapshot");
    let mut load_runs = Vec::new();
    let mut store = None;
    for _ in 0..config.iters {
        // The lexicon is rebuilt outside the timed section: both cold
        // starts need one, so it cancels out of the comparison.
        let iteration_lexicon = Lexicon::builtin();
        let iteration_telemetry = telemetry.clone();
        let path = &path;
        let (loaded, ms) = timed(move || {
            let snapshot = qi_serve::load_snapshot(path).expect("loading benchmark snapshot");
            Store::from_snapshot(snapshot, iteration_lexicon, iteration_telemetry)
        });
        load_runs.push(ms);
        store = Some(loaded);
    }
    let _ = std::fs::remove_file(&path);
    let store = Arc::new(store.expect("at least one load iteration"));

    // Serve throughput: concurrent clients hammering read endpoints.
    let server = Server::with_config(
        Arc::clone(&store),
        telemetry.clone(),
        ServerConfig::default(),
    );
    let mut handle = server.start().expect("starting benchmark server");
    let addr = handle.addr();
    let paths = [
        "/healthz",
        "/domains",
        "/domains/auto/labels",
        "/domains/auto/tree",
    ];
    let warmup = qi_runtime::Histogram::new();
    assert!(get_ok(addr, "/healthz", &warmup), "server did not come up");
    let latency = qi_runtime::Histogram::new();
    let per_client = config.requests.div_ceil(config.clients);
    let (ok_count, serve_ms) = timed(|| {
        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..config.clients)
                .map(|c| {
                    let paths = &paths;
                    let latency = &latency;
                    scope.spawn(move || {
                        (0..per_client)
                            .filter(|i| get_ok(addr, paths[(c + i) % paths.len()], latency))
                            .count()
                    })
                })
                .collect();
            workers
                .into_iter()
                .map(|w| w.join().unwrap())
                .sum::<usize>()
        })
    });
    handle.shutdown();
    let sent = per_client * config.clients;
    let latency = latency.data();

    let rebuild_median = median(rebuild_runs.clone());
    let load_median = median(load_runs.clone());
    let speedup = rebuild_median / load_median.max(1e-9);
    let rps = ok_count as f64 / (serve_ms / 1e3).max(1e-9);

    let mut doc = Obj::new();
    doc.raw(
        "config",
        Obj::new()
            .u64("iters", config.iters as u64)
            .u64("requests", sent as u64)
            .u64("clients", config.clients as u64)
            .u64("domains", domain_count as u64)
            .finish(),
    );
    doc.raw(
        "snapshot",
        Obj::new()
            .u64("bytes", snapshot_bytes as u64)
            .f64("encode_ms", encode_ms, DECIMALS)
            .f64("rebuild_median_ms", rebuild_median, DECIMALS)
            .raw("rebuild_runs_ms", runs_json(&rebuild_runs))
            .f64("load_median_ms", load_median, DECIMALS)
            .raw("load_runs_ms", runs_json(&load_runs))
            .f64("speedup", speedup, 1)
            .finish(),
    );
    doc.raw(
        "serve",
        Obj::new()
            .u64("requests_ok", ok_count as u64)
            .f64("elapsed_ms", serve_ms, DECIMALS)
            .f64("requests_per_sec", rps, 1)
            .f64(
                "latency_p50_us",
                latency.quantile(0.50) as f64 / 1e3,
                DECIMALS,
            )
            .f64(
                "latency_p99_us",
                latency.quantile(0.99) as f64 / 1e3,
                DECIMALS,
            )
            .finish(),
    );
    let json = doc.finish();

    match &config.out {
        Some(file) => {
            std::fs::write(file, format!("{json}\n")).expect("writing benchmark output");
            eprintln!(
                "cold start: rebuild {rebuild_median:.1} ms, snapshot load {load_median:.1} ms \
                 ({speedup:.1}x); serve {ok_count}/{sent} ok at {rps:.0} req/s \
                 (p50 {:.0} us, p99 {:.0} us) -> {file}",
                latency.quantile(0.50) as f64 / 1e3,
                latency.quantile(0.99) as f64 / 1e3
            );
        }
        None => println!("{json}"),
    }
    if ok_count != sent {
        eprintln!("warning: {} requests failed", sent - ok_count);
        std::process::exit(1);
    }
}
