//! Benchmark crate — all content lives in `benches/`:
//!
//! | bench | regenerates |
//! |---|---|
//! | `table6` | Table 6 (all columns, all seven domains) |
//! | `figure10` | Figure 10 (LI1–LI7 involvement ratios) |
//! | `paper_examples` | Tables 2–4 worked examples + Definition 1 micro-benchmarks |
//! | `ablation` | policy / consistency-level / instance-rule ablations |
//! | `scale` | synthetic-domain scalability sweeps |
//!
//! Run everything with `cargo bench -p qi-bench`.
