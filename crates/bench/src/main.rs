//! Self-contained benchmark harness for the labeling pipeline.
//!
//! Times each pipeline stage over the seven builtin domains on
//! `std::time::Instant` (median of `--iters` runs after `--warmup`
//! discards) and reports the runtime caches' hit rates, writing one JSON
//! document (default `BENCH_core.json`) plus a human-readable summary on
//! stdout.
//!
//! Stages:
//! * `normalize` — display-normalize every distinct source field label
//!   (tokenization, stopwording, Porter stemming, WordNet base forms);
//! * `cluster`   — run the label-similarity matcher against the ground
//!   truth in every domain;
//! * `cluster_scaled_10x` / `cluster_scaled_100x` — the indexed matcher
//!   over each domain's corpus replicated 10× / 100× with disjoint
//!   replica vocabularies ([`qi_datasets::replicate_schemas`]), the
//!   regime where candidate generation scales linearly but the naive
//!   pair space scales quadratically; `--verify-naive` additionally
//!   asserts the indexed 10× mappings equal the naive reference engine;
//! * `merge`     — 1:m expansion + structural merge per domain;
//! * `label`     — the three-phase naming algorithm per domain (fanned
//!   out over `--threads` workers);
//! * `evaluate`  — Table 6 metrics + the simulated acceptance panel.
//!
//! `--no-cache --threads 1` is the baseline configuration: memo-caches
//! off, one worker everywhere — the speedup quoted for the cached
//! parallel configuration is measured against exactly that run.

use qi_core::{LabeledInterface, Labeler, NamingPolicy};
use qi_datasets::{replicate_schemas, PreparedDomain};
use qi_eval::matcher_eval::evaluate_matcher;
use qi_eval::metrics::{fields_accuracy, integrated_shape, internal_accuracy};
use qi_eval::Panel;
use qi_lexicon::Lexicon;
use qi_mapping::matcher::{match_by_labels_with, MatcherConfig};
use qi_runtime::{json, parallel_map, resolve_threads, CacheStats};
use qi_text::LabelText;
use std::time::Instant;

struct Config {
    threads: usize,
    cache: bool,
    warmup: usize,
    iters: usize,
    verify_naive: bool,
    telemetry: bool,
    trace_out: Option<String>,
    out: String,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            threads: 0,
            cache: true,
            warmup: 1,
            iters: 5,
            verify_naive: false,
            telemetry: false,
            trace_out: None,
            out: "BENCH_core.json".to_string(),
        }
    }
}

fn usage_error(message: &str) -> ! {
    eprintln!("qi-bench: {message}");
    eprintln!(
        "usage: qi-bench [--no-cache] [--threads N] [--warmup W] [--iters K] \
         [--verify-naive] [--telemetry] [--trace-out PATH] [--out PATH]"
    );
    std::process::exit(2);
}

fn parse_args() -> Config {
    let mut config = Config::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value_for = |flag: &str| {
            args.next()
                .unwrap_or_else(|| usage_error(&format!("{flag} requires a value")))
        };
        let int_for = |flag: &str, value: String| {
            value.parse::<usize>().unwrap_or_else(|_| {
                usage_error(&format!("{flag} expects an integer, got {value:?}"))
            })
        };
        match arg.as_str() {
            "--no-cache" => config.cache = false,
            "--threads" => config.threads = int_for("--threads", value_for("--threads")),
            "--warmup" => config.warmup = int_for("--warmup", value_for("--warmup")),
            "--iters" => config.iters = int_for("--iters", value_for("--iters")).max(1),
            "--verify-naive" => config.verify_naive = true,
            "--telemetry" => config.telemetry = true,
            "--trace-out" => config.trace_out = Some(value_for("--trace-out")),
            "--out" => config.out = value_for("--out"),
            "--help" | "-h" => {
                println!(
                    "qi-bench [--no-cache] [--threads N] [--warmup W] [--iters K] \
                     [--verify-naive] [--telemetry] [--trace-out PATH] [--out PATH]"
                );
                std::process::exit(0);
            }
            other => usage_error(&format!("unknown flag {other}")),
        }
    }
    config
}

/// Run `f` `warmup + iters` times; return the last `iters` durations in
/// milliseconds.
fn time_stage(warmup: usize, iters: usize, mut f: impl FnMut()) -> Vec<f64> {
    for _ in 0..warmup {
        f();
    }
    (0..iters)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect()
}

fn median(runs: &[f64]) -> f64 {
    let mut sorted = runs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

/// Benchmark documents carry three fraction digits.
const DECIMALS: usize = 3;

fn number(value: f64) -> String {
    json::number(value, DECIMALS)
}

fn stage_json(name: &str, runs: &[f64]) -> String {
    let mut list = json::Arr::new();
    for &run in runs {
        list.raw(number(run));
    }
    json::Obj::new()
        .str("name", name)
        .f64("median_ms", median(runs), DECIMALS)
        .raw("runs_ms", list.finish())
        .finish()
}

fn cache_json(stats: &CacheStats) -> String {
    json::Obj::new()
        .u64("hits", stats.hits)
        .u64("misses", stats.misses)
        .u64("entries", stats.entries as u64)
        .f64("hit_rate", stats.hit_rate(), DECIMALS)
        .finish()
}

fn main() {
    let config = parse_args();
    let lexicon = Lexicon::builtin();
    lexicon.set_cache_enabled(config.cache);
    qi_text::porter::set_stem_cache_enabled(config.cache);
    // With --telemetry the *timed* label stage carries a live registry,
    // so the reported medians measure the instrumented pipeline — the
    // off-vs-on comparison in scripts/check.sh is honest. Off is the
    // default: one pointer check per phase boundary.
    let telemetry = if config.telemetry || config.trace_out.is_some() {
        qi_runtime::Telemetry::new()
    } else {
        qi_runtime::Telemetry::off()
    };
    let domains = qi_datasets::all_domains();
    let outer = resolve_threads(config.threads).min(domains.len());
    let inner = if outer > 1 { 1 } else { config.threads };
    let total_start = Instant::now();

    // ---- normalize ------------------------------------------------------
    let mut labels: Vec<String> = Vec::new();
    for domain in &domains {
        for schema in &domain.schemas {
            for id in schema.preorder() {
                if let Some(label) = &schema.node(id).label {
                    labels.push(label.clone());
                }
            }
        }
    }
    let normalize = time_stage(config.warmup, config.iters, || {
        for label in &labels {
            let text = LabelText::new(label, &lexicon);
            std::hint::black_box(&text);
        }
    });

    // ---- cluster --------------------------------------------------------
    let cluster = time_stage(config.warmup, config.iters, || {
        for domain in &domains {
            std::hint::black_box(evaluate_matcher(domain, &lexicon));
        }
    });

    // ---- cluster_scaled -------------------------------------------------
    // Replicated corpora with disjoint replica vocabularies: candidate
    // generation sees k× the postings, while a naive matcher would see
    // k²× the pair space. Corpus construction is outside the timed
    // region. The 100× stage runs fewer iterations — it exists to show
    // the scaling exponent, not to need five samples.
    let scaled_10: Vec<_> = domains
        .iter()
        .map(|d| replicate_schemas(&d.schemas, 10))
        .collect();
    let scaled_100: Vec<_> = domains
        .iter()
        .map(|d| replicate_schemas(&d.schemas, 100))
        .collect();
    let matcher_config = MatcherConfig {
        threads: config.threads,
        ..MatcherConfig::default()
    };
    let cluster_scaled_10x = time_stage(config.warmup, config.iters, || {
        for corpus in &scaled_10 {
            std::hint::black_box(match_by_labels_with(corpus, &lexicon, matcher_config));
        }
    });
    let cluster_scaled_100x = time_stage(config.warmup.min(1), config.iters.min(3), || {
        for corpus in &scaled_100 {
            std::hint::black_box(match_by_labels_with(corpus, &lexicon, matcher_config));
        }
    });
    if config.verify_naive {
        let naive_config = MatcherConfig {
            naive: true,
            ..matcher_config
        };
        for (domain, corpus) in domains.iter().zip(&scaled_10) {
            let indexed = match_by_labels_with(corpus, &lexicon, matcher_config);
            let naive = match_by_labels_with(corpus, &lexicon, naive_config);
            if indexed != naive {
                eprintln!(
                    "qi-bench: indexed/naive mapping mismatch on 10x {}",
                    domain.name
                );
                std::process::exit(1);
            }
        }
        println!("qi-bench: verify-naive OK (indexed == naive on all 10x corpora)");
    }

    // ---- merge ----------------------------------------------------------
    let merge = time_stage(config.warmup, config.iters, || {
        for domain in &domains {
            std::hint::black_box(domain.prepare());
        }
    });
    let prepared: Vec<PreparedDomain> = domains.iter().map(|d| d.prepare()).collect();

    // ---- label ----------------------------------------------------------
    let mut labeled: Vec<LabeledInterface> = Vec::new();
    let label = time_stage(config.warmup, config.iters, || {
        labeled = parallel_map(&prepared, config.threads, |_, p| {
            Labeler::new(&lexicon, NamingPolicy::default())
                .with_threads(inner)
                .with_cache(config.cache)
                .with_telemetry(telemetry.clone())
                .label(&p.schemas, &p.mapping, &p.integrated)
        });
    });
    let naming_cache = labeled.iter().fold(CacheStats::default(), |acc, l| {
        acc.merge(&l.report.naming_cache)
    });

    // ---- evaluate -------------------------------------------------------
    let panel = Panel::default();
    let mut fld_acc_sum = 0.0;
    let evaluate = time_stage(config.warmup, config.iters, || {
        fld_acc_sum = 0.0;
        for (p, l) in prepared.iter().zip(&labeled) {
            let (ha, ha_star) = panel.survey(&p.name, l, &p.schemas, &p.mapping);
            std::hint::black_box((integrated_shape(l), internal_accuracy(l), ha, ha_star));
            fld_acc_sum += fields_accuracy(l);
        }
    });

    // ---- metrics section (untimed) --------------------------------------
    // Matcher counters come from a dedicated probe pass: the timed
    // cluster stage goes through `evaluate_matcher`, which has no
    // telemetry seam, and the probe costs one extra matcher run.
    let metrics_json = if telemetry.is_enabled() {
        for domain in &domains {
            let span = telemetry.timed("bench.cluster");
            let (_, stats) =
                qi_mapping::match_by_labels_stats(&domain.schemas, &lexicon, matcher_config);
            drop(span);
            stats.record(&telemetry);
        }
        telemetry.record_cache("stemmer", &qi_text::porter::stem_cache_stats());
        for (name, stats) in lexicon.named_cache_stats() {
            telemetry.record_cache(name, &stats);
        }
        telemetry.snapshot().to_json()
    } else {
        "null".to_string()
    };
    if let Some(path) = &config.trace_out {
        let trace = qi_runtime::chrome_trace(&telemetry.snapshot());
        if let Err(e) = std::fs::write(path, format!("{trace}\n")) {
            eprintln!("qi-bench: writing {path}: {e}");
            std::process::exit(1);
        }
        println!("qi-bench: wrote chrome trace to {path}");
    }

    let total_ms = total_start.elapsed().as_secs_f64() * 1e3;
    let stages = [
        ("normalize", &normalize),
        ("cluster", &cluster),
        ("cluster_scaled_10x", &cluster_scaled_10x),
        ("cluster_scaled_100x", &cluster_scaled_100x),
        ("merge", &merge),
        ("label", &label),
        ("evaluate", &evaluate),
    ];
    let stage_list: Vec<String> = stages
        .iter()
        .map(|(name, runs)| stage_json(name, runs))
        .collect();
    let json = format!(
        concat!(
            "{{\"config\":{{\"threads\":{},\"resolved_workers\":{},\"cache\":{},",
            "\"warmup\":{},\"iters\":{}}},",
            "\"stages\":[{}],",
            "\"caches\":{{\"stemmer\":{},\"lexicon\":{},\"naming_ctx\":{}}},",
            "\"corpus\":{{\"domains\":{},\"mean_fld_acc\":{}}},",
            "\"metrics\":{},",
            "\"total_ms\":{}}}"
        ),
        config.threads,
        outer,
        config.cache,
        config.warmup,
        config.iters,
        stage_list.join(","),
        cache_json(&qi_text::porter::stem_cache_stats()),
        cache_json(&lexicon.cache_stats()),
        cache_json(&naming_cache),
        domains.len(),
        number(fld_acc_sum / domains.len() as f64),
        metrics_json,
        number(total_ms),
    );
    if let Err(e) = std::fs::write(&config.out, &json) {
        eprintln!("qi-bench: writing {}: {e}", config.out);
        std::process::exit(1);
    }

    println!(
        "qi-bench: {} domains, threads={} (workers={}), cache={}, telemetry={}",
        domains.len(),
        config.threads,
        outer,
        config.cache,
        config.telemetry
    );
    for (name, runs) in &stages {
        println!(
            "  {name:<20} {:>9.3} ms (median of {})",
            median(runs),
            runs.len()
        );
    }
    println!(
        "  caches: stemmer {:.1}%  lexicon {:.1}%  naming-ctx {:.1}% hit rate",
        qi_text::porter::stem_cache_stats().hit_rate() * 100.0,
        lexicon.cache_stats().hit_rate() * 100.0,
        naming_cache.hit_rate() * 100.0
    );
    println!("  wrote {}", config.out);
}
