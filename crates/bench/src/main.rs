//! Self-contained benchmark harness for the labeling pipeline.
//!
//! Times each pipeline stage over the seven builtin domains on
//! `std::time::Instant` (median of `--iters` runs after `--warmup`
//! discards) and reports the runtime caches' hit rates, writing one JSON
//! document (default `BENCH_core.json`) plus a human-readable summary on
//! stdout.
//!
//! Stages:
//! * `normalize` — display-normalize every distinct source field label
//!   (tokenization, stopwording, Porter stemming, WordNet base forms);
//! * `cluster`   — run the label-similarity matcher against the ground
//!   truth in every domain;
//! * `cluster_scaled_10x` / `cluster_scaled_100x` — the indexed matcher
//!   over each domain's corpus replicated 10× / 100× with disjoint
//!   replica vocabularies ([`qi_datasets::replicate_schemas`]), the
//!   regime where candidate generation scales linearly but the naive
//!   pair space scales quadratically; `--verify-naive` additionally
//!   asserts the indexed 10× mappings equal the naive reference engine;
//! * `merge`     — 1:m expansion + structural merge per domain;
//! * `label`     — the three-phase naming algorithm per domain (fanned
//!   out over `--threads` workers);
//! * `evaluate`  — Table 6 metrics + the simulated acceptance panel.
//!
//! `--no-cache --threads 1` is the baseline configuration: memo-caches
//! off, one worker everywhere — the speedup quoted for the cached
//! parallel configuration is measured against exactly that run.

use qi_core::{LabeledInterface, Labeler, NamingPolicy};
use qi_datasets::{replicate_schemas, DriftConfig, DriftReport, PreparedDomain};
use qi_eval::matcher_eval::evaluate_matcher;
use qi_eval::metrics::{fields_accuracy, integrated_shape, internal_accuracy};
use qi_eval::Panel;
use qi_lexicon::Lexicon;
use qi_mapping::matcher::{match_by_labels_with, MatchStats, MatcherConfig};
use qi_runtime::{json, parallel_map, resolve_threads, CacheStats};
use qi_text::LabelText;
use std::time::Instant;

struct Config {
    threads: usize,
    cache: bool,
    warmup: usize,
    iters: usize,
    scale: usize,
    verify_naive: bool,
    telemetry: bool,
    observe: bool,
    trace_out: Option<String>,
    out: String,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            threads: 0,
            cache: true,
            warmup: 1,
            iters: 5,
            scale: 1000,
            verify_naive: false,
            telemetry: false,
            observe: false,
            trace_out: None,
            out: "BENCH_core.json".to_string(),
        }
    }
}

fn usage_error(message: &str) -> ! {
    eprintln!("qi-bench: {message}");
    eprintln!(
        "usage: qi-bench [--no-cache] [--threads N] [--warmup W] [--iters K] \
         [--scale N] [--verify-naive] [--telemetry] [--observe] [--trace-out PATH] [--out PATH]"
    );
    std::process::exit(2);
}

fn parse_args() -> Config {
    let mut config = Config::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value_for = |flag: &str| {
            args.next()
                .unwrap_or_else(|| usage_error(&format!("{flag} requires a value")))
        };
        let int_for = |flag: &str, value: String| {
            value.parse::<usize>().unwrap_or_else(|_| {
                usage_error(&format!("{flag} expects an integer, got {value:?}"))
            })
        };
        match arg.as_str() {
            "--no-cache" => config.cache = false,
            "--threads" => config.threads = int_for("--threads", value_for("--threads")),
            "--warmup" => config.warmup = int_for("--warmup", value_for("--warmup")),
            "--iters" => config.iters = int_for("--iters", value_for("--iters")).max(1),
            "--scale" => config.scale = int_for("--scale", value_for("--scale")),
            "--verify-naive" => config.verify_naive = true,
            "--telemetry" => config.telemetry = true,
            "--observe" => config.observe = true,
            "--trace-out" => config.trace_out = Some(value_for("--trace-out")),
            "--out" => config.out = value_for("--out"),
            "--help" | "-h" => {
                println!(
                    "qi-bench [--no-cache] [--threads N] [--warmup W] [--iters K] \
                     [--scale N] [--verify-naive] [--telemetry] [--observe] [--trace-out PATH] [--out PATH]"
                );
                std::process::exit(0);
            }
            other => usage_error(&format!("unknown flag {other}")),
        }
    }
    config
}

/// Run `f` `warmup + iters` times; return the last `iters` durations in
/// milliseconds.
fn time_stage(warmup: usize, iters: usize, mut f: impl FnMut()) -> Vec<f64> {
    for _ in 0..warmup {
        f();
    }
    (0..iters)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect()
}

fn median(runs: &[f64]) -> f64 {
    let mut sorted = runs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

/// Benchmark documents carry three fraction digits.
const DECIMALS: usize = 3;

fn number(value: f64) -> String {
    json::number(value, DECIMALS)
}

fn stage_json(name: &str, runs: &[f64]) -> String {
    let mut list = json::Arr::new();
    for &run in runs {
        list.raw(number(run));
    }
    json::Obj::new()
        .str("name", name)
        .f64("median_ms", median(runs), DECIMALS)
        .raw("runs_ms", list.finish())
        .finish()
}

fn cache_json(stats: &CacheStats) -> String {
    json::Obj::new()
        .u64("hits", stats.hits)
        .u64("misses", stats.misses)
        .u64("entries", stats.entries as u64)
        .f64("hit_rate", stats.hit_rate(), DECIMALS)
        .finish()
}

fn main() {
    let config = parse_args();
    let lexicon = Lexicon::builtin();
    lexicon.set_cache_enabled(config.cache);
    qi_text::porter::set_stem_cache_enabled(config.cache);
    // With --telemetry the *timed* label stage carries a live registry,
    // so the reported medians measure the instrumented pipeline — the
    // off-vs-on comparison in scripts/check.sh is honest. Off is the
    // default: one pointer check per phase boundary.
    // --observe layers the full observability plane on top of the live
    // registry: an attached flight recorder plus a 100ms windowed
    // time-series ring ticked from inside the timed stage loops, so the
    // check.sh overhead guard measures the instrumented hot path, not
    // an idle recorder.
    let telemetry = if config.observe {
        qi_runtime::Telemetry::new().attach_events(qi_runtime::EventRecorder::new(4096))
    } else if config.telemetry || config.trace_out.is_some() {
        qi_runtime::Telemetry::new()
    } else {
        qi_runtime::Telemetry::off()
    };
    let series = if config.observe {
        qi_runtime::TimeSeries::new(100_000_000, 64)
    } else {
        qi_runtime::TimeSeries::off()
    };
    let domains = qi_datasets::all_domains();
    let outer = resolve_threads(config.threads).min(domains.len());
    let inner = if outer > 1 { 1 } else { config.threads };
    let total_start = Instant::now();

    // ---- normalize ------------------------------------------------------
    let mut labels: Vec<String> = Vec::new();
    for domain in &domains {
        for schema in &domain.schemas {
            for id in schema.preorder() {
                if let Some(label) = &schema.node(id).label {
                    labels.push(label.clone());
                }
            }
        }
    }
    let normalize = time_stage(config.warmup, config.iters, || {
        for label in &labels {
            let text = LabelText::new(label, &lexicon);
            std::hint::black_box(&text);
        }
    });

    // ---- cluster --------------------------------------------------------
    let cluster = time_stage(config.warmup, config.iters, || {
        for domain in &domains {
            std::hint::black_box(evaluate_matcher(domain, &lexicon));
            // Pointer checks when the recorder/series are off; under
            // --observe this puts one event emit and one interval probe
            // per domain inside the timed region.
            telemetry.event(
                qi_runtime::Severity::Debug,
                qi_runtime::Category::Ingest,
                "bench.cluster.domain",
                || vec![("domain", domain.name.as_str().into())],
            );
            series.maybe_tick(&telemetry);
        }
    });

    // ---- cluster_scaled -------------------------------------------------
    // Replicated corpora with disjoint replica vocabularies: candidate
    // generation sees k× the postings, while a naive matcher would see
    // k²× the pair space. Corpus construction is outside the timed
    // region. The 100× stage runs fewer iterations — it exists to show
    // the scaling exponent, not to need five samples.
    let scaled_10: Vec<_> = domains
        .iter()
        .map(|d| replicate_schemas(&d.schemas, 10))
        .collect();
    let scaled_100: Vec<_> = domains
        .iter()
        .map(|d| replicate_schemas(&d.schemas, 100))
        .collect();
    let matcher_config = MatcherConfig {
        threads: config.threads,
        ..MatcherConfig::default()
    };
    let cluster_scaled_10x = time_stage(config.warmup, config.iters, || {
        for corpus in &scaled_10 {
            std::hint::black_box(match_by_labels_with(corpus, &lexicon, matcher_config));
        }
    });
    let cluster_scaled_100x = time_stage(config.warmup.min(1), config.iters.min(3), || {
        for corpus in &scaled_100 {
            std::hint::black_box(match_by_labels_with(corpus, &lexicon, matcher_config));
        }
    });
    if config.verify_naive {
        let naive_config = MatcherConfig {
            naive: true,
            ..matcher_config
        };
        for (domain, corpus) in domains.iter().zip(&scaled_10) {
            let indexed = match_by_labels_with(corpus, &lexicon, matcher_config);
            let naive = match_by_labels_with(corpus, &lexicon, naive_config);
            if indexed != naive {
                eprintln!(
                    "qi-bench: indexed/naive mapping mismatch on 10x {}",
                    domain.name
                );
                std::process::exit(1);
            }
        }
        println!("qi-bench: verify-naive OK (indexed == naive on all 10x corpora)");
    }

    drop(scaled_10);
    drop(scaled_100);

    // ---- merge ----------------------------------------------------------
    let merge = time_stage(config.warmup, config.iters, || {
        for domain in &domains {
            std::hint::black_box(domain.prepare());
        }
    });
    let prepared: Vec<PreparedDomain> = domains.iter().map(|d| d.prepare()).collect();

    // ---- label ----------------------------------------------------------
    let mut labeled: Vec<LabeledInterface> = Vec::new();
    let label = time_stage(config.warmup, config.iters, || {
        labeled = parallel_map(&prepared, config.threads, |_, p| {
            let out = Labeler::new(&lexicon, NamingPolicy::default())
                .with_threads(inner)
                .with_cache(config.cache)
                .with_telemetry(telemetry.clone())
                .label(&p.schemas, &p.mapping, &p.integrated);
            telemetry.event(
                qi_runtime::Severity::Debug,
                qi_runtime::Category::Ingest,
                "bench.label.domain",
                || {
                    vec![
                        ("domain", p.name.as_str().into()),
                        ("fields", (out.tree.leaves().count() as u64).into()),
                    ]
                },
            );
            out
        });
        series.maybe_tick(&telemetry);
    });
    let naming_cache = labeled.iter().fold(CacheStats::default(), |acc, l| {
        acc.merge(&l.report.naming_cache)
    });

    // ---- evaluate -------------------------------------------------------
    let panel = Panel::default();
    let mut fld_acc_sum = 0.0;
    let evaluate = time_stage(config.warmup, config.iters, || {
        fld_acc_sum = 0.0;
        for (p, l) in prepared.iter().zip(&labeled) {
            let (ha, ha_star) = panel.survey(&p.name, l, &p.schemas, &p.mapping);
            std::hint::black_box((integrated_shape(l), internal_accuracy(l), ha, ha_star));
            fld_acc_sum += fields_accuracy(l);
        }
    });

    // ---- full-scale stages: cloned baselines + drift corpus -------------
    // `--scale 0` skips these; the default `--scale 1000` is the 1000×
    // regime. Three scaled measurements run in sequence, each corpus
    // built, used and dropped before the next so peak RSS reflects one
    // corpus, not three:
    //
    // * `cluster_scaled_1000x` — renamed replicas (`replicate_schemas`),
    //   the matcher *throughput* baseline: disjoint vocabularies keep
    //   indexed candidate generation linear in the replica count.
    // * the cloned cache ceiling — *verbatim* clones, the cache
    //   baseline: naive corpus scaling repeats every surface, so
    //   per-occurrence lexicon lookups hit on all but the first copy.
    //   (Renamed replicas are useless here: renaming every token makes
    //   the vocabulary grow linearly, which *understates* how flattering
    //   cloned corpora are to caches.)
    // * `drift_scaled` + `label_scaled` — the drift corpus (per-domain
    //   sharded fuzzy matching, then the full per-domain pipeline:
    //   matcher clusters → merge → label → eval, nothing held beyond
    //   one domain's artifacts per worker).
    //
    // The cache comparison uses the morphology (`base_form`) cache
    // only: it is probed once per token occurrence, so its hit rate
    // tracks vocabulary variety. The resolve/synonymy caches are probed
    // per scored pair and sit near 1.0 on any corpus shape. Both sides
    // are measured from a reset cache over the same number of matcher
    // passes, so warm-up dilution cancels in the comparison.
    let mut scaled_stages: Vec<(String, Vec<f64>)> = Vec::new();
    let mut drift_json = "null".to_string();
    if config.scale > 0 {
        let scaled_full: Vec<_> = domains
            .iter()
            .map(|d| replicate_schemas(&d.schemas, config.scale))
            .collect();
        let runs = time_stage(config.warmup.min(1), config.iters.min(2), || {
            for corpus in &scaled_full {
                std::hint::black_box(match_by_labels_with(corpus, &lexicon, matcher_config));
            }
        });
        scaled_stages.push((format!("cluster_scaled_{}x", config.scale), runs));
        drop(scaled_full);

        // The cloned cache ceiling: 20 verbatim copies of each domain,
        // matched once per pass. Untimed — this probe exists only to
        // measure the morphology hit rate naive cloning produces.
        const CEILING_CLONES: usize = 20;
        let passes = config.warmup.min(1) + config.iters.clamp(1, 2);
        let verbatim: Vec<Vec<_>> = domains
            .iter()
            .map(|d| {
                let mut corpus = Vec::with_capacity(d.schemas.len() * CEILING_CLONES);
                for _ in 0..CEILING_CLONES {
                    corpus.extend_from_slice(&d.schemas);
                }
                corpus
            })
            .collect();
        lexicon.reset_caches();
        let cloned_cache_before = lexicon.morph_cache_stats();
        for _ in 0..passes {
            for corpus in &verbatim {
                std::hint::black_box(match_by_labels_with(corpus, &lexicon, matcher_config));
            }
        }
        let cloned_cache = lexicon
            .morph_cache_stats()
            .delta_since(&cloned_cache_before);
        drop(verbatim);

        // The drift corpus: `domains × scale` independent domains of
        // realistic label drift (seeded; see qi_datasets::drift).
        let drift_config = DriftConfig {
            domains: domains.len() * config.scale,
            ..DriftConfig::default()
        };
        let drift_domains = qi_datasets::generate_drift_corpus(&drift_config, &lexicon);
        let drift_matcher = MatcherConfig {
            fuzzy: true,
            threads: inner,
            ..MatcherConfig::default()
        };
        let mut drift_stats = MatchStats::default();
        lexicon.reset_caches();
        let drift_cache_before = lexicon.morph_cache_stats();
        let runs = time_stage(config.warmup.min(1), config.iters.min(2), || {
            let per_domain = parallel_map(&drift_domains, config.threads, |_, d| {
                qi_mapping::match_by_labels_stats(&d.schemas, &lexicon, drift_matcher).1
            });
            drift_stats = MatchStats::default();
            for stats in &per_domain {
                drift_stats.absorb(stats);
            }
        });
        let drift_cache = lexicon.morph_cache_stats().delta_since(&drift_cache_before);
        scaled_stages.push(("drift_scaled".to_string(), runs));

        let mut drift_fields = 0u64;
        let mut drift_acc_sum = 0.0;
        let runs = time_stage(config.warmup.min(1), config.iters.min(1), || {
            let per_domain = parallel_map(&drift_domains, config.threads, |_, d| {
                let mapping = match_by_labels_with(&d.schemas, &lexicon, drift_matcher);
                let integrated = qi_merge::merge(&d.schemas, &mapping);
                let labeled = Labeler::new(&lexicon, NamingPolicy::default())
                    .with_threads(inner)
                    .with_cache(config.cache)
                    .label(&d.schemas, &mapping, &integrated);
                (
                    labeled.tree.leaves().count() as u64,
                    fields_accuracy(&labeled),
                )
            });
            drift_fields = per_domain.iter().map(|(f, _)| f).sum();
            drift_acc_sum = per_domain.iter().map(|(_, a)| a).sum();
        });
        scaled_stages.push(("label_scaled".to_string(), runs));

        // The drift corpus must demonstrably exercise the expensive
        // matcher paths — a silent regression to the cloned regime
        // makes every scaled number flattering again, so it is a hard
        // failure, not a warning. The cache comparison only runs in
        // cached mode (with --no-cache both hit rates are zero).
        let mut distinct_labels: std::collections::HashSet<&str> = std::collections::HashSet::new();
        let mut drift_interfaces = 0u64;
        for domain in &drift_domains {
            drift_interfaces += domain.schemas.len() as u64;
            for schema in &domain.schemas {
                for node in schema.nodes() {
                    if let Some(label) = node.label.as_deref() {
                        distinct_labels.insert(label);
                    }
                }
            }
        }
        let cloned_rate = cloned_cache.hit_rate();
        let drift_rate = drift_cache.hit_rate();
        let report = DriftReport {
            domains: drift_domains.len(),
            interfaces: drift_interfaces,
            distinct_labels: distinct_labels.len() as u64,
            stats: drift_stats,
            morph_cache: drift_cache,
        };
        let ceiling = if config.cache {
            (cloned_rate - 0.005).max(0.0)
        } else {
            1.0
        };
        if let Err(e) = report.check(true, ceiling) {
            eprintln!("qi-bench: drift corpus check failed: {e}");
            std::process::exit(1);
        }
        drift_json = json::Obj::new()
            .u64("scale", config.scale as u64)
            .u64("domains", report.domains as u64)
            .u64("interfaces", report.interfaces)
            .u64("distinct_labels", report.distinct_labels)
            .u64("fields_total", report.stats.fields_total)
            .u64("pairs_accepted", report.stats.pairs_accepted)
            .u64("accepted_string", report.stats.accepted_string)
            .u64("accepted_word_set", report.stats.accepted_word_set)
            .u64("accepted_synonym", report.stats.accepted_synonym)
            .u64("accepted_fuzzy", report.stats.accepted_fuzzy)
            .f64("cloned_cache_hit_rate", cloned_rate, DECIMALS)
            .f64("drift_cache_hit_rate", drift_rate, DECIMALS)
            .u64("label_scaled_fields", drift_fields)
            .f64(
                "label_scaled_mean_fld_acc",
                drift_acc_sum / drift_domains.len().max(1) as f64,
                DECIMALS,
            )
            .finish();
    }

    // ---- metrics section (untimed) --------------------------------------
    // Matcher counters come from a dedicated probe pass: the timed
    // cluster stage goes through `evaluate_matcher`, which has no
    // telemetry seam, and the probe costs one extra matcher run.
    let metrics_json = if telemetry.is_enabled() {
        for domain in &domains {
            let span = telemetry.timed("bench.cluster");
            let (_, stats) =
                qi_mapping::match_by_labels_stats(&domain.schemas, &lexicon, matcher_config);
            drop(span);
            stats.record(&telemetry);
        }
        telemetry.record_cache("stemmer", &qi_text::porter::stem_cache_stats());
        for (name, stats) in lexicon.named_cache_stats() {
            telemetry.record_cache(name, &stats);
        }
        telemetry.snapshot().to_json()
    } else {
        "null".to_string()
    };
    if let Some(path) = &config.trace_out {
        let trace = qi_runtime::chrome_trace(&telemetry.snapshot());
        if let Err(e) = std::fs::write(path, format!("{trace}\n")) {
            eprintln!("qi-bench: writing {path}: {e}");
            std::process::exit(1);
        }
        println!("qi-bench: wrote chrome trace to {path}");
    }

    // ---- observe section (untimed) --------------------------------------
    // Under --observe the recorder and series ran inside the timed
    // loops; this closes the final window and reports what they saw so
    // the overhead guard's numbers come from a demonstrably live plane.
    let observe_json = if config.observe {
        series.tick(&telemetry);
        let snapshot = telemetry.snapshot();
        let counter = |name: &str| snapshot.counters.get(name).copied().unwrap_or(0);
        let recorder = telemetry.events();
        json::Obj::new()
            .u64("events_emitted", counter("events.emitted"))
            .u64("events_sampled", counter("events.sampled"))
            .u64("events_dropped", counter("events.dropped"))
            .u64("recorder_last_seq", recorder.last_seq())
            .u64("recorder_capacity", recorder.capacity() as u64)
            .u64("history_interval_ns", series.interval_ns())
            .u64(
                "history_window_count",
                series.windows(series.capacity()).len() as u64,
            )
            .finish()
    } else {
        "null".to_string()
    };

    // ---- memory audit (untimed) -----------------------------------------
    // Sampled after the scaled stages (their corpora are the peak
    // drivers). `VmHWM` is the kernel's own high-water mark for the
    // process, so it covers every allocation path — arenas, interners,
    // thread stacks — not just what an allocator hook would see.
    let memory_json = {
        let opt = |v: Option<u64>| v.map_or("null".to_string(), |b| b.to_string());
        json::Obj::new()
            .raw("peak_rss_bytes", opt(qi_runtime::peak_rss_bytes()))
            .raw("current_rss_bytes", opt(qi_runtime::current_rss_bytes()))
            .finish()
    };

    let total_ms = total_start.elapsed().as_secs_f64() * 1e3;
    let mut stages: Vec<(String, Vec<f64>)> = vec![
        ("normalize".to_string(), normalize),
        ("cluster".to_string(), cluster),
        ("cluster_scaled_10x".to_string(), cluster_scaled_10x),
        ("cluster_scaled_100x".to_string(), cluster_scaled_100x),
        ("merge".to_string(), merge),
        ("label".to_string(), label),
        ("evaluate".to_string(), evaluate),
    ];
    stages.extend(scaled_stages);
    let stage_list: Vec<String> = stages
        .iter()
        .map(|(name, runs)| stage_json(name, runs))
        .collect();
    let json = format!(
        concat!(
            "{{\"config\":{{\"threads\":{},\"resolved_workers\":{},\"cache\":{},",
            "\"warmup\":{},\"iters\":{},\"scale\":{}}},",
            "\"stages\":[{}],",
            "\"caches\":{{\"stemmer\":{},\"lexicon\":{},\"naming_ctx\":{}}},",
            "\"corpus\":{{\"domains\":{},\"mean_fld_acc\":{}}},",
            "\"drift\":{},",
            "\"observe\":{},",
            "\"memory\":{},",
            "\"metrics\":{},",
            "\"total_ms\":{}}}"
        ),
        config.threads,
        outer,
        config.cache,
        config.warmup,
        config.iters,
        config.scale,
        stage_list.join(","),
        cache_json(&qi_text::porter::stem_cache_stats()),
        cache_json(&lexicon.cache_stats()),
        cache_json(&naming_cache),
        domains.len(),
        number(fld_acc_sum / domains.len() as f64),
        drift_json,
        observe_json,
        memory_json,
        metrics_json,
        number(total_ms),
    );
    if let Err(e) = std::fs::write(&config.out, &json) {
        eprintln!("qi-bench: writing {}: {e}", config.out);
        std::process::exit(1);
    }

    println!(
        "qi-bench: {} domains, threads={} (workers={}), cache={}, telemetry={}",
        domains.len(),
        config.threads,
        outer,
        config.cache,
        config.telemetry
    );
    for (name, runs) in &stages {
        println!(
            "  {name:<20} {:>9.3} ms (median of {})",
            median(runs),
            runs.len()
        );
    }
    println!(
        "  caches: stemmer {:.1}%  lexicon {:.1}%  naming-ctx {:.1}% hit rate",
        qi_text::porter::stem_cache_stats().hit_rate() * 100.0,
        lexicon.cache_stats().hit_rate() * 100.0,
        naming_cache.hit_rate() * 100.0
    );
    if let Some(peak) = qi_runtime::peak_rss_bytes() {
        println!("  peak RSS: {:.1} MiB", peak as f64 / (1 << 20) as f64);
    }
    if config.observe {
        println!(
            "  observe: flight recorder at seq {} across {} history windows",
            telemetry.events().last_seq(),
            series.windows(series.capacity()).len()
        );
    }
    println!("  wrote {}", config.out);
}
