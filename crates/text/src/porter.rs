//! A complete implementation of the Porter stemming algorithm.
//!
//! M. F. Porter, *An algorithm for suffix stripping*, Program 14(3), 1980.
//! The paper's normalization pipeline (§3.1, step 2) stems every extracted
//! token with this algorithm — e.g. both `Preference` and `Preferred` stem
//! to `prefer`, which is what makes `Preferred Airline` and
//! `Airline Preference` *equal* at the content-word level (Table 4 of the
//! paper).
//!
//! The implementation operates on lowercase ASCII words; non-ASCII input is
//! returned unchanged. All five steps (1a, 1b, 1c, 2, 3, 4, 5a, 5b) of the
//! original algorithm are implemented.

use qi_runtime::{CacheStats, ShardedCache};
use std::sync::OnceLock;

/// Process-wide stem memo-cache. The corpus vocabulary is a few thousand
/// distinct tokens stemmed millions of times across clusters and domains,
/// so the cache converges quickly and then answers from a shard read
/// lock. `stem` is pure, so memoization is transparent.
fn stem_cache() -> &'static ShardedCache<String, String> {
    static CACHE: OnceLock<ShardedCache<String, String>> = OnceLock::new();
    CACHE.get_or_init(ShardedCache::default)
}

/// Enable or disable the process-wide stem memo-cache (benchmarks use
/// this to time the uncached pipeline).
pub fn set_stem_cache_enabled(enabled: bool) {
    stem_cache().set_enabled(enabled);
}

/// Hit/miss counters of the stem memo-cache.
pub fn stem_cache_stats() -> CacheStats {
    stem_cache().stats()
}

/// Drop all memoized stems and reset the counters. The cache is
/// process-wide, so determinism tests reset it between runs to make the
/// second run's hit/miss sequence identical to the first's.
pub fn stem_cache_reset() {
    stem_cache().clear();
}

/// Stem a single lowercase word with the Porter algorithm (memoized).
///
/// ```
/// use qi_text::stem;
/// assert_eq!(stem("connections"), "connect");
/// assert_eq!(stem("preference"), "prefer");
/// assert_eq!(stem("preferred"), "prefer");
/// assert_eq!(stem("flying"), "fly");
/// ```
pub fn stem(word: &str) -> String {
    if word.len() <= 2 || !word.bytes().all(|b| b.is_ascii_lowercase()) {
        return word.to_string();
    }
    if let Some(hit) = stem_cache().get(word) {
        return hit;
    }
    let stemmed = stem_uncached(word);
    stem_cache().insert(word.to_string(), stemmed.clone());
    stemmed
}

/// The raw algorithm, no memoization.
fn stem_uncached(word: &str) -> String {
    let mut w: Vec<u8> = word.as_bytes().to_vec();
    step_1a(&mut w);
    step_1b(&mut w);
    step_1c(&mut w);
    step_2(&mut w);
    step_3(&mut w);
    step_4(&mut w);
    step_5a(&mut w);
    step_5b(&mut w);
    // Safety of from_utf8: we only ever shrink or append ASCII bytes.
    String::from_utf8(w).expect("porter stemmer produces ASCII")
}

/// True if `w[i]` is a consonant in Porter's sense: a letter other than
/// a/e/i/o/u, and other than `y` preceded by a consonant.
fn is_consonant(w: &[u8], i: usize) -> bool {
    match w[i] {
        b'a' | b'e' | b'i' | b'o' | b'u' => false,
        b'y' => {
            if i == 0 {
                true
            } else {
                !is_consonant(w, i - 1)
            }
        }
        _ => true,
    }
}

/// Porter's measure *m* of the prefix `w[..len]`: the number of
/// vowel-consonant sequences `(VC)` in the form `[C](VC)^m[V]`.
fn measure(w: &[u8], len: usize) -> usize {
    let mut m = 0;
    let mut i = 0;
    // Skip initial consonants.
    while i < len && is_consonant(w, i) {
        i += 1;
    }
    loop {
        // Skip vowels.
        while i < len && !is_consonant(w, i) {
            i += 1;
        }
        if i >= len {
            return m;
        }
        // Skip consonants: one full VC sequence seen.
        while i < len && is_consonant(w, i) {
            i += 1;
        }
        m += 1;
        if i >= len {
            return m;
        }
    }
}

/// `*v*` — the prefix `w[..len]` contains a vowel.
fn has_vowel(w: &[u8], len: usize) -> bool {
    (0..len).any(|i| !is_consonant(w, i))
}

/// `*d` — the prefix ends with a double consonant.
fn ends_double_consonant(w: &[u8], len: usize) -> bool {
    len >= 2 && w[len - 1] == w[len - 2] && is_consonant(w, len - 1)
}

/// `*o` — the prefix ends consonant-vowel-consonant where the final
/// consonant is not `w`, `x` or `y`.
fn ends_cvc(w: &[u8], len: usize) -> bool {
    if len < 3 {
        return false;
    }
    let last = w[len - 1];
    is_consonant(w, len - 3)
        && !is_consonant(w, len - 2)
        && is_consonant(w, len - 1)
        && last != b'w'
        && last != b'x'
        && last != b'y'
}

fn ends_with(w: &[u8], suffix: &str) -> bool {
    w.len() >= suffix.len() && &w[w.len() - suffix.len()..] == suffix.as_bytes()
}

/// If the word ends with `suffix` and the measure of the stem before it is
/// `> min_measure`, replace the suffix with `replacement` and return true.
fn replace_if_measure(
    w: &mut Vec<u8>,
    suffix: &str,
    replacement: &str,
    min_measure: usize,
) -> bool {
    if !ends_with(w, suffix) {
        return false;
    }
    let stem_len = w.len() - suffix.len();
    if measure(w, stem_len) > min_measure {
        w.truncate(stem_len);
        w.extend_from_slice(replacement.as_bytes());
        true
    } else {
        // Suffix matched but condition failed: the step still *consumed*
        // this suffix family (Porter's rules are first-match-wins).
        true
    }
}

fn step_1a(w: &mut Vec<u8>) {
    if ends_with(w, "sses") {
        w.truncate(w.len() - 2); // sses -> ss
    } else if ends_with(w, "ies") {
        w.truncate(w.len() - 2); // ies -> i
    } else if ends_with(w, "ss") {
        // unchanged
    } else if ends_with(w, "s") {
        w.truncate(w.len() - 1);
    }
}

fn step_1b(w: &mut Vec<u8>) {
    if ends_with(w, "eed") {
        let stem_len = w.len() - 3;
        if measure(w, stem_len) > 0 {
            w.truncate(w.len() - 1); // eed -> ee
        }
        return;
    }
    let removed = if ends_with(w, "ed") && has_vowel(w, w.len() - 2) {
        w.truncate(w.len() - 2);
        true
    } else if ends_with(w, "ing") && has_vowel(w, w.len() - 3) {
        w.truncate(w.len() - 3);
        true
    } else {
        false
    };
    if !removed {
        return;
    }
    if ends_with(w, "at") || ends_with(w, "bl") || ends_with(w, "iz") {
        w.push(b'e');
    } else if ends_double_consonant(w, w.len()) {
        let last = w[w.len() - 1];
        if last != b'l' && last != b's' && last != b'z' {
            w.truncate(w.len() - 1);
        }
    } else if measure(w, w.len()) == 1 && ends_cvc(w, w.len()) {
        w.push(b'e');
    }
}

fn step_1c(w: &mut [u8]) {
    if ends_with(w, "y") && has_vowel(w, w.len() - 1) {
        let n = w.len();
        w[n - 1] = b'i';
    }
}

fn step_2(w: &mut Vec<u8>) {
    const RULES: &[(&str, &str)] = &[
        ("ational", "ate"),
        ("tional", "tion"),
        ("enci", "ence"),
        ("anci", "ance"),
        ("izer", "ize"),
        ("abli", "able"),
        ("alli", "al"),
        ("entli", "ent"),
        ("eli", "e"),
        ("ousli", "ous"),
        ("ization", "ize"),
        ("ation", "ate"),
        ("ator", "ate"),
        ("alism", "al"),
        ("iveness", "ive"),
        ("fulness", "ful"),
        ("ousness", "ous"),
        ("aliti", "al"),
        ("iviti", "ive"),
        ("biliti", "ble"),
    ];
    for (suffix, replacement) in RULES {
        if ends_with(w, suffix) {
            replace_if_measure(w, suffix, replacement, 0);
            return;
        }
    }
}

fn step_3(w: &mut Vec<u8>) {
    const RULES: &[(&str, &str)] = &[
        ("icate", "ic"),
        ("ative", ""),
        ("alize", "al"),
        ("iciti", "ic"),
        ("ical", "ic"),
        ("ful", ""),
        ("ness", ""),
    ];
    for (suffix, replacement) in RULES {
        if ends_with(w, suffix) {
            replace_if_measure(w, suffix, replacement, 0);
            return;
        }
    }
}

fn step_4(w: &mut Vec<u8>) {
    const SUFFIXES: &[&str] = &[
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement", "ment", "ent", "ou",
        "ism", "ate", "iti", "ous", "ive", "ize",
    ];
    // "ion" needs a side condition: stem must end in s or t.
    if ends_with(w, "ion") {
        let stem_len = w.len() - 3;
        if stem_len > 0 && (w[stem_len - 1] == b's' || w[stem_len - 1] == b't') {
            if measure(w, stem_len) > 1 {
                w.truncate(stem_len);
            }
            return;
        }
    }
    // Longest-match-first among the plain suffixes.
    let mut best: Option<&str> = None;
    for suffix in SUFFIXES {
        if ends_with(w, suffix) && best.is_none_or(|b| suffix.len() > b.len()) {
            best = Some(suffix);
        }
    }
    if let Some(suffix) = best {
        let stem_len = w.len() - suffix.len();
        if measure(w, stem_len) > 1 {
            w.truncate(stem_len);
        }
    }
}

fn step_5a(w: &mut Vec<u8>) {
    if ends_with(w, "e") {
        let stem_len = w.len() - 1;
        let m = measure(w, stem_len);
        if m > 1 || (m == 1 && !ends_cvc(w, stem_len)) {
            w.truncate(stem_len);
        }
    }
}

fn step_5b(w: &mut Vec<u8>) {
    if measure(w, w.len()) > 1 && ends_double_consonant(w, w.len()) && w[w.len() - 1] == b'l' {
        w.truncate(w.len() - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Canonical examples from Porter's paper.
    #[test]
    fn porter_paper_examples() {
        for (input, expected) in [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("hesitanci", "hesit"),
            ("digitizer", "digit"),
            ("conformabli", "conform"),
            ("radicalli", "radic"),
            ("differentli", "differ"),
            ("vileli", "vile"),
            ("analogousli", "analog"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("homologou", "homolog"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ] {
            assert_eq!(stem(input), expected, "stem({input:?})");
        }
    }

    /// Examples load-bearing for the paper's label relations.
    #[test]
    fn label_vocabulary_examples() {
        assert_eq!(stem("preference"), stem("preferred"));
        assert_eq!(stem("adults"), "adult");
        assert_eq!(stem("seniors"), "senior");
        assert_eq!(stem("children"), "children"); // irregular: lemmatizer's job
        assert_eq!(stem("infants"), "infant");
        assert_eq!(stem("connections"), "connect");
        assert_eq!(stem("tickets"), "ticket");
        assert_eq!(stem("departing"), "depart");
        assert_eq!(stem("going"), "go");
        assert_eq!(stem("leaving"), "leav");
        assert_eq!(stem("keywords"), "keyword");
    }

    #[test]
    fn short_words_unchanged() {
        assert_eq!(stem("to"), "to");
        assert_eq!(stem("a"), "a");
        assert_eq!(stem("is"), "is");
    }

    #[test]
    fn non_lowercase_unchanged() {
        assert_eq!(stem("Adults"), "Adults");
        assert_eq!(stem("naïve"), "naïve");
        assert_eq!(stem("123"), "123");
    }

    #[test]
    fn idempotent_on_common_vocabulary() {
        // Porter is not idempotent in general, but it should be stable on
        // the short noun vocabulary of query-interface labels.
        for word in [
            "adult", "senior", "infant", "airline", "class", "ticket", "make", "model", "state",
            "city", "zip", "code", "price", "year", "job", "cabin",
        ] {
            let once = stem(word);
            assert_eq!(stem(&once), once, "stem not stable on {word:?}");
        }
    }

    #[test]
    fn measure_computation() {
        // m(tr) = 0, m(trouble without final e -> "troubl") etc.
        let w = b"tr".to_vec();
        assert_eq!(measure(&w, 2), 0);
        let w = b"trouble".to_vec();
        assert_eq!(measure(&w, 7), 1); // [tr](ou-bl)(e) : one VC sequence
        let w = b"oaten".to_vec();
        assert_eq!(measure(&w, 5), 2);
        let w = b"tree".to_vec();
        assert_eq!(measure(&w, 4), 0);
    }

    #[test]
    fn cvc_rule() {
        let w = b"hop".to_vec();
        assert!(ends_cvc(&w, 3));
        let w = b"snow".to_vec();
        assert!(!ends_cvc(&w, 4)); // ends in w
        let w = b"box".to_vec();
        assert!(!ends_cvc(&w, 3)); // ends in x
    }
}
