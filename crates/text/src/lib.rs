//! Text utilities for query-interface label processing.
//!
//! This crate implements the lexical machinery of §3.1 of *Meaningful
//! Labeling of Integrated Query Interfaces* (Dragut, Yu, Meng — VLDB 2006):
//!
//! 1. **Display normalization** (first normalization step): attached
//!    comments are removed (`Adults (18-64)` → `Adults`) and all
//!    non-alphanumeric characters are replaced by a space (`Price $` →
//!    `Price`). The result is used for *plain string comparisons*
//!    (`string_equal` in Definition 1 of the paper).
//! 2. **Content-word extraction** (second normalization step): labels are
//!    tokenized, lowercased, stemmed with the Porter stemming algorithm,
//!    reduced to their base form by a pluggable [`Lemmatizer`], and stripped
//!    of stop words. The resulting *content-word set* is the representation
//!    over which all semantic label relations (equality, synonymy,
//!    hypernymy) are computed.
//!
//! The Porter stemmer ([`porter::stem`]) is a complete from-scratch
//! implementation of Porter (1980); no external NLP crates are used.

pub mod normalize;
pub mod porter;
pub mod similarity;
pub mod stopwords;
pub mod token;

pub use normalize::{
    content_words, display_normalize, split_compound, ContentWord, IdentityLemmatizer, LabelText,
    Lemmatizer,
};
pub use porter::stem;
pub use similarity::{dice, jaccard, levenshtein, normalized_levenshtein, prefix_abbreviation};
pub use stopwords::is_stop_word;
pub use token::tokenize;
