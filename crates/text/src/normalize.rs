//! The paper's two-step label normalization (§3.1).
//!
//! * Step 1 — [`display_normalize`]: strip attached comments and replace
//!   non-alphanumeric characters with spaces. The output is used for plain
//!   string comparison (`string_equal` in Definition 1).
//! * Step 2 — [`content_words`] / [`LabelText`]: tokenize, lowercase, stem
//!   (Porter), retrieve the base form of each token through a pluggable
//!   [`Lemmatizer`] (WordNet's role in the paper) and remove stop words.
//!   The result is the *content-word set* representation of a label, e.g.
//!   `Area of Study` ↦ `{area, study}`.

use crate::porter;
use crate::stopwords::is_stop_word;
use crate::token::{strip_comments, tokenize};
use std::collections::BTreeSet;

/// Supplies the base (dictionary) form of a token — the role WordNet's
/// morphological processor plays in the paper's pipeline. Implemented by
/// `qi-lexicon`; [`IdentityLemmatizer`] is the no-op fallback.
pub trait Lemmatizer {
    /// The base form of `token` (already lowercased), or `None` when the
    /// token is unknown / already in base form.
    fn lemma(&self, token: &str) -> Option<String>;

    /// True if `token` is a known word (a dictionary lemma or an
    /// inflection of one). Drives compound splitting: unknown tokens that
    /// decompose into two known words are split (`zipcode` → `zip code`),
    /// which is how `Zipcode` ends up *equal* to `Zip Code` at the
    /// content-word level. The default (no vocabulary) disables splitting.
    fn is_word(&self, _token: &str) -> bool {
        false
    }
}

/// A [`Lemmatizer`] that knows no morphology: every token is its own base
/// form. Porter stemming still conflates regular inflection, so this is a
/// usable degraded mode when no lexicon is available.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityLemmatizer;

impl Lemmatizer for IdentityLemmatizer {
    fn lemma(&self, _token: &str) -> Option<String> {
        None
    }
}

/// First normalization step: remove attached comments, replace every
/// non-alphanumeric character with a space, and collapse whitespace.
///
/// ```
/// use qi_text::display_normalize;
/// assert_eq!(display_normalize("Adults (18-64)"), "Adults");
/// assert_eq!(display_normalize("Price $"), "Price");
/// assert_eq!(display_normalize("Make/Model"), "Make Model");
/// ```
pub fn display_normalize(label: &str) -> String {
    let stripped = strip_comments(label);
    let mut out = String::with_capacity(stripped.len());
    let mut pending_space = false;
    for ch in stripped.chars() {
        if ch.is_ascii_alphanumeric() {
            if pending_space && !out.is_empty() {
                out.push(' ');
            }
            pending_space = false;
            out.push(ch);
        } else {
            pending_space = true;
        }
    }
    out
}

/// One content word of a label: the lowercased surface token, its base form
/// (lemma), and its Porter stem. Two content words denote the same concept
/// when their [`key`](ContentWord::key)s match — the key is the Porter stem
/// of the lemma, which conflates both regular inflection (`Preferred` /
/// `Preference` → `prefer`) and irregular forms handled by the lemmatizer
/// (`Children` → `child`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContentWord {
    /// Lowercased surface token as it appeared in the label.
    pub surface: String,
    /// Dictionary base form (from the lemmatizer, or the surface itself).
    pub lemma: String,
    /// Porter stem of the lemma — the canonical comparison key.
    pub stem: String,
}

impl ContentWord {
    /// Build a content word from a lowercased token.
    pub fn new(token: &str, lemmatizer: &dyn Lemmatizer) -> Self {
        let lemma = lemmatizer.lemma(token).unwrap_or_else(|| token.to_string());
        let stem = porter::stem(&lemma);
        ContentWord {
            surface: token.to_string(),
            lemma,
            stem,
        }
    }

    /// The canonical comparison key (Porter stem of the lemma).
    pub fn key(&self) -> &str {
        &self.stem
    }
}

/// Split an unknown token into two known words, if possible
/// (`zipcode` → `(zip, code)`). Both halves must be at least three
/// characters and recognized by the lemmatizer's vocabulary; known tokens
/// are never split.
pub fn split_compound(token: &str, lemmatizer: &dyn Lemmatizer) -> Option<(String, String)> {
    if token.len() < 6 || lemmatizer.is_word(token) {
        return None;
    }
    for split in 3..=token.len().saturating_sub(3) {
        if !token.is_char_boundary(split) {
            continue;
        }
        let (left, right) = token.split_at(split);
        if lemmatizer.is_word(left) && lemmatizer.is_word(right) {
            return Some((left.to_string(), right.to_string()));
        }
    }
    None
}

/// Extract the content words of a label (second normalization step).
///
/// Stop words are removed; if removal would leave the label empty (labels
/// such as `From`, `To`, `Within` consist solely of function words), the
/// unfiltered tokens are kept instead, so that `From` and `To` remain
/// distinguishable at the equality level of consistency. Unknown tokens
/// that decompose into two known words are split (see [`split_compound`]).
pub fn content_words(label: &str, lemmatizer: &dyn Lemmatizer) -> Vec<ContentWord> {
    let tokens = tokenize(label);
    let filtered: Vec<&String> = tokens.iter().filter(|t| !is_stop_word(t)).collect();
    let chosen: Vec<&String> = if filtered.is_empty() {
        tokens.iter().collect()
    } else {
        filtered
    };
    let mut words: Vec<ContentWord> = Vec::with_capacity(chosen.len());
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let push = |token: &str, words: &mut Vec<ContentWord>, seen: &mut BTreeSet<String>| {
        let cw = ContentWord::new(token, lemmatizer);
        if seen.insert(cw.stem.clone()) {
            words.push(cw);
        }
    };
    for token in chosen {
        match split_compound(token, lemmatizer) {
            Some((left, right)) => {
                push(&left, &mut words, &mut seen);
                push(&right, &mut words, &mut seen);
            }
            None => push(token, &mut words, &mut seen),
        }
    }
    words
}

/// A fully normalized label: the raw text, its display-normalized form, and
/// its content-word set. This is the representation every semantic label
/// relation (Definition 1 of the paper) is computed over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelText {
    /// The label exactly as it appears on the source interface.
    pub raw: String,
    /// First-step normalization output, used for `string_equal`.
    pub display: String,
    /// Second-step normalization output (content-word set, order-preserving).
    pub words: Vec<ContentWord>,
}

impl LabelText {
    /// Normalize a raw label.
    pub fn new(raw: &str, lemmatizer: &dyn Lemmatizer) -> Self {
        let display = display_normalize(raw);
        let words = content_words(&display, lemmatizer);
        LabelText {
            raw: raw.to_string(),
            display,
            words,
        }
    }

    /// The set of canonical content-word keys, for set comparisons
    /// (`A equal B  ⇔  A.keys() == B.keys()`).
    pub fn keys(&self) -> BTreeSet<&str> {
        self.words.iter().map(|w| w.key()).collect()
    }

    /// Number of content words — the paper's *expressiveness* of a label
    /// (§4.2.1): more content words ⇒ more descriptive.
    pub fn expressiveness(&self) -> usize {
        self.words.len()
    }

    /// True if the label has no alphanumeric material at all.
    pub fn is_empty(&self) -> bool {
        self.display.is_empty()
    }

    /// Case-insensitive plain string comparison on display forms
    /// (`string_equal` of Definition 1).
    pub fn string_equal(&self, other: &LabelText) -> bool {
        self.display.eq_ignore_ascii_case(&other.display)
    }

    /// Content-word set equality (`equal` of Definition 1):
    /// `Type of Job` *equal* `Job Type`.
    pub fn word_equal(&self, other: &LabelText) -> bool {
        self.keys() == other.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lt(s: &str) -> LabelText {
        LabelText::new(s, &IdentityLemmatizer)
    }

    #[test]
    fn display_normalization_paper_examples() {
        assert_eq!(display_normalize("Adults (18-64)"), "Adults");
        assert_eq!(display_normalize("Price $"), "Price");
        assert_eq!(display_normalize("  Zip   Code: "), "Zip Code");
    }

    #[test]
    fn content_words_drop_stop_words() {
        let words = content_words("Area of Study", &IdentityLemmatizer);
        let keys: Vec<&str> = words.iter().map(|w| w.key()).collect();
        assert_eq!(keys, vec!["area", "studi"]);
    }

    #[test]
    fn question_label_reduces_to_single_content_word() {
        // §5.1.2: "Do you have any preferences?" ↦ {prefer}
        let words = content_words("Do you have any preferences?", &IdentityLemmatizer);
        let keys: Vec<&str> = words.iter().map(|w| w.key()).collect();
        assert_eq!(keys, vec!["prefer"]);
    }

    #[test]
    fn all_stop_word_label_falls_back_to_tokens() {
        let from = lt("From");
        let to = lt("To");
        assert_eq!(from.expressiveness(), 1);
        assert_eq!(to.expressiveness(), 1);
        assert!(!from.word_equal(&to), "From and To must stay distinct");
    }

    #[test]
    fn equal_is_order_insensitive() {
        // Definition 1: "Type of Job equals Job Type".
        assert!(lt("Type of Job").word_equal(&lt("Job Type")));
        assert!(!lt("Type of Job").word_equal(&lt("Job Category")));
    }

    #[test]
    fn stemming_conflates_inflection() {
        // Table 4: Preferred Airline ≍ Airline Preference.
        assert!(lt("Preferred Airline").word_equal(&lt("Airline Preference")));
    }

    #[test]
    fn string_equal_ignores_case_and_punctuation() {
        assert!(lt("zip code").string_equal(&lt("Zip Code:")));
        assert!(!lt("Zip Code").string_equal(&lt("Zip")));
    }

    #[test]
    fn duplicate_tokens_deduplicated() {
        let words = content_words("model model Model", &IdentityLemmatizer);
        assert_eq!(words.len(), 1);
    }

    #[test]
    fn expressiveness_counts_content_words() {
        assert_eq!(lt("Max. Number of Stops").expressiveness(), 3); // max, number, stop
        assert_eq!(lt("Class").expressiveness(), 1);
        assert_eq!(lt("Class of Ticket").expressiveness(), 2);
    }

    #[test]
    fn empty_label() {
        let e = lt("");
        assert!(e.is_empty());
        assert_eq!(e.expressiveness(), 0);
        let sym = lt("$$!");
        assert!(sym.is_empty());
    }

    #[test]
    fn lemmatizer_is_consulted() {
        struct ChildLemma;
        impl Lemmatizer for ChildLemma {
            fn lemma(&self, token: &str) -> Option<String> {
                (token == "children").then(|| "child".to_string())
            }
        }
        let a = LabelText::new("Children", &ChildLemma);
        let b = LabelText::new("Child", &ChildLemma);
        assert!(a.word_equal(&b));
    }
}

#[cfg(test)]
mod compound_tests {
    use super::*;

    /// A lemmatizer with a tiny vocabulary, for compound tests.
    struct Vocab(&'static [&'static str]);
    impl Lemmatizer for Vocab {
        fn lemma(&self, _token: &str) -> Option<String> {
            None
        }
        fn is_word(&self, token: &str) -> bool {
            self.0.contains(&token)
        }
    }

    #[test]
    fn splits_unknown_compounds() {
        let vocab = Vocab(&["zip", "code", "check", "out"]);
        assert_eq!(
            split_compound("zipcode", &vocab),
            Some(("zip".to_string(), "code".to_string()))
        );
        assert_eq!(split_compound("zip", &vocab), None, "too short");
        assert_eq!(split_compound("zipqqq", &vocab), None, "halves unknown");
    }

    #[test]
    fn known_words_are_never_split() {
        let vocab = Vocab(&["zipcode", "zip", "code"]);
        assert_eq!(split_compound("zipcode", &vocab), None);
    }

    #[test]
    fn compound_makes_labels_equal() {
        let vocab = Vocab(&["zip", "code"]);
        let a = LabelText::new("Zipcode", &vocab);
        let b = LabelText::new("Zip Code", &vocab);
        assert!(a.word_equal(&b), "{:?} vs {:?}", a.keys(), b.keys());
        assert_eq!(a.expressiveness(), 2);
    }

    #[test]
    fn identity_lemmatizer_disables_splitting() {
        assert_eq!(split_compound("zipcode", &IdentityLemmatizer), None);
    }

    #[test]
    fn non_ascii_boundaries_are_safe() {
        let vocab = Vocab(&["zip", "code"]);
        assert_eq!(split_compound("ziﬁcode", &vocab), None);
    }
}
