//! Stop-word filtering for label content-word extraction.
//!
//! The paper's second normalization step removes stop words so that, e.g.,
//! `Do you have any preferences?` reduces to the single content word
//! `prefer` (§5.1.2), and `Area of Study` reduces to `{area, study}`
//! (§3.2). The list below covers the function words that occur in
//! query-interface labels: determiners, prepositions, pronouns, auxiliary
//! verbs, conjunctions and a few interface-generic fillers.

/// The stop-word list, kept sorted for binary search.
///
/// Note: `number`, `type`, `date` and similar carrier nouns are *not* stop
/// words — the paper treats them as content words (`Number of Connections`
/// has content words `{number, connect}`). The particles `in` and `out` are
/// also kept: they are the only distinguishing tokens of label pairs such
/// as `Check In` / `Check Out`, which must not collapse to the same
/// content-word set (that would be a manufactured homonym conflict).
static STOP_WORDS: &[&str] = &[
    "a", "about", "after", "all", "an", "and", "any", "are", "as", "at", "be", "been", "before",
    "below", "between", "both", "but", "by", "can", "could", "did", "do", "does", "doing", "down",
    "during", "each", "for", "from", "had", "has", "have", "having", "he", "her", "here", "hers",
    "him", "his", "how", "i", "if", "into", "is", "it", "its", "itself", "just", "me", "more",
    "most", "my", "no", "nor", "not", "now", "of", "off", "on", "once", "only", "or", "other",
    "our", "ours", "over", "own", "per", "please", "same", "she", "should", "so", "some", "such",
    "than", "that", "the", "their", "theirs", "them", "then", "there", "these", "they", "this",
    "those", "through", "to", "too", "under", "until", "up", "very", "was", "we", "were", "what",
    "when", "where", "which", "while", "who", "whom", "why", "will", "with", "would", "you",
    "your", "yours",
];

/// True if `word` (already lowercased) is a stop word.
///
/// ```
/// use qi_text::is_stop_word;
/// assert!(is_stop_word("of"));
/// assert!(is_stop_word("the"));
/// assert!(!is_stop_word("airline"));
/// assert!(!is_stop_word("number"));
/// ```
pub fn is_stop_word(word: &str) -> bool {
    STOP_WORDS.binary_search(&word).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_sorted_and_deduped() {
        for pair in STOP_WORDS.windows(2) {
            assert!(pair[0] < pair[1], "{:?} >= {:?}", pair[0], pair[1]);
        }
    }

    #[test]
    fn function_words_are_stopped() {
        for w in [
            "a", "of", "the", "do", "you", "have", "any", "from", "to", "your", "what",
        ] {
            assert!(is_stop_word(w), "{w:?} should be a stop word");
        }
    }

    #[test]
    fn content_words_are_kept() {
        for w in [
            "number",
            "type",
            "date",
            "airline",
            "adults",
            "class",
            "preferences",
            "going",
            "departing",
            "city",
            "state",
            "zip",
            "area",
            "study",
            "work",
            "field",
            "in",
            "out",
        ] {
            assert!(!is_stop_word(w), "{w:?} must not be a stop word");
        }
    }

    #[test]
    fn case_sensitive_lowercase_contract() {
        // Caller contract: input is lowercased first.
        assert!(!is_stop_word("The"));
    }
}
