//! Label tokenization.
//!
//! Query-interface labels are short natural-language phrases — `Departing
//! from`, `Max. Number of Stops`, `Adults (18-64)` — possibly decorated with
//! punctuation, parenthesized comments, or form markup residue. The
//! tokenizer splits a label into lowercase alphanumeric word tokens.

/// Split a label into lowercase word tokens.
///
/// A token is a maximal run of ASCII alphanumeric characters; everything
/// else (whitespace, punctuation, symbols) separates tokens. Tokens are
/// lowercased. Purely numeric tokens are kept: they matter for labels such
/// as `Room 1` and are later dropped by stop-word filtering only when
/// configured to do so.
///
/// ```
/// use qi_text::tokenize;
/// assert_eq!(tokenize("Max. Number of Stops"), vec!["max", "number", "of", "stops"]);
/// assert_eq!(tokenize("Departing from"), vec!["departing", "from"]);
/// assert_eq!(tokenize(""), Vec::<String>::new());
/// ```
pub fn tokenize(label: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in label.chars() {
        if ch.is_ascii_alphanumeric() {
            current.extend(ch.to_lowercase());
        } else if !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Remove a parenthesized / bracketed trailing comment from a label.
///
/// The paper's first normalization step turns `Adults (18-64)` into
/// `Adults`. We strip *all* parenthesized and bracketed spans, wherever
/// they occur, since source interfaces also embed mid-label comments
/// (`Price ($) range`).
pub fn strip_comments(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    let mut depth = 0usize;
    for ch in label.chars() {
        match ch {
            '(' | '[' | '{' => depth += 1,
            ')' | ']' | '}' => depth = depth.saturating_sub(1),
            _ if depth == 0 => out.push(ch),
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_simple() {
        assert_eq!(tokenize("Adults"), vec!["adults"]);
    }

    #[test]
    fn tokenize_multiword() {
        assert_eq!(
            tokenize("Number of Connections"),
            vec!["number", "of", "connections"]
        );
    }

    #[test]
    fn tokenize_punctuation() {
        assert_eq!(tokenize("Make/Model"), vec!["make", "model"]);
        assert_eq!(tokenize("Price $"), vec!["price"]);
        assert_eq!(tokenize("Zip Code:"), vec!["zip", "code"]);
    }

    #[test]
    fn tokenize_question() {
        assert_eq!(
            tokenize("Do you have any preferences?"),
            vec!["do", "you", "have", "any", "preferences"]
        );
    }

    #[test]
    fn tokenize_keeps_numbers() {
        assert_eq!(tokenize("Room 1"), vec!["room", "1"]);
    }

    #[test]
    fn tokenize_empty_and_symbolic() {
        assert_eq!(tokenize(""), Vec::<String>::new());
        assert_eq!(tokenize("$$ -- !!"), Vec::<String>::new());
    }

    #[test]
    fn strip_trailing_comment() {
        assert_eq!(strip_comments("Adults (18-64)"), "Adults ");
    }

    #[test]
    fn strip_nested_comment() {
        assert_eq!(strip_comments("A (b (c) d) E"), "A  E");
    }

    #[test]
    fn strip_unbalanced_is_lenient() {
        assert_eq!(strip_comments("A ) B"), "A  B");
        assert_eq!(strip_comments("A ( B"), "A ");
    }

    #[test]
    fn strip_brackets() {
        assert_eq!(strip_comments("Price [USD]"), "Price ");
    }
}
