//! String- and token-level similarity measures.
//!
//! The paper's label relations are purely lexicon-driven; real matcher
//! front-ends (\[10, 23, 24\]) additionally use surface-string similarity
//! to catch misspellings and abbreviations WordNet cannot. This module
//! provides the standard measures the `qi-mapping` matcher (and user
//! code) can layer on top of Definition 1:
//!
//! * [`levenshtein`] / [`normalized_levenshtein`] — edit distance;
//! * [`jaccard`] / [`dice`] — token-set overlap;
//! * [`prefix_abbreviation`] — does one token abbreviate another
//!   (`qty` → `quantity`, `min` → `minimum`)?

use std::collections::BTreeSet;

/// Classic Levenshtein edit distance (two-row dynamic program), over
/// Unicode scalar values. ASCII inputs run directly on the byte slices,
/// skipping the per-call `Vec<char>` collection — token stems on the
/// matcher's fuzzy tier are almost always ASCII, and the allocation
/// dominated the DP for short strings.
pub fn levenshtein(a: &str, b: &str) -> usize {
    if a.is_ascii() && b.is_ascii() {
        return levenshtein_units(a.as_bytes(), b.as_bytes());
    }
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    levenshtein_units(&a, &b)
}

fn levenshtein_units<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut current: Vec<usize> = vec![0; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        current[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let substitution = prev[j] + usize::from(ca != cb);
            current[j + 1] = substitution.min(prev[j + 1] + 1).min(current[j] + 1);
        }
        std::mem::swap(&mut prev, &mut current);
    }
    prev[b.len()]
}

/// Levenshtein similarity normalized to `[0, 1]`: `1.0` for equal
/// strings, `0.0` for maximally different ones.
pub fn normalized_levenshtein(a: &str, b: &str) -> f64 {
    let char_len = |s: &str| {
        if s.is_ascii() {
            s.len()
        } else {
            s.chars().count()
        }
    };
    let max_len = char_len(a).max(char_len(b));
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// Jaccard overlap of two token sets.
pub fn jaccard<'a, I, J>(a: I, b: J) -> f64
where
    I: IntoIterator<Item = &'a str>,
    J: IntoIterator<Item = &'a str>,
{
    let sa: BTreeSet<&str> = a.into_iter().collect();
    let sb: BTreeSet<&str> = b.into_iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let intersection = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    intersection as f64 / union as f64
}

/// Dice coefficient of two token sets (`2|A∩B| / (|A|+|B|)`).
pub fn dice<'a, I, J>(a: I, b: J) -> f64
where
    I: IntoIterator<Item = &'a str>,
    J: IntoIterator<Item = &'a str>,
{
    let sa: BTreeSet<&str> = a.into_iter().collect();
    let sb: BTreeSet<&str> = b.into_iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let intersection = sa.intersection(&sb).count();
    2.0 * intersection as f64 / (sa.len() + sb.len()) as f64
}

/// True if `short` plausibly abbreviates `long`: a strict prefix of at
/// least 2 characters (`min` → `minimum`), or the consonant skeleton of
/// `long` (`qty` → `quantity`, `pwd` → `password`).
pub fn prefix_abbreviation(short: &str, long: &str) -> bool {
    if short.len() < 2 || short.len() >= long.len() {
        return false;
    }
    if long.starts_with(short) {
        return true;
    }
    // Consonant-skeleton check: the short form's characters appear in
    // order in the long form, starting at the first character.
    let mut long_chars = long.chars();
    let mut first = true;
    for c in short.chars() {
        let found = if first {
            first = false;
            long_chars.next() == Some(c)
        } else {
            long_chars.any(|lc| lc == c)
        };
        if !found {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn levenshtein_unicode() {
        assert_eq!(levenshtein("café", "cafe"), 1);
    }

    #[test]
    fn normalized_levenshtein_bounds() {
        assert_eq!(normalized_levenshtein("", ""), 1.0);
        assert_eq!(normalized_levenshtein("abc", "abc"), 1.0);
        assert_eq!(normalized_levenshtein("abc", "xyz"), 0.0);
        let v = normalized_levenshtein("color", "colour");
        assert!((0.8..1.0).contains(&v), "{v}");
    }

    #[test]
    fn jaccard_and_dice() {
        assert_eq!(jaccard(["a", "b"], ["a", "b"]), 1.0);
        assert_eq!(jaccard(["a"], ["b"]), 0.0);
        assert!((jaccard(["a", "b"], ["b", "c"]) - 1.0 / 3.0).abs() < 1e-12);
        assert!((dice(["a", "b"], ["b", "c"]) - 0.5).abs() < 1e-12);
        assert_eq!(jaccard([] as [&str; 0], [] as [&str; 0]), 1.0);
        assert_eq!(dice([] as [&str; 0], [] as [&str; 0]), 1.0);
    }

    #[test]
    fn abbreviations() {
        assert!(prefix_abbreviation("min", "minimum"));
        assert!(prefix_abbreviation("max", "maximum"));
        assert!(prefix_abbreviation("qty", "quantity"));
        assert!(prefix_abbreviation("pwd", "password"));
        assert!(!prefix_abbreviation("max", "minimum"));
        assert!(!prefix_abbreviation("m", "minimum"), "too short");
        assert!(!prefix_abbreviation("minimum", "min"), "wrong direction");
        assert!(!prefix_abbreviation("tyq", "quantity"), "order matters");
    }
}
