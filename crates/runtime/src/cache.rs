//! N-way lock-striped concurrent memo-cache.
//!
//! Replaces the single global `RwLock<HashMap>` the lexicon used to
//! serialize every transitive-hypernymy query behind: keys are routed to
//! one of N independent `RwLock<HashMap>` shards by hash, so readers on
//! different shards never contend. Hit/miss counters make cache
//! effectiveness observable (`BENCH_core.json` reports them), and the
//! whole cache can be disabled to measure the uncached pipeline.

use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, RandomState};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::RwLock;

/// Snapshot of a cache's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute (or found the cache disabled).
    pub misses: u64,
    /// Entries currently stored across all shards.
    pub entries: usize,
}

impl CacheStats {
    /// Hits / (hits + misses), or 0 when the cache was never queried.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Sum two snapshots (for aggregating several caches).
    pub fn merge(&self, other: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            entries: self.entries + other.entries,
        }
    }

    /// Counter growth since an `earlier` snapshot of the same cache —
    /// used to attribute a shared (process-wide or cross-domain) cache's
    /// activity to one pipeline stage. `entries` keeps the current
    /// reading (it is a gauge, not a monotonic counter).
    pub fn delta_since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            entries: self.entries,
        }
    }
}

/// A concurrent memo-cache striped over `shards` independent locks.
#[derive(Debug)]
pub struct ShardedCache<K, V> {
    shards: Vec<RwLock<HashMap<K, V>>>,
    hasher: RandomState,
    hits: AtomicU64,
    misses: AtomicU64,
    enabled: AtomicBool,
}

/// Default shard count: enough stripes that a 16-thread evaluation run
/// rarely collides, small enough that an empty cache stays cheap.
pub const DEFAULT_SHARDS: usize = 16;

impl<K: Hash + Eq, V: Clone> Default for ShardedCache<K, V> {
    fn default() -> Self {
        ShardedCache::new(DEFAULT_SHARDS)
    }
}

impl<K: Hash + Eq, V: Clone> ShardedCache<K, V> {
    /// Create a cache with `shards` stripes (clamped to at least 1,
    /// rounded up to a power of two so routing is a mask).
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        let mut vec = Vec::with_capacity(n);
        for _ in 0..n {
            vec.push(RwLock::new(HashMap::new()));
        }
        ShardedCache {
            shards: vec,
            hasher: RandomState::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            enabled: AtomicBool::new(true),
        }
    }

    fn shard_of<Q: Hash + ?Sized>(&self, key: &Q) -> usize {
        (self.hasher.hash_one(key) as usize) & (self.shards.len() - 1)
    }

    /// Turn memoization on or off. Disabling does not clear stored
    /// entries; lookups simply miss and inserts are dropped.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether memoization is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Look up `key` (borrowed form allowed, like `HashMap::get`),
    /// counting a hit or miss.
    pub fn get<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        if !self.is_enabled() {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let shard = &self.shards[self.shard_of(key)];
        let found = shard
            .read()
            .expect("cache shard poisoned")
            .get(key)
            .cloned();
        match found {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store `key → value` (no-op while disabled).
    pub fn insert(&self, key: K, value: V) {
        if !self.is_enabled() {
            return;
        }
        self.shards[self.shard_of(&key)]
            .write()
            .expect("cache shard poisoned")
            .insert(key, value);
    }

    /// Memoize `compute`: return the cached value or compute-and-store.
    ///
    /// `compute` runs outside any shard lock, so recursive lookups (the
    /// hypernym DAG walk queries the cache for intermediate nodes) cannot
    /// deadlock; concurrent computers may race, last write wins — safe
    /// because memoized functions are pure.
    pub fn get_or_insert_with(&self, key: K, compute: impl FnOnce() -> V) -> V
    where
        K: Clone,
    {
        if let Some(v) = self.get(&key) {
            return v;
        }
        let v = compute();
        self.insert(key, v.clone());
        v
    }

    /// Counter + size snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.read().expect("cache shard poisoned").len())
                .sum(),
        }
    }

    /// Drop every entry and reset the counters.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().expect("cache shard poisoned").clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn memoizes_and_counts() {
        let cache: ShardedCache<String, usize> = ShardedCache::default();
        let computed = AtomicUsize::new(0);
        let f = |s: &str| {
            cache.get_or_insert_with(s.to_string(), || {
                computed.fetch_add(1, Ordering::Relaxed);
                s.len()
            })
        };
        assert_eq!(f("hello"), 5);
        assert_eq!(f("hello"), 5);
        assert_eq!(f("hi"), 2);
        assert_eq!(computed.load(Ordering::Relaxed), 2);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.entries, 2);
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn disabled_cache_always_computes() {
        let cache: ShardedCache<u32, u32> = ShardedCache::new(4);
        cache.set_enabled(false);
        let computed = AtomicUsize::new(0);
        for _ in 0..3 {
            let v = cache.get_or_insert_with(7, || {
                computed.fetch_add(1, Ordering::Relaxed);
                49
            });
            assert_eq!(v, 49);
        }
        assert_eq!(computed.load(Ordering::Relaxed), 3);
        let stats = cache.stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.entries, 0);
    }

    #[test]
    fn clear_resets_everything() {
        let cache: ShardedCache<u32, u32> = ShardedCache::new(1);
        cache.insert(1, 2);
        assert_eq!(cache.get(&1), Some(2));
        cache.clear();
        assert_eq!(cache.get(&1), None);
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let cache: ShardedCache<u32, u32> = ShardedCache::new(5);
        assert_eq!(cache.shards.len(), 8);
        let cache: ShardedCache<u32, u32> = ShardedCache::new(0);
        assert_eq!(cache.shards.len(), 1);
    }

    /// Satellite smoke test: hammer the cache from 8 threads and check
    /// the counters stay consistent (hits + misses == lookups issued,
    /// and every key is present exactly once afterwards).
    #[test]
    fn concurrent_hammer_counters_consistent() {
        const THREADS: usize = 8;
        const OPS: usize = 2_000;
        const KEYS: u64 = 64;
        let cache: ShardedCache<u64, u64> = ShardedCache::new(8);
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..OPS {
                        let key = ((t * OPS + i) as u64 * 2_654_435_761) % KEYS;
                        let v = cache.get_or_insert_with(key, || key * 3);
                        assert_eq!(v, key * 3);
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, (THREADS * OPS) as u64);
        assert!(stats.entries as u64 <= KEYS);
        assert!(stats.hits > 0, "some lookups must have hit");
    }
}
