//! SplitMix64 — the tiny deterministic PRNG behind synthetic-domain
//! generation (replaces the external `rand` crate's `SmallRng`).
//!
//! Same seed ⇒ same stream, forever; the generator is Fortuna-free and
//! has no global state, so generated corpora are reproducible across
//! platforms and thread counts.

/// SplitMix64 state (Steele, Lea & Flood 2014; public-domain algorithm).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed the generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A float uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Uniform integer in `[0, n)`. `n` must be positive.
    pub fn gen_range(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_range needs a non-empty range");
        // Multiply-shift range reduction (Lemire); bias is < 2^-64 per
        // draw — immaterial for corpus synthesis.
        (((self.next_u64() as u128) * (n as u128)) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = (0..8)
            .map({
                let mut rng = SplitMix64::new(42);
                move |_| rng.next_u64()
            })
            .collect();
        let b: Vec<u64> = (0..8)
            .map({
                let mut rng = SplitMix64::new(42);
                move |_| rng.next_u64()
            })
            .collect();
        assert_eq!(a, b);
        let mut other = SplitMix64::new(7);
        assert_ne!(a[0], other.next_u64());
    }

    #[test]
    fn known_first_output() {
        // Reference value for seed 0 from the published algorithm.
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = SplitMix64::new(123);
        for _ in 0..1000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = SplitMix64::new(9);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
    }

    #[test]
    fn gen_range_covers_and_bounds() {
        let mut rng = SplitMix64::new(5);
        let mut seen = [false; 3];
        for _ in 0..200 {
            let v = rng.gen_range(3);
            assert!(v < 3);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "non-empty range")]
    fn gen_range_rejects_zero() {
        let _ = SplitMix64::new(1).gen_range(0);
    }
}
