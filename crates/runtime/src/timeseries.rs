//! Windowed time-series telemetry: a fixed-capacity ring of
//! per-interval [`MetricsSnapshot`] deltas.
//!
//! The cumulative registry answers "what happened since boot"; this
//! module answers "what changed in the last N intervals". Each tick
//! snapshots the registry, subtracts the previous cumulative snapshot
//! ([`MetricsSnapshot::delta`]) and pushes the difference as one
//! [`Window`]: counters and span totals become per-window increments
//! (rates, once divided by the window's duration), gauges keep their
//! instantaneous value, and histograms become per-window distributions
//! whose quantiles describe *that interval only* (see
//! [`crate::histogram::HistogramData::delta`]).
//!
//! Ticking is driven externally — the HTTP reactor calls
//! [`TimeSeries::maybe_tick`] from its idle loop; tests call
//! [`TimeSeries::tick`] explicitly. Timestamps come from the owning
//! registry's clock, so a deterministic-clock run produces
//! byte-identical [`TimeSeries::history_json`] documents — the golden
//! the acceptance suite pins.
//!
//! Like the rest of the runtime telemetry, the handle wraps an
//! `Option<Arc<_>>`: the disabled handle ([`TimeSeries::off`]) makes
//! every call a pointer check.

use crate::json::{Arr, Obj};
use crate::telemetry::{MetricsSnapshot, Telemetry};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// One closed interval of registry activity.
#[derive(Debug, Clone)]
pub struct Window {
    /// Monotonic window number (0-based, series-wide; survives ring
    /// eviction, so readers can detect how far the ring has rolled).
    pub index: u64,
    /// Clock reading at the start of the interval.
    pub start_ns: u64,
    /// Clock reading at the end of the interval.
    pub end_ns: u64,
    /// What changed during the interval (see
    /// [`MetricsSnapshot::delta`]).
    pub delta: MetricsSnapshot,
}

impl Window {
    /// Interval length in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Render as one stable JSON object. Histograms are summarized
    /// (count/max/quantiles/sum, no bucket map) — the history payload
    /// is a dashboard feed, not an archival format.
    pub fn to_json(&self) -> String {
        let scalar_map = |map: &std::collections::BTreeMap<String, u64>| {
            let mut obj = Obj::new();
            for (k, v) in map {
                obj.u64(k, *v);
            }
            obj.finish()
        };
        let mut histograms = Obj::new();
        for (name, data) in &self.delta.histograms {
            histograms.raw(
                name,
                Obj::new()
                    .u64("count", data.count())
                    .u64("max", data.max)
                    .u64("p50", data.quantile(0.50))
                    .u64("p90", data.quantile(0.90))
                    .u64("p99", data.quantile(0.99))
                    .u64("sum", data.sum)
                    .finish(),
            );
        }
        Obj::new()
            .u64("index", self.index)
            .u64("start_ns", self.start_ns)
            .u64("end_ns", self.end_ns)
            .u64("duration_ns", self.duration_ns())
            .raw("counters", scalar_map(&self.delta.counters))
            .raw("gauges", scalar_map(&self.delta.gauges))
            .raw("histograms", histograms.finish())
            .finish()
    }
}

struct SeriesInner {
    interval_ns: u64,
    capacity: usize,
    state: Mutex<SeriesState>,
}

struct SeriesState {
    /// Cumulative snapshot at the last tick (the delta base).
    last: MetricsSnapshot,
    /// Clock reading at the last tick.
    last_ns: u64,
    /// Next window number.
    next_index: u64,
    windows: VecDeque<Window>,
}

/// A handle on a windowed metrics ring (or on nothing, when disabled).
/// Clones share the ring; the handle is `Send + Sync`.
#[derive(Clone, Default)]
pub struct TimeSeries {
    inner: Option<Arc<SeriesInner>>,
}

impl std::fmt::Debug for TimeSeries {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimeSeries")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl TimeSeries {
    /// The disabled series: every call is a pointer check.
    pub fn off() -> Self {
        TimeSeries { inner: None }
    }

    /// An enabled series retaining the most recent `capacity` windows
    /// of (nominally) `interval_ns` each. The interval is a target for
    /// [`TimeSeries::maybe_tick`]; explicit [`TimeSeries::tick`] calls
    /// close windows regardless of elapsed time.
    pub fn new(interval_ns: u64, capacity: usize) -> Self {
        TimeSeries {
            inner: Some(Arc::new(SeriesInner {
                interval_ns: interval_ns.max(1),
                capacity: capacity.max(1),
                state: Mutex::new(SeriesState {
                    last: MetricsSnapshot::default(),
                    last_ns: 0,
                    next_index: 0,
                    windows: VecDeque::new(),
                }),
            })),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Target interval in nanoseconds (0 when disabled).
    pub fn interval_ns(&self) -> u64 {
        self.inner.as_ref().map_or(0, |inner| inner.interval_ns)
    }

    /// Maximum retained windows (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.inner.as_ref().map_or(0, |inner| inner.capacity)
    }

    /// Close the current window now: snapshot `telemetry`, push the
    /// delta since the previous tick, evict beyond capacity.
    pub fn tick(&self, telemetry: &Telemetry) {
        let Some(inner) = &self.inner else {
            return;
        };
        let snapshot = telemetry.snapshot();
        let now_ns = telemetry.now_ns();
        let mut state = inner.state.lock().expect("timeseries state poisoned");
        let delta = snapshot.delta(&state.last);
        let window = Window {
            index: state.next_index,
            start_ns: state.last_ns,
            end_ns: now_ns,
            delta,
        };
        state.next_index += 1;
        state.last = snapshot;
        state.last_ns = now_ns;
        state.windows.push_back(window);
        while state.windows.len() > inner.capacity {
            state.windows.pop_front();
        }
    }

    /// Close the current window if at least the configured interval
    /// has elapsed since the last tick. Returns whether a window was
    /// closed. Cheap when it is not yet time: one clock read and one
    /// short-held lock.
    pub fn maybe_tick(&self, telemetry: &Telemetry) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        let now_ns = telemetry.now_ns();
        {
            let state = inner.state.lock().expect("timeseries state poisoned");
            if now_ns.saturating_sub(state.last_ns) < inner.interval_ns {
                return false;
            }
        }
        self.tick(telemetry);
        true
    }

    /// Nanoseconds until the next tick is due (the reactor's poll
    /// timeout bound). 0 when a tick is already due; `None` when
    /// disabled.
    pub fn ns_until_due(&self, telemetry: &Telemetry) -> Option<u64> {
        let inner = self.inner.as_ref()?;
        let now_ns = telemetry.now_ns();
        let state = inner.state.lock().expect("timeseries state poisoned");
        Some(
            inner
                .interval_ns
                .saturating_sub(now_ns.saturating_sub(state.last_ns)),
        )
    }

    /// The most recent `n` windows, oldest first.
    pub fn windows(&self, n: usize) -> Vec<Window> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let state = inner.state.lock().expect("timeseries state poisoned");
        let skip = state.windows.len().saturating_sub(n);
        state.windows.iter().skip(skip).cloned().collect()
    }

    /// Sum of a counter's per-window increments across the retained
    /// ring, plus the total retained duration in nanoseconds — the
    /// rolling rate numerator/denominator for health summaries.
    pub fn rolling_sum(&self, counter: &str) -> (u64, u64) {
        let Some(inner) = &self.inner else {
            return (0, 0);
        };
        let state = inner.state.lock().expect("timeseries state poisoned");
        let mut sum = 0u64;
        let mut span_ns = 0u64;
        for window in &state.windows {
            sum += window.delta.counters.get(counter).copied().unwrap_or(0);
            span_ns += window.duration_ns();
        }
        (sum, span_ns)
    }

    /// Render the most recent `n` windows as one stable JSON document
    /// (oldest window first). Two identical series serialize to
    /// identical bytes.
    pub fn history_json(&self, n: usize) -> String {
        let mut windows = Arr::new();
        for window in self.windows(n) {
            windows.raw(window.to_json());
        }
        Obj::new()
            .u64("interval_ns", self.interval_ns())
            .u64(
                "capacity",
                self.inner.as_ref().map_or(0, |i| i.capacity as u64),
            )
            .raw("windows", windows.finish())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_series_is_inert() {
        let series = TimeSeries::off();
        assert!(!series.is_enabled());
        series.tick(&Telemetry::deterministic());
        assert!(!series.maybe_tick(&Telemetry::deterministic()));
        assert!(series.windows(10).is_empty());
        assert_eq!(
            series.history_json(10),
            "{\"interval_ns\":0,\"capacity\":0,\"windows\":[]}"
        );
        assert_eq!(series.ns_until_due(&Telemetry::deterministic()), None);
    }

    #[test]
    fn ticks_capture_per_window_deltas() {
        let tel = Telemetry::deterministic();
        let series = TimeSeries::new(1, 8);
        tel.add("req", 3);
        series.tick(&tel);
        tel.add("req", 2);
        tel.observe("lat", 500);
        series.tick(&tel);
        let windows = series.windows(10);
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].delta.counters["req"], 3);
        assert_eq!(windows[1].delta.counters["req"], 2);
        assert_eq!(windows[1].delta.histograms["lat"].count(), 1);
        assert_eq!(windows[0].index, 0);
        assert_eq!(windows[1].index, 1);
        assert!(windows[1].start_ns >= windows[0].end_ns);
    }

    #[test]
    fn quiet_windows_are_empty() {
        let tel = Telemetry::deterministic();
        let series = TimeSeries::new(1, 8);
        tel.add("req", 1);
        series.tick(&tel);
        series.tick(&tel); // nothing happened in between
        let windows = series.windows(10);
        assert!(windows[1].delta.counters.is_empty());
        assert!(windows[1].delta.histograms.is_empty());
    }

    #[test]
    fn ring_evicts_but_indices_keep_counting() {
        let tel = Telemetry::deterministic();
        let series = TimeSeries::new(1, 3);
        for i in 0..5u64 {
            tel.add("n", i + 1);
            series.tick(&tel);
        }
        let windows = series.windows(10);
        assert_eq!(windows.len(), 3);
        let indices: Vec<u64> = windows.iter().map(|w| w.index).collect();
        assert_eq!(indices, vec![2, 3, 4]);
    }

    #[test]
    fn maybe_tick_respects_the_interval() {
        let tel = Telemetry::deterministic();
        // Fake clock: each reading advances 1000 ns; a 10_000 ns
        // interval needs several readings before a tick is due.
        let series = TimeSeries::new(10_000, 8);
        let mut ticks = 0;
        for _ in 0..40 {
            if series.maybe_tick(&tel) {
                ticks += 1;
            }
        }
        assert!(ticks >= 2, "expected periodic ticks, got {ticks}");
        assert!(
            ticks <= 8,
            "interval not respected: {ticks} ticks in 40 polls"
        );
    }

    #[test]
    fn rolling_sum_spans_the_retained_ring() {
        let tel = Telemetry::deterministic();
        let series = TimeSeries::new(1, 4);
        for _ in 0..3 {
            tel.add("serve.shed", 2);
            series.tick(&tel);
        }
        let (sum, span_ns) = series.rolling_sum("serve.shed");
        assert_eq!(sum, 6);
        assert!(span_ns > 0);
        assert_eq!(series.rolling_sum("absent").0, 0);
    }

    #[test]
    fn deterministic_history_is_byte_stable() {
        let run = || {
            let tel = Telemetry::deterministic();
            let series = TimeSeries::new(1_000, 8);
            for i in 0..4u64 {
                tel.add("req", i + 1);
                tel.observe("lat", 100 * (i + 1));
                drop(tel.timed("stage"));
                series.tick(&tel);
            }
            series.history_json(8)
        };
        let first = run();
        assert_eq!(first, run());
        assert!(first.contains("\"interval_ns\":1000"));
        assert!(first.contains("\"counters\":{\"req\":1}"));
    }
}
