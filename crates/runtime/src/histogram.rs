//! Log-linear latency histogram (HDR-style bucketing) for u64 values.
//!
//! Values are bucketed into 16 linear sub-buckets per power of two, so
//! the relative quantization error is bounded by 1/16 (6.25%) at any
//! magnitude while the whole u64 range fits in [`BUCKET_COUNT`] fixed
//! buckets — no configuration, no dynamic allocation on the record
//! path, and two histograms of the same family always share a bucket
//! layout, which makes merging a per-bucket addition exactly like
//! counters.
//!
//! Recording is lock-free: one `leading_zeros` + shift to find the
//! bucket, then three relaxed atomic updates (bucket count, running
//! sum, exact max via `fetch_max`). Quantile extraction walks the
//! cumulative bucket counts and reports the bucket's inclusive upper
//! bound clamped to the exact observed maximum, so the estimate is
//! always ≥ the true order statistic, lands in the *same bucket* as the
//! true order statistic, and `p100 == max` exactly.

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per power of two (the quantization denominator).
pub const SUB_BUCKETS: usize = 16;

/// Total number of buckets covering the full u64 range.
///
/// Indices 0..16 are exact (value == index); every further power of two
/// `2^e` (e in 4..=63) contributes [`SUB_BUCKETS`] buckets.
pub const BUCKET_COUNT: usize = SUB_BUCKETS + (64 - 4) * SUB_BUCKETS;

/// Bucket index of a value: exact below [`SUB_BUCKETS`], log-linear
/// above (high bit picks the exponent, next four bits the sub-bucket).
pub fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        return value as usize;
    }
    let exp = 63 - value.leading_zeros() as usize; // >= 4 here
    (exp - 3) * SUB_BUCKETS + ((value >> (exp - 4)) as usize & (SUB_BUCKETS - 1))
}

/// Smallest value mapping to bucket `index`.
pub fn bucket_lower(index: usize) -> u64 {
    debug_assert!(index < BUCKET_COUNT);
    if index < SUB_BUCKETS {
        return index as u64;
    }
    let exp = index / SUB_BUCKETS + 3;
    let sub = (index % SUB_BUCKETS) as u64;
    (SUB_BUCKETS as u64 + sub) << (exp - 4)
}

/// Largest value mapping to bucket `index` (inclusive; the Prometheus
/// `le` label of the bucket).
pub fn bucket_upper(index: usize) -> u64 {
    if index + 1 >= BUCKET_COUNT {
        return u64::MAX;
    }
    bucket_lower(index + 1) - 1
}

/// A lock-free log-linear histogram of u64 observations (typically
/// nanosecond durations).
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let data = self.data();
        f.debug_struct("Histogram")
            .field("count", &data.count())
            .field("sum", &data.sum)
            .field("max", &data.max)
            .finish()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation (three relaxed atomic updates).
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Freeze the current state into a plain, mergeable value. Only
    /// non-empty buckets are kept (the layout is implied by the index).
    pub fn data(&self) -> HistogramData {
        let mut buckets = std::collections::BTreeMap::new();
        for (index, cell) in self.buckets.iter().enumerate() {
            let count = cell.load(Ordering::Relaxed);
            if count > 0 {
                buckets.insert(index, count);
            }
        }
        HistogramData {
            buckets,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Merge a frozen snapshot back into this histogram (per-bucket
    /// addition; the exact max propagates through `fetch_max`).
    pub fn absorb(&self, data: &HistogramData) {
        for (&index, &count) in &data.buckets {
            if index < BUCKET_COUNT {
                self.buckets[index].fetch_add(count, Ordering::Relaxed);
            }
        }
        self.sum.fetch_add(data.sum, Ordering::Relaxed);
        self.max.fetch_max(data.max, Ordering::Relaxed);
    }
}

/// A frozen histogram: sparse sorted bucket counts plus exact sum/max.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramData {
    /// Non-empty buckets, by bucket index (see [`bucket_lower`] /
    /// [`bucket_upper`] for the value range of an index).
    pub buckets: std::collections::BTreeMap<usize, u64>,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Exact maximum recorded value (0 when empty).
    pub max: u64,
}

impl HistogramData {
    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.buckets.values().sum()
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) estimate: the inclusive upper
    /// bound of the bucket holding the rank-`ceil(q·count)` observation,
    /// clamped to the exact max. Empty histograms report 0. The
    /// estimate is ≥ the true order statistic and falls in the same
    /// bucket, bounding the relative error by 1/[`SUB_BUCKETS`].
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (&index, &bucket_count) in &self.buckets {
            seen += bucket_count;
            if seen >= rank {
                return bucket_upper(index).min(self.max);
            }
        }
        self.max
    }

    /// What was recorded between a previous cumulative snapshot and
    /// this one — the per-window distribution behind
    /// [`crate::timeseries`]. Buckets subtract (saturating, empty
    /// buckets dropped) and `sum` subtracts exactly; the per-window
    /// `max` is *estimated*, because cumulative snapshots only carry
    /// the all-time maximum: it is the inclusive upper bound of the
    /// highest bucket that gained observations, clamped to the
    /// cumulative max (exact whenever the window re-observed the
    /// all-time maximum's bucket, and never below the window's true
    /// maximum's bucket). An empty delta reports 0, like an empty
    /// histogram.
    pub fn delta(&self, prev: &HistogramData) -> HistogramData {
        let mut buckets = std::collections::BTreeMap::new();
        for (&index, &count) in &self.buckets {
            let gained = count.saturating_sub(prev.buckets.get(&index).copied().unwrap_or(0));
            if gained > 0 {
                buckets.insert(index, gained);
            }
        }
        let max = buckets
            .keys()
            .next_back()
            .map_or(0, |&index| bucket_upper(index).min(self.max));
        HistogramData {
            buckets,
            sum: self.sum.saturating_sub(prev.sum),
            max,
        }
    }

    /// Merge another frozen histogram into this one (bucket-wise
    /// addition, exact max of maxes).
    pub fn merge(&mut self, other: &HistogramData) {
        for (&index, &count) in &other.buckets {
            *self.buckets.entry(index).or_insert(0) += count;
        }
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Render as a stable JSON object: sparse buckets keyed by their
    /// inclusive upper bound, then count/max/quantiles/sum. Two equal
    /// snapshots serialize to identical bytes (BTreeMap iteration
    /// order).
    pub fn to_json(&self) -> String {
        let mut buckets = crate::json::Obj::new();
        for (&index, &count) in &self.buckets {
            buckets.u64(&bucket_upper(index).to_string(), count);
        }
        crate::json::Obj::new()
            .raw("buckets", buckets.finish())
            .u64("count", self.count())
            .u64("max", self.max)
            .u64("p50", self.quantile(0.50))
            .u64("p90", self.quantile(0.90))
            .u64("p99", self.quantile(0.99))
            .u64("sum", self.sum)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_consistent() {
        // Every bucket's bounds round-trip through bucket_index, and the
        // buckets tile the u64 range without gaps or overlaps.
        for index in 0..BUCKET_COUNT {
            let lower = bucket_lower(index);
            let upper = bucket_upper(index);
            assert!(lower <= upper, "bucket {index}: {lower} > {upper}");
            assert_eq!(bucket_index(lower), index, "lower of {index}");
            assert_eq!(bucket_index(upper), index, "upper of {index}");
            if index + 1 < BUCKET_COUNT {
                assert_eq!(bucket_lower(index + 1), upper + 1, "gap after {index}");
            } else {
                assert_eq!(upper, u64::MAX);
            }
        }
    }

    #[test]
    fn boundary_values_land_in_their_buckets() {
        // Exact region: value == index.
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
        }
        // Powers of two open a fresh sub-bucket run.
        assert_eq!(bucket_index(16), 16);
        assert_eq!(bucket_index(31), 31);
        assert_eq!(bucket_index(32), 32);
        assert_eq!(bucket_index(33), 32); // quantized: 2 values per bucket
        assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);
        // Relative error bound: width/lower <= 1/16.
        for &v in &[100u64, 1_000, 12_345, 1 << 40, u64::MAX / 3] {
            let i = bucket_index(v);
            let width = bucket_upper(i) - bucket_lower(i) + 1;
            assert!(
                (width as f64) / (bucket_lower(i) as f64) <= 1.0 / 16.0 + 1e-9,
                "bucket {i} width {width} lower {}",
                bucket_lower(i)
            );
        }
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        let data = h.data();
        assert_eq!(data.count(), 0);
        assert_eq!(data.sum, 0);
        assert_eq!(data.max, 0);
        assert_eq!(data.quantile(0.5), 0);
        assert_eq!(
            data.to_json(),
            "{\"buckets\":{},\"count\":0,\"max\":0,\"p50\":0,\"p90\":0,\"p99\":0,\"sum\":0}"
        );
    }

    #[test]
    fn quantiles_track_recorded_values() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v * 1_000);
        }
        let data = h.data();
        assert_eq!(data.count(), 100);
        assert_eq!(data.max, 100_000);
        assert_eq!(data.sum, 5_050_000);
        // Estimates are >= the true order statistic and in its bucket.
        for (q, oracle) in [(0.50, 50_000u64), (0.90, 90_000), (0.99, 99_000)] {
            let est = data.quantile(q);
            assert!(est >= oracle, "q{q}: {est} < {oracle}");
            assert_eq!(bucket_index(est), bucket_index(oracle), "q{q}");
        }
        assert_eq!(data.quantile(1.0), 100_000, "p100 is the exact max");
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let h = Histogram::new();
        for v in [3u64, 17, 17, 40, 900, 12_345, 12_345, 1 << 30] {
            h.record(v);
        }
        let data = h.data();
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        for pair in qs.windows(2) {
            assert!(
                data.quantile(pair[0]) <= data.quantile(pair[1]),
                "quantile not monotone at {pair:?}"
            );
        }
    }

    #[test]
    fn merge_is_associative_and_matches_combined_recording() {
        let record = |values: &[u64]| {
            let h = Histogram::new();
            for &v in values {
                h.record(v);
            }
            h.data()
        };
        let a = record(&[1, 5, 900, 44]);
        let b = record(&[17, 17, 1 << 20]);
        let c = record(&[u64::MAX, 0, 3]);
        // (a+b)+c == a+(b+c)
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
        // Merged result equals recording everything into one histogram.
        let all = record(&[1, 5, 900, 44, 17, 17, 1 << 20, u64::MAX, 0, 3]);
        assert_eq!(left, all);
        assert_eq!(left.count(), 10);
    }

    #[test]
    fn absorb_merges_into_live_histogram() {
        let live = Histogram::new();
        live.record(10);
        let frozen = {
            let h = Histogram::new();
            h.record(1_000);
            h.record(2_000);
            h.data()
        };
        live.absorb(&frozen);
        let data = live.data();
        assert_eq!(data.count(), 3);
        assert_eq!(data.sum, 3_010);
        assert_eq!(data.max, 2_000);
    }

    #[test]
    fn empty_window_delta_reports_zero_quantiles() {
        // A window in which the histogram saw no traffic: the delta is
        // indistinguishable from an empty histogram — no buckets, zero
        // quantiles at every q, zero max — even though the cumulative
        // snapshot it came from is non-empty.
        let h = Histogram::new();
        for v in [5u64, 900, 1 << 20] {
            h.record(v);
        }
        let cumulative = h.data();
        let idle = cumulative.delta(&cumulative);
        assert!(idle.buckets.is_empty());
        assert_eq!(idle.count(), 0);
        assert_eq!(idle.sum, 0);
        assert_eq!(idle.max, 0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(idle.quantile(q), 0, "q{q} of an empty window");
        }
        assert_eq!(
            idle.to_json(),
            "{\"buckets\":{},\"count\":0,\"max\":0,\"p50\":0,\"p90\":0,\"p99\":0,\"sum\":0}"
        );
    }

    #[test]
    fn window_delta_tracks_what_the_window_recorded() {
        let h = Histogram::new();
        h.record(100);
        h.record(200_000);
        let before = h.data();
        h.record(150);
        h.record(151);
        h.record(3_000);
        let after = h.data();
        let window = after.delta(&before);
        assert_eq!(window.count(), 3);
        assert_eq!(window.sum, 150 + 151 + 3_000);
        // The window's max estimate lands in the true window-max's
        // bucket, not the cumulative max's (200_000) bucket.
        assert_eq!(bucket_index(window.max), bucket_index(3_000));
        assert!(window.max >= 3_000);
        // And the quantiles describe only the window's observations.
        assert_eq!(bucket_index(window.quantile(0.5)), bucket_index(151));
    }

    #[test]
    fn window_max_is_exact_when_the_window_reobserves_the_max_bucket() {
        let h = Histogram::new();
        h.record(70_000);
        let before = h.data();
        h.record(70_000);
        h.record(10);
        let window = h.data().delta(&before);
        // The cumulative max (exact 70_000) lives in the window's
        // highest gained bucket, so clamping recovers it exactly.
        assert_eq!(window.max, 70_000);
        assert_eq!(window.quantile(1.0), 70_000);
    }

    #[test]
    fn max_tracking_survives_absorbed_windows() {
        // A live histogram that absorbs frozen per-request snapshots
        // (the serve path) must keep the exact max across absorptions,
        // and windows cut around those absorptions see their own maxes.
        let live = Histogram::new();
        let frozen_big = {
            let h = Histogram::new();
            h.record(500_000);
            h.data()
        };
        let frozen_small = {
            let h = Histogram::new();
            h.record(30);
            h.data()
        };
        live.absorb(&frozen_big);
        let before = live.data();
        assert_eq!(before.max, 500_000);
        live.absorb(&frozen_small);
        let after = live.data();
        assert_eq!(after.max, 500_000, "absorb keeps the exact max");
        let window = after.delta(&before);
        assert_eq!(window.count(), 1);
        assert_eq!(bucket_index(window.max), bucket_index(30));
        assert!(window.max < 500_000, "window max is not the all-time max");
    }

    #[test]
    fn sub_bucket_boundaries_at_powers_of_two_delta_cleanly() {
        // Powers of two open a fresh sub-bucket run; the values just
        // below and at the boundary land in different buckets and must
        // not bleed into each other across a window delta.
        for exp in [4u32, 5, 10, 20, 40] {
            let p = 1u64 << exp;
            let h = Histogram::new();
            h.record(p - 1);
            let before = h.data();
            h.record(p);
            let window = h.data().delta(&before);
            assert_ne!(
                bucket_index(p - 1),
                bucket_index(p),
                "2^{exp} shares a bucket with its predecessor"
            );
            assert_eq!(window.count(), 1, "2^{exp}");
            assert_eq!(
                window.buckets.keys().copied().collect::<Vec<_>>(),
                vec![bucket_index(p)],
                "2^{exp}: only the boundary bucket gained"
            );
            // The boundary value is the lower bound of its bucket, and
            // the window max estimate stays within that bucket.
            assert_eq!(bucket_lower(bucket_index(p)), p, "2^{exp}");
            assert_eq!(bucket_index(window.max), bucket_index(p), "2^{exp}");
        }
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..1_000u64 {
                        h.record(t * 1_000 + i);
                    }
                });
            }
        });
        assert_eq!(h.data().count(), 4_000);
    }
}
