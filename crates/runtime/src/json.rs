//! Shared stable-JSON emission helpers.
//!
//! The workspace is dependency-free, so every component that emits JSON
//! (telemetry snapshots, the benchmark harness, the evaluation tables,
//! the HTTP server's responses) hand-rolls its document. This module is
//! the single writer they all share: string escaping per RFC 8259, a
//! fixed-decimal float formatter that maps non-finite values to `null`,
//! and two tiny builders ([`Obj`], [`Arr`]) that keep the punctuation
//! right. Key order is the caller's responsibility — emit from sorted
//! maps and two identical documents serialize to identical bytes.

/// Escape `text` for inclusion inside a JSON string literal (quotes not
/// included).
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// `text` as a quoted, escaped JSON string literal.
pub fn quoted(text: &str) -> String {
    format!("\"{}\"", escape(text))
}

/// A finite float with `decimals` fraction digits; `null` otherwise
/// (JSON has no NaN/Infinity).
pub fn number(value: f64, decimals: usize) -> String {
    if value.is_finite() {
        format!("{value:.decimals$}")
    } else {
        "null".to_string()
    }
}

/// Incremental JSON object builder. Values are raw JSON fragments; use
/// the typed helpers for scalars.
#[derive(Debug, Default)]
pub struct Obj {
    body: String,
}

impl Obj {
    /// An empty object.
    pub fn new() -> Self {
        Obj::default()
    }

    /// Append `key` with a pre-rendered JSON `value`.
    pub fn raw(&mut self, key: &str, value: impl AsRef<str>) -> &mut Self {
        if !self.body.is_empty() {
            self.body.push(',');
        }
        self.body.push_str(&quoted(key));
        self.body.push(':');
        self.body.push_str(value.as_ref());
        self
    }

    /// Append a string field.
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.raw(key, quoted(value))
    }

    /// Append an unsigned integer field.
    pub fn u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.raw(key, value.to_string())
    }

    /// Append a boolean field.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.raw(key, if value { "true" } else { "false" })
    }

    /// Append a float field with `decimals` fraction digits (`null` when
    /// non-finite).
    pub fn f64(&mut self, key: &str, value: f64, decimals: usize) -> &mut Self {
        self.raw(key, number(value, decimals))
    }

    /// Render `{...}`.
    pub fn finish(&self) -> String {
        format!("{{{}}}", self.body)
    }
}

/// Incremental JSON array builder.
#[derive(Debug, Default)]
pub struct Arr {
    body: String,
}

impl Arr {
    /// An empty array.
    pub fn new() -> Self {
        Arr::default()
    }

    /// Append a pre-rendered JSON `value`.
    pub fn raw(&mut self, value: impl AsRef<str>) -> &mut Self {
        if !self.body.is_empty() {
            self.body.push(',');
        }
        self.body.push_str(value.as_ref());
        self
    }

    /// Append a string element.
    pub fn str(&mut self, value: &str) -> &mut Self {
        self.raw(quoted(value))
    }

    /// Render `[...]`.
    pub fn finish(&self) -> String {
        format!("[{}]", self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_specials() {
        assert_eq!(escape("a\"b\\c\nd\te\r"), "a\\\"b\\\\c\\nd\\te\\r");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
        assert_eq!(quoted("x\"y"), "\"x\\\"y\"");
    }

    #[test]
    fn numbers_are_fixed_decimal_or_null() {
        assert_eq!(number(1.5, 3), "1.500");
        assert_eq!(number(2.0, 6), "2.000000");
        assert_eq!(number(f64::NAN, 3), "null");
        assert_eq!(number(f64::INFINITY, 3), "null");
    }

    #[test]
    fn object_builder_punctuates() {
        let mut obj = Obj::new();
        obj.str("name", "qi")
            .u64("count", 3)
            .bool("ok", true)
            .f64("ms", 1.25, 3)
            .raw("nested", Obj::new().u64("x", 1).finish());
        assert_eq!(
            obj.finish(),
            "{\"name\":\"qi\",\"count\":3,\"ok\":true,\"ms\":1.250,\"nested\":{\"x\":1}}"
        );
        assert_eq!(Obj::new().finish(), "{}");
    }

    #[test]
    fn array_builder_punctuates() {
        let mut arr = Arr::new();
        arr.str("a").raw("1").raw("null");
        assert_eq!(arr.finish(), "[\"a\",1,null]");
        assert_eq!(Arr::new().finish(), "[]");
    }
}
