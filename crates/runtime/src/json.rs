//! Shared stable-JSON emission helpers.
//!
//! The workspace is dependency-free, so every component that emits JSON
//! (telemetry snapshots, the benchmark harness, the evaluation tables,
//! the HTTP server's responses) hand-rolls its document. This module is
//! the single writer they all share: string escaping per RFC 8259, a
//! fixed-decimal float formatter that maps non-finite values to `null`,
//! and two tiny builders ([`Obj`], [`Arr`]) that keep the punctuation
//! right. Key order is the caller's responsibility — emit from sorted
//! maps and two identical documents serialize to identical bytes.

/// Escape `text` for inclusion inside a JSON string literal (quotes not
/// included).
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// `text` as a quoted, escaped JSON string literal.
pub fn quoted(text: &str) -> String {
    format!("\"{}\"", escape(text))
}

/// A finite float with `decimals` fraction digits; `null` otherwise
/// (JSON has no NaN/Infinity).
pub fn number(value: f64, decimals: usize) -> String {
    if value.is_finite() {
        format!("{value:.decimals$}")
    } else {
        "null".to_string()
    }
}

/// Incremental JSON object builder. Values are raw JSON fragments; use
/// the typed helpers for scalars.
#[derive(Debug, Default)]
pub struct Obj {
    body: String,
}

impl Obj {
    /// An empty object.
    pub fn new() -> Self {
        Obj::default()
    }

    /// Append `key` with a pre-rendered JSON `value`.
    pub fn raw(&mut self, key: &str, value: impl AsRef<str>) -> &mut Self {
        if !self.body.is_empty() {
            self.body.push(',');
        }
        self.body.push_str(&quoted(key));
        self.body.push(':');
        self.body.push_str(value.as_ref());
        self
    }

    /// Append a string field.
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.raw(key, quoted(value))
    }

    /// Append an unsigned integer field.
    pub fn u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.raw(key, value.to_string())
    }

    /// Append a boolean field.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.raw(key, if value { "true" } else { "false" })
    }

    /// Append a float field with `decimals` fraction digits (`null` when
    /// non-finite).
    pub fn f64(&mut self, key: &str, value: f64, decimals: usize) -> &mut Self {
        self.raw(key, number(value, decimals))
    }

    /// Render `{...}`.
    pub fn finish(&self) -> String {
        format!("{{{}}}", self.body)
    }
}

/// Incremental JSON array builder.
#[derive(Debug, Default)]
pub struct Arr {
    body: String,
}

impl Arr {
    /// An empty array.
    pub fn new() -> Self {
        Arr::default()
    }

    /// Append a pre-rendered JSON `value`.
    pub fn raw(&mut self, value: impl AsRef<str>) -> &mut Self {
        if !self.body.is_empty() {
            self.body.push(',');
        }
        self.body.push_str(value.as_ref());
        self
    }

    /// Append a string element.
    pub fn str(&mut self, value: &str) -> &mut Self {
        self.raw(quoted(value))
    }

    /// Render `[...]`.
    pub fn finish(&self) -> String {
        format!("[{}]", self.body)
    }
}

/// A parsed JSON value — the reader half of this module, used by
/// clients of the server's JSON endpoints (`qi top` polling
/// `/metrics/history`). Object keys keep document order in a plain
/// `Vec`; lookups are linear, which is the right trade for the small
/// dashboard payloads this is built for.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64; u64 counters up to 2^53 round-trip).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member of an object by key (first match), if this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a u64 (truncating), if this is a non-negative
    /// number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Shorthand: `self.get(key)` as u64, defaulting to 0.
    pub fn u64_or_zero(&self, key: &str) -> u64 {
        self.get(key).and_then(Json::as_u64).unwrap_or(0)
    }
}

/// Parse one JSON document (trailing whitespace allowed, trailing
/// garbage is an error). Errors carry the byte offset.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {pos}", byte as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        // Surrogate pairs are not needed for our own
                        // documents (the writer only \u-escapes
                        // controls); map lone surrogates to U+FFFD.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so the
                // boundaries are valid).
                let rest = unsafe { std::str::from_utf8_unchecked(&bytes[*pos..]) };
                let ch = rest.chars().next().expect("non-empty");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        members.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_specials() {
        assert_eq!(escape("a\"b\\c\nd\te\r"), "a\\\"b\\\\c\\nd\\te\\r");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
        assert_eq!(quoted("x\"y"), "\"x\\\"y\"");
    }

    #[test]
    fn numbers_are_fixed_decimal_or_null() {
        assert_eq!(number(1.5, 3), "1.500");
        assert_eq!(number(2.0, 6), "2.000000");
        assert_eq!(number(f64::NAN, 3), "null");
        assert_eq!(number(f64::INFINITY, 3), "null");
    }

    #[test]
    fn object_builder_punctuates() {
        let mut obj = Obj::new();
        obj.str("name", "qi")
            .u64("count", 3)
            .bool("ok", true)
            .f64("ms", 1.25, 3)
            .raw("nested", Obj::new().u64("x", 1).finish());
        assert_eq!(
            obj.finish(),
            "{\"name\":\"qi\",\"count\":3,\"ok\":true,\"ms\":1.250,\"nested\":{\"x\":1}}"
        );
        assert_eq!(Obj::new().finish(), "{}");
    }

    #[test]
    fn array_builder_punctuates() {
        let mut arr = Arr::new();
        arr.str("a").raw("1").raw("null");
        assert_eq!(arr.finish(), "[\"a\",1,null]");
        assert_eq!(Arr::new().finish(), "[]");
    }

    #[test]
    fn parser_round_trips_writer_output() {
        let doc = Obj::new()
            .str("name", "qi \"top\"")
            .u64("count", 42)
            .bool("ok", true)
            .f64("ms", 1.25, 3)
            .raw("null_field", "null")
            .raw("list", Arr::new().raw("1").raw("2").str("x").finish())
            .raw("nested", Obj::new().u64("deep", 7).finish())
            .finish();
        let parsed = parse(&doc).expect("parse");
        assert_eq!(
            parsed.get("name").and_then(Json::as_str),
            Some("qi \"top\"")
        );
        assert_eq!(parsed.u64_or_zero("count"), 42);
        assert_eq!(parsed.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(parsed.get("ms").and_then(Json::as_f64), Some(1.25));
        assert_eq!(parsed.get("null_field"), Some(&Json::Null));
        assert_eq!(
            parsed.get("list").and_then(Json::as_array).map(|l| l.len()),
            Some(3)
        );
        assert_eq!(parsed.get("nested").map(|n| n.u64_or_zero("deep")), Some(7));
        assert_eq!(parsed.u64_or_zero("absent"), 0);
    }

    #[test]
    fn parser_handles_whitespace_escapes_and_numbers() {
        let parsed = parse(" { \"a\" : [ -1.5e2 , \"t\\u0041b\\n\" ] } ").expect("parse");
        let list = parsed.get("a").and_then(Json::as_array).expect("array");
        assert_eq!(list[0].as_f64(), Some(-150.0));
        assert_eq!(list[1].as_str(), Some("tAb\n"));
        assert_eq!(parse("[]").expect("empty array"), Json::Arr(vec![]));
        assert_eq!(parse("{}").expect("empty object"), Json::Obj(vec![]));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }
}
