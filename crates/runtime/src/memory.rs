//! Process memory audit via `/proc/self/status`.
//!
//! The 1000× pipeline runs are memory-bound long before they are
//! CPU-bound if sharding ever regresses to materializing the whole
//! corpus' prepared artifacts at once, so the bench harness samples the
//! kernel's own high-water mark (`VmHWM`, peak resident set) and the
//! current resident set (`VmRSS`) and reports both in `BENCH_core.json`,
//! where `bench.sh` gates growth against the committed reference.
//! Std-only: the numbers come from parsing the procfs status file, which
//! exists on every Linux the project targets; other platforms get `None`
//! and the callers report the sample as unavailable rather than lying.

/// Peak resident set size of the current process in bytes (`VmHWM`), or
/// `None` when the platform has no procfs.
pub fn peak_rss_bytes() -> Option<u64> {
    proc_status_kb("VmHWM:").map(|kb| kb * 1024)
}

/// Current resident set size of the current process in bytes (`VmRSS`),
/// or `None` when the platform has no procfs.
pub fn current_rss_bytes() -> Option<u64> {
    proc_status_kb("VmRSS:").map(|kb| kb * 1024)
}

/// Read one `kB`-denominated field out of `/proc/self/status`.
fn proc_status_kb(key: &str) -> Option<u64> {
    if !cfg!(target_os = "linux") {
        return None;
    }
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix(key) {
            let number = rest.trim().trim_end_matches("kB").trim();
            return number.parse::<u64>().ok();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn rss_samples_are_positive_and_ordered() {
        let peak = peak_rss_bytes().expect("VmHWM readable on linux");
        let current = current_rss_bytes().expect("VmRSS readable on linux");
        assert!(current > 0);
        assert!(
            peak >= current,
            "high-water mark {peak} below current RSS {current}"
        );
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn peak_tracks_allocation_growth() {
        let before = peak_rss_bytes().unwrap();
        // 64 MiB touched page by page: VmHWM must move if it was near
        // the current RSS, and can never move backwards.
        let mut buf = vec![0u8; 64 << 20];
        for i in (0..buf.len()).step_by(4096) {
            buf[i] = 1;
        }
        let after = peak_rss_bytes().unwrap();
        assert!(
            after >= before,
            "VmHWM moved backwards: {before} -> {after}"
        );
        // Keep the buffer alive past the second sample.
        assert_eq!(buf[0], 1);
    }
}
