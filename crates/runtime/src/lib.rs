//! Zero-dependency parallel runtime for the labeling pipeline.
//!
//! The paper's pipeline is dominated by repeated lexical queries —
//! normalization, Porter stemming, WordNet base-form lookup and transitive
//! hypernymy tests (Definition 1) — executed once per token per cluster
//! per domain. This crate supplies the concurrency substrate those hot
//! paths run through, built exclusively on `std`:
//!
//! * [`ShardedCache`] — an N-way lock-striped concurrent memo-cache with
//!   hit/miss counters and a global enable switch (so benchmarks can
//!   measure the uncached pipeline);
//! * [`Interner`] — an append-only string arena mapping labels to dense
//!   [`Symbol`]s, with `Arc<str>` leases for the public API, turning label
//!   equality into integer equality;
//! * [`pool`] — a bounded scoped thread pool (`std::thread::scope`,
//!   worker count clamped to [`pool::max_threads`]) with ordered results
//!   and per-item panic isolation;
//! * [`SplitMix64`] — a tiny deterministic PRNG for synthetic-domain
//!   generation (replaces the external `rand` crate);
//! * [`telemetry`] — a thread-safe registry of named counters, gauges and
//!   hierarchical span timers with a pointer-check disabled mode and
//!   stable-JSON emission;
//! * [`json`] — the shared stable-JSON writer (escaping, fixed-decimal
//!   numbers, object/array builders) behind every JSON document the
//!   workspace emits;
//! * [`events`] — a bounded ring-buffer flight recorder of structured
//!   runtime events with per-category sampling and an explicit drop
//!   watermark;
//! * [`timeseries`] — a fixed-capacity ring of per-interval
//!   [`MetricsSnapshot`] deltas (windowed rates and quantiles over the
//!   cumulative registry);
//! * [`JobQueue`] — a bounded close-aware job queue for long-lived
//!   worker pools (the HTTP server's reactor/worker handoff);
//! * [`netpoll`] — level-triggered `poll(2)` readiness polling and a
//!   self-wake channel (the HTTP reactor's only platform primitive).

pub mod cache;
pub mod events;
pub mod export;
pub mod histogram;
pub mod intern;
pub mod json;
pub mod memory;
#[cfg(unix)]
pub mod netpoll;
pub mod pool;
pub mod rng;
pub mod telemetry;
pub mod timeseries;

pub use cache::{CacheStats, ShardedCache};
pub use events::{Category, Event, EventRecorder, EventsPage, FieldValue, Severity};
pub use export::{chrome_trace, prometheus_text};
pub use histogram::{Histogram, HistogramData};
pub use intern::{Interner, Symbol};
pub use memory::{current_rss_bytes, peak_rss_bytes};
pub use pool::{parallel_map, parallel_map_chunked, parallel_try_map, resolve_threads, JobQueue};
pub use rng::SplitMix64;
pub use telemetry::{Counter, MetricsSnapshot, SpanData, Telemetry, TelemetryMode};
pub use timeseries::{TimeSeries, Window};
