//! Minimal readiness polling for the serving tier — `poll(2)` plus a
//! self-wake channel, with no external crates.
//!
//! The HTTP reactor needs exactly three primitives: "which of these
//! sockets are readable/writable", "wait at most this long", and "wake
//! the poller from another thread". `std` exposes none of them, so this
//! module declares the one libc symbol required (`poll` — already
//! linked into every Rust binary on unix) and builds the waker from a
//! nonblocking [`UnixStream`] pair. Level-triggered `poll(2)` is chosen
//! over `epoll`/`kqueue` deliberately: it is portable across unix
//! targets with a single `extern` declaration, needs no registration
//! lifecycle, and the serving tier re-derives its interest set each
//! iteration anyway (the fd table is the reactor's own connection
//! slab, so rebuilding the `pollfd` array is a linear copy, cheap for
//! the thousands-of-connections scale this server targets).

use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::time::Duration;

// `poll(2)` event bits, identical across linux and the BSDs.
const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;
const POLLNVAL: i16 = 0x020;

/// `nfds_t`: `unsigned long` on linux, `unsigned int` on the BSDs and
/// macOS.
#[cfg(target_os = "linux")]
type Nfds = std::ffi::c_ulong;
#[cfg(not(target_os = "linux"))]
type Nfds = std::ffi::c_uint;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: Nfds, timeout: std::ffi::c_int) -> std::ffi::c_int;
}

/// One `struct pollfd`: an fd, the readiness we ask about, and the
/// readiness the kernel reported.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

impl PollFd {
    /// Watch `fd` for the given interest. A `PollFd` with neither flag
    /// still reports errors and hangups.
    pub fn new(fd: RawFd, readable: bool, writable: bool) -> PollFd {
        let mut events = 0;
        if readable {
            events |= POLLIN;
        }
        if writable {
            events |= POLLOUT;
        }
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// The watched file descriptor.
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Reading will not block (data, EOF, error, or hangup pending).
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLHUP | POLLERR) != 0
    }

    /// Writing will not block (or the write would fail immediately).
    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLERR | POLLHUP) != 0
    }

    /// The kernel flagged this fd as closed, errored, or invalid; the
    /// owner should drop the connection.
    pub fn failed(&self) -> bool {
        self.revents & (POLLERR | POLLNVAL) != 0
    }

    /// Any readiness at all was reported.
    pub fn ready(&self) -> bool {
        self.revents != 0
    }
}

/// Block until at least one fd is ready or the timeout elapses; `None`
/// waits indefinitely. Returns the number of ready fds (0 on timeout).
/// `EINTR` retries transparently — callers re-derive their deadlines
/// each iteration anyway.
pub fn poll_fds(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    let timeout_ms: std::ffi::c_int = match timeout {
        None => -1,
        // Round up so a 100µs deadline does not spin at timeout 0.
        Some(d) => d.as_millis().saturating_add(1).min(i32::MAX as u128) as std::ffi::c_int,
    };
    loop {
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as Nfds, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// The sending half of a self-wake channel: any thread may call
/// [`Waker::wake`] to make a blocked [`poll_fds`] return, provided the
/// poller watches [`WakeReceiver`] for readability.
#[derive(Clone)]
pub struct Waker {
    tx: Arc<UnixStream>,
}

impl Waker {
    /// Make the poller's next (or current) poll observe readiness.
    /// Cheap and coalescing: a full pipe means a wake is already
    /// pending, which is all a level-triggered poller needs.
    pub fn wake(&self) {
        let _ = (&*self.tx).write(&[1]);
    }
}

/// The receiving half: registered (via [`WakeReceiver::as_raw_fd`]) in
/// every poll, drained once readable.
pub struct WakeReceiver {
    rx: UnixStream,
}

impl WakeReceiver {
    /// Consume every pending wake byte so level-triggered polling stops
    /// reporting readiness until the next [`Waker::wake`].
    pub fn drain(&self) {
        let mut sink = [0u8; 64];
        while matches!((&self.rx).read(&mut sink), Ok(n) if n > 0) {}
    }
}

impl AsRawFd for WakeReceiver {
    fn as_raw_fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }
}

/// Build a connected waker pair; both ends are nonblocking.
pub fn waker() -> io::Result<(Waker, WakeReceiver)> {
    let (tx, rx) = UnixStream::pair()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    Ok((Waker { tx: Arc::new(tx) }, WakeReceiver { rx }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poll_reports_readable_after_a_write() {
        let (a, b) = UnixStream::pair().unwrap();
        let mut fds = [PollFd::new(b.as_raw_fd(), true, false)];
        // Nothing written yet: times out with no readiness.
        let n = poll_fds(&mut fds, Some(Duration::from_millis(5))).unwrap();
        assert_eq!(n, 0);
        assert!(!fds[0].readable());

        (&a).write_all(b"x").unwrap();
        let mut fds = [PollFd::new(b.as_raw_fd(), true, false)];
        let n = poll_fds(&mut fds, Some(Duration::from_millis(1000))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable());
        assert!(!fds[0].failed());
    }

    #[test]
    fn poll_reports_writable_immediately() {
        let (a, _b) = UnixStream::pair().unwrap();
        let mut fds = [PollFd::new(a.as_raw_fd(), false, true)];
        let n = poll_fds(&mut fds, Some(Duration::from_millis(1000))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].writable());
    }

    #[test]
    fn waker_unblocks_and_drains() {
        let (waker, receiver) = waker().unwrap();
        let mut fds = [PollFd::new(receiver.as_raw_fd(), true, false)];
        assert_eq!(
            poll_fds(&mut fds, Some(Duration::from_millis(5))).unwrap(),
            0
        );

        // Wakes coalesce: many wakes, one readable edge, one drain.
        for _ in 0..100 {
            waker.wake();
        }
        let mut fds = [PollFd::new(receiver.as_raw_fd(), true, false)];
        assert_eq!(
            poll_fds(&mut fds, Some(Duration::from_millis(1000))).unwrap(),
            1
        );
        assert!(fds[0].readable());
        receiver.drain();
        let mut fds = [PollFd::new(receiver.as_raw_fd(), true, false)];
        assert_eq!(
            poll_fds(&mut fds, Some(Duration::from_millis(5))).unwrap(),
            0
        );

        // A wake from another thread unblocks a poller mid-wait.
        let fd = receiver.as_raw_fd();
        let waker_thread = {
            let waker = waker.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                waker.wake();
            })
        };
        let mut fds = [PollFd::new(fd, true, false)];
        let n = poll_fds(&mut fds, Some(Duration::from_secs(10))).unwrap();
        assert_eq!(n, 1);
        waker_thread.join().unwrap();
    }
}
