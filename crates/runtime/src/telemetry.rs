//! Zero-dependency pipeline telemetry: named counters, gauges and
//! hierarchical scoped span timers, aggregated per run and emitted as a
//! stable JSON document.
//!
//! The registry is a cheap cloneable handle ([`Telemetry`]) wrapping an
//! `Option<Arc<_>>`. The disabled handle ([`Telemetry::off`]) carries
//! `None`, so every instrument call on a cold pipeline reduces to one
//! pointer check — no allocation, no lock, no clock read. Hot paths are
//! expected to either hold a pre-resolved [`Counter`] (an
//! `Option<Arc<AtomicU64>>`, increment = one relaxed `fetch_add`) or to
//! accumulate into plain local structs and record once per stage.
//!
//! Span names are hierarchical by dotted path (`label.phase1.groups` is
//! a child of `label.phase1`, which is a child of `label`); the snapshot
//! keeps them in a sorted map so nesting invariants (child time ≤ parent
//! time) are checkable and the JSON key order is stable.
//!
//! Two clocks are provided. [`TelemetryMode::Wall`] reads
//! `std::time::Instant`; [`TelemetryMode::Deterministic`] uses a virtual
//! clock that advances a fixed step per reading, so a single-threaded
//! run emits *byte-identical* metrics documents across invocations —
//! the property the integration suite asserts and the `--metrics`
//! acceptance check relies on.

use crate::events::{Category, EventRecorder, FieldValue, Severity};
use crate::histogram::{Histogram, HistogramData};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// How (and whether) a pipeline run collects telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TelemetryMode {
    /// No registry: every instrument call is a pointer check.
    #[default]
    Off,
    /// Real wall-clock span timings (`std::time::Instant`).
    Wall,
    /// Virtual clock advancing [`FAKE_CLOCK_STEP_NS`] per reading —
    /// byte-stable output for determinism tests and golden files.
    Deterministic,
}

/// Step of the deterministic virtual clock, per clock reading.
pub const FAKE_CLOCK_STEP_NS: u64 = 1_000;

impl TelemetryMode {
    /// Build a registry handle for this mode.
    pub fn build(self) -> Telemetry {
        match self {
            TelemetryMode::Off => Telemetry::off(),
            TelemetryMode::Wall => Telemetry::new(),
            TelemetryMode::Deterministic => Telemetry::deterministic(),
        }
    }
}

enum Clock {
    Wall(Instant),
    Fake(AtomicU64),
}

impl Clock {
    fn now_ns(&self) -> u64 {
        match self {
            Clock::Wall(epoch) => epoch.elapsed().as_nanos() as u64,
            Clock::Fake(ticks) => ticks
                .fetch_add(1, Ordering::Relaxed)
                .wrapping_add(1)
                .wrapping_mul(FAKE_CLOCK_STEP_NS),
        }
    }
}

/// Accumulated time of one named span: total nanoseconds and the number
/// of times the span was entered.
#[derive(Debug, Default)]
struct SpanAccum {
    total_ns: AtomicU64,
    count: AtomicU64,
}

struct Inner {
    counters: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    spans: RwLock<BTreeMap<String, Arc<SpanAccum>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
    /// Optional flight recorder (see [`crate::events`]). Disabled by
    /// default; [`Telemetry::attach_events`] installs one so existing
    /// call sites can emit events without new plumbing.
    events: RwLock<EventRecorder>,
    clock: Clock,
}

impl Inner {
    fn entry<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
        if let Some(hit) = map.read().expect("telemetry map poisoned").get(name) {
            return Arc::clone(hit);
        }
        let mut write = map.write().expect("telemetry map poisoned");
        Arc::clone(
            write
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(T::default())),
        )
    }
}

/// A handle on a metrics registry (or on nothing, when disabled).
///
/// Clones share the registry. `Telemetry` is `Send + Sync`; one handle
/// can serve a whole parallel stage.
#[derive(Clone)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::off()
    }
}

impl Telemetry {
    /// The disabled registry: every call is a pointer check and
    /// [`Telemetry::snapshot`] is empty.
    pub fn off() -> Self {
        Telemetry { inner: None }
    }

    /// An enabled registry on the wall clock.
    pub fn new() -> Self {
        Telemetry::with_clock(Clock::Wall(Instant::now()))
    }

    /// An enabled registry on the deterministic virtual clock (fixed
    /// step per reading; see [`FAKE_CLOCK_STEP_NS`]).
    pub fn deterministic() -> Self {
        Telemetry::with_clock(Clock::Fake(AtomicU64::new(0)))
    }

    /// A fresh, empty registry sharing this one's wall-clock baseline,
    /// so timestamps recorded through both line up (request-local
    /// slow-tracing registries absorb into the global one; their event
    /// and span times must be on the same axis). A deterministic parent
    /// yields a fresh deterministic registry; a disabled parent yields
    /// a fresh wall-clock registry.
    pub fn sibling(&self) -> Self {
        match self.inner.as_ref().map(|inner| &inner.clock) {
            Some(Clock::Wall(epoch)) => Telemetry::with_clock(Clock::Wall(*epoch)),
            Some(Clock::Fake(_)) => Telemetry::deterministic(),
            None => Telemetry::new(),
        }
    }

    fn with_clock(clock: Clock) -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                counters: RwLock::new(BTreeMap::new()),
                gauges: RwLock::new(BTreeMap::new()),
                spans: RwLock::new(BTreeMap::new()),
                histograms: RwLock::new(BTreeMap::new()),
                events: RwLock::new(EventRecorder::off()),
                clock,
            })),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Current clock reading in nanoseconds (0 when disabled). On the
    /// deterministic clock every reading advances the virtual time by
    /// [`FAKE_CLOCK_STEP_NS`].
    pub fn now_ns(&self) -> u64 {
        self.inner.as_ref().map_or(0, |inner| inner.clock.now_ns())
    }

    /// Install a flight recorder; subsequent [`Telemetry::event`]
    /// calls on this registry (and its clones) record into it.
    /// Builder-style so construction reads
    /// `Telemetry::new().attach_events(recorder)`.
    pub fn attach_events(self, recorder: EventRecorder) -> Self {
        if let Some(inner) = &self.inner {
            *inner.events.write().expect("telemetry events poisoned") = recorder;
        }
        self
    }

    /// The attached flight recorder (the disabled recorder when none
    /// was attached or the registry is off). Cheap clone of an
    /// `Option<Arc<_>>`.
    pub fn events(&self) -> EventRecorder {
        self.inner
            .as_ref()
            .map_or_else(EventRecorder::off, |inner| {
                inner
                    .events
                    .read()
                    .expect("telemetry events poisoned")
                    .clone()
            })
    }

    /// Record a structured event into the attached flight recorder,
    /// counting the outcome under `events.emitted` /
    /// `events.sampled` / `events.dropped`. `fields` only runs once
    /// the event passes sampling; with no recorder attached (or a
    /// disabled registry) the call reduces to a pointer check plus
    /// one read-lock probe.
    pub fn event(
        &self,
        severity: Severity,
        category: Category,
        key: &'static str,
        fields: impl FnOnce() -> Vec<(&'static str, FieldValue)>,
    ) {
        let Some(inner) = &self.inner else {
            return;
        };
        let recorder = inner
            .events
            .read()
            .expect("telemetry events poisoned")
            .clone();
        if !recorder.is_enabled() {
            return;
        }
        let outcome = recorder.emit(inner.clock.now_ns(), severity, category, key, fields);
        if outcome.seq.is_some() {
            self.incr("events.emitted");
        } else {
            self.incr("events.sampled");
        }
        if outcome.dropped > 0 {
            self.add("events.dropped", outcome.dropped);
        }
    }

    /// Resolve a named monotonic counter once; increments through the
    /// returned handle are one relaxed `fetch_add` with no name lookup.
    pub fn counter(&self, name: &str) -> Counter {
        Counter {
            cell: self
                .inner
                .as_ref()
                .map(|inner| Inner::entry(&inner.counters, name)),
        }
    }

    /// Add `n` to a named monotonic counter.
    pub fn add(&self, name: &str, n: u64) {
        if let Some(inner) = &self.inner {
            Inner::entry(&inner.counters, name).fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increment a named monotonic counter by one.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Set a named gauge (last write wins).
    pub fn gauge(&self, name: &str, value: u64) {
        if let Some(inner) = &self.inner {
            Inner::entry(&inner.gauges, name).store(value, Ordering::Relaxed);
        }
    }

    /// Set a named gauge to `value` if it exceeds the current reading
    /// (a high-watermark gauge, e.g. max postings bucket size).
    pub fn gauge_max(&self, name: &str, value: u64) {
        if let Some(inner) = &self.inner {
            Inner::entry(&inner.gauges, name).fetch_max(value, Ordering::Relaxed);
        }
    }

    /// Open a scoped stage timer; the elapsed time is recorded under
    /// `name` when the guard drops. Disabled handles never read the
    /// clock.
    pub fn span(&self, name: &str) -> SpanGuard {
        SpanGuard {
            active: self.inner.as_ref().map(|inner| {
                let accum = Inner::entry(&inner.spans, name);
                (Arc::clone(inner), accum, inner.clock.now_ns())
            }),
        }
    }

    /// Record an externally measured duration under a span name.
    pub fn record_ns(&self, name: &str, ns: u64) {
        if let Some(inner) = &self.inner {
            let accum = Inner::entry(&inner.spans, name);
            accum.total_ns.fetch_add(ns, Ordering::Relaxed);
            accum.count.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record one observation into a named histogram (log-linear
    /// buckets; see [`crate::histogram`]).
    pub fn observe(&self, name: &str, value: u64) {
        if let Some(inner) = &self.inner {
            Inner::entry(&inner.histograms, name).record(value);
        }
    }

    /// Open a histogram-only timer: the elapsed nanoseconds are
    /// recorded into the named histogram when the guard drops.
    pub fn time_histogram(&self, name: &str) -> HistogramGuard {
        HistogramGuard {
            active: self.inner.as_ref().map(|inner| {
                let histogram = Inner::entry(&inner.histograms, name);
                (Arc::clone(inner), histogram, inner.clock.now_ns())
            }),
        }
    }

    /// Open a combined timer: one clock-read pair feeds both the span
    /// accumulator *and* a same-named latency histogram, so the
    /// hierarchical breakdown and the distribution stay consistent.
    pub fn timed(&self, name: &str) -> TimedGuard {
        TimedGuard {
            active: self.inner.as_ref().map(|inner| TimedActive {
                accum: Inner::entry(&inner.spans, name),
                histogram: Inner::entry(&inner.histograms, name),
                start: inner.clock.now_ns(),
                inner: Arc::clone(inner),
            }),
        }
    }

    /// Merge a frozen snapshot into this live registry: counters and
    /// span totals add, histograms merge bucket-wise, gauges take the
    /// incoming value. Used to fold per-request registries back into
    /// the server's global one.
    pub fn absorb(&self, snapshot: &MetricsSnapshot) {
        if self.inner.is_none() {
            return;
        }
        for (name, value) in &snapshot.counters {
            self.add(name, *value);
        }
        for (name, value) in &snapshot.gauges {
            self.gauge(name, *value);
        }
        for (name, data) in &snapshot.spans {
            if data.count > 0 || data.total_ns > 0 {
                if let Some(inner) = &self.inner {
                    let accum = Inner::entry(&inner.spans, name);
                    accum.total_ns.fetch_add(data.total_ns, Ordering::Relaxed);
                    accum.count.fetch_add(data.count, Ordering::Relaxed);
                }
            }
        }
        for (name, data) in &snapshot.histograms {
            if let Some(inner) = &self.inner {
                Inner::entry(&inner.histograms, name).absorb(data);
            }
        }
    }

    /// Record a cache's counter snapshot under `cache.<name>.*`:
    /// `hits`, `misses` and the derived `lookups` as counters, current
    /// `entries` as a gauge. Registering a *snapshot* (not a live feed)
    /// keeps the cache hot path free of telemetry branches.
    pub fn record_cache(&self, name: &str, stats: &crate::CacheStats) {
        if self.inner.is_none() {
            return;
        }
        self.add(&format!("cache.{name}.hits"), stats.hits);
        self.add(&format!("cache.{name}.misses"), stats.misses);
        self.add(&format!("cache.{name}.lookups"), stats.hits + stats.misses);
        self.gauge(&format!("cache.{name}.entries"), stats.entries as u64);
    }

    /// Materialize the registry into a plain, mergeable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(inner) = &self.inner else {
            return MetricsSnapshot::default();
        };
        let counters = inner
            .counters
            .read()
            .expect("telemetry map poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = inner
            .gauges
            .read()
            .expect("telemetry map poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let spans = inner
            .spans
            .read()
            .expect("telemetry map poisoned")
            .iter()
            .map(|(k, v)| {
                (
                    k.clone(),
                    SpanData {
                        total_ns: v.total_ns.load(Ordering::Relaxed),
                        count: v.count.load(Ordering::Relaxed),
                    },
                )
            })
            .collect();
        let histograms = inner
            .histograms
            .read()
            .expect("telemetry map poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.data()))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            spans,
            histograms,
        }
    }
}

/// A pre-resolved counter handle; increment cost is one pointer check
/// plus (when enabled) one relaxed `fetch_add`.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// Add `n`.
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add one.
    pub fn incr(&self) {
        self.add(1);
    }
}

/// Scope guard of [`Telemetry::span`]; records elapsed time on drop.
#[must_use = "dropping the guard immediately records a zero-length span"]
pub struct SpanGuard {
    active: Option<(Arc<Inner>, Arc<SpanAccum>, u64)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((inner, accum, start)) = self.active.take() {
            let elapsed = inner.clock.now_ns().saturating_sub(start);
            accum.total_ns.fetch_add(elapsed, Ordering::Relaxed);
            accum.count.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Scope guard of [`Telemetry::time_histogram`]; records the elapsed
/// nanoseconds into the histogram on drop.
#[must_use = "dropping the guard immediately records a zero-length observation"]
pub struct HistogramGuard {
    active: Option<(Arc<Inner>, Arc<Histogram>, u64)>,
}

impl Drop for HistogramGuard {
    fn drop(&mut self) {
        if let Some((inner, histogram, start)) = self.active.take() {
            histogram.record(inner.clock.now_ns().saturating_sub(start));
        }
    }
}

/// Live half of a [`TimedGuard`]: the registry plus the two cells the
/// single elapsed reading lands in.
struct TimedActive {
    inner: Arc<Inner>,
    accum: Arc<SpanAccum>,
    histogram: Arc<Histogram>,
    start: u64,
}

/// Scope guard of [`Telemetry::timed`]; one elapsed reading feeds both
/// the span accumulator and the same-named histogram on drop.
#[must_use = "dropping the guard immediately records a zero-length interval"]
pub struct TimedGuard {
    active: Option<TimedActive>,
}

impl Drop for TimedGuard {
    fn drop(&mut self) {
        if let Some(active) = self.active.take() {
            let elapsed = active.inner.clock.now_ns().saturating_sub(active.start);
            active.accum.total_ns.fetch_add(elapsed, Ordering::Relaxed);
            active.accum.count.fetch_add(1, Ordering::Relaxed);
            active.histogram.record(elapsed);
        }
    }
}

/// Accumulated data of one span in a snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanData {
    /// Total nanoseconds spent inside the span.
    pub total_ns: u64,
    /// Times the span was entered.
    pub count: u64,
}

/// A frozen, mergeable view of a registry: plain sorted maps, no locks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name (merge sums them; per-run snapshots never share a
    /// gauge name across merge inputs in this pipeline).
    pub gauges: BTreeMap<String, u64>,
    /// Span accumulators by dotted hierarchical name.
    pub spans: BTreeMap<String, SpanData>,
    /// Latency histograms by name (log-linear buckets; see
    /// [`crate::histogram`]).
    pub histograms: BTreeMap<String, HistogramData>,
}

impl MetricsSnapshot {
    /// True when nothing was recorded (the disabled registry's
    /// snapshot).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.spans.is_empty()
            && self.histograms.is_empty()
    }

    /// Merge another snapshot into this one: counters, gauges and span
    /// totals/counts add per name; histograms merge bucket-wise.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.spans {
            let slot = self.spans.entry(k.clone()).or_default();
            slot.total_ns += v.total_ns;
            slot.count += v.count;
        }
        for (k, v) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(v);
        }
    }

    /// What changed between a previous cumulative snapshot and this
    /// one — the windowing primitive behind
    /// [`crate::timeseries::TimeSeries`]. Counters and span
    /// accumulators subtract (saturating, zero entries dropped, so a
    /// quiet window stays small); gauges keep their current
    /// instantaneous value (a gauge has no meaningful increment);
    /// histograms subtract bucket-wise (see
    /// [`HistogramData::delta`]). `prev` must be an earlier snapshot
    /// of the *same* registry — counters that disappeared are treated
    /// as unchanged.
    pub fn delta(&self, prev: &MetricsSnapshot) -> MetricsSnapshot {
        let diff_map = |now: &BTreeMap<String, u64>, was: &BTreeMap<String, u64>| {
            now.iter()
                .filter_map(|(k, &v)| {
                    let d = v.saturating_sub(was.get(k).copied().unwrap_or(0));
                    (d > 0).then(|| (k.clone(), d))
                })
                .collect()
        };
        let spans = self
            .spans
            .iter()
            .filter_map(|(k, v)| {
                let was = prev.spans.get(k).copied().unwrap_or_default();
                let d = SpanData {
                    total_ns: v.total_ns.saturating_sub(was.total_ns),
                    count: v.count.saturating_sub(was.count),
                };
                (d.count > 0 || d.total_ns > 0).then(|| (k.clone(), d))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .filter_map(|(k, v)| {
                let d = match prev.histograms.get(k) {
                    Some(was) => v.delta(was),
                    None => v.clone(),
                };
                (!d.buckets.is_empty()).then(|| (k.clone(), d))
            })
            .collect();
        MetricsSnapshot {
            counters: diff_map(&self.counters, &prev.counters),
            gauges: self.gauges.clone(),
            spans,
            histograms,
        }
    }

    /// Return a copy with every name prefixed (`prefix` + the original
    /// name) — used to namespace per-domain snapshots inside a corpus
    /// document.
    pub fn prefixed(&self, prefix: &str) -> MetricsSnapshot {
        let rename = |map: &BTreeMap<String, u64>| {
            map.iter()
                .map(|(k, v)| (format!("{prefix}{k}"), *v))
                .collect()
        };
        MetricsSnapshot {
            counters: rename(&self.counters),
            gauges: rename(&self.gauges),
            spans: self
                .spans
                .iter()
                .map(|(k, v)| (format!("{prefix}{k}"), *v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, v)| (format!("{prefix}{k}"), v.clone()))
                .collect(),
        }
    }

    /// Render the snapshot as one stable JSON document: keys sorted
    /// (`BTreeMap` order), all values integers — two identical
    /// snapshots serialize to identical bytes.
    pub fn to_json(&self) -> String {
        let scalar_map = |map: &BTreeMap<String, u64>| {
            let mut obj = crate::json::Obj::new();
            for (k, v) in map {
                obj.u64(k, *v);
            }
            obj.finish()
        };
        let mut spans = crate::json::Obj::new();
        for (k, v) in &self.spans {
            spans.raw(
                k,
                crate::json::Obj::new()
                    .u64("count", v.count)
                    .u64("total_ns", v.total_ns)
                    .finish(),
            );
        }
        let mut histograms = crate::json::Obj::new();
        for (k, v) in &self.histograms {
            histograms.raw(k, v.to_json());
        }
        crate::json::Obj::new()
            .raw("counters", scalar_map(&self.counters))
            .raw("gauges", scalar_map(&self.gauges))
            .raw("histograms", histograms.finish())
            .raw("spans", spans.finish())
            .finish()
    }

    /// The document's *schema*: one `path kind` line per emitted key,
    /// sorted — the golden-snapshot surface for catching accidental
    /// field renames without pinning values.
    pub fn schema(&self) -> String {
        let mut lines: Vec<String> = Vec::new();
        for key in self.counters.keys() {
            lines.push(format!("counters.{key} u64"));
        }
        for key in self.gauges.keys() {
            lines.push(format!("gauges.{key} u64"));
        }
        for key in self.spans.keys() {
            lines.push(format!("spans.{key}.count u64"));
            lines.push(format!("spans.{key}.total_ns u64"));
        }
        for key in self.histograms.keys() {
            // Bucket keys depend on the observed values, so the schema
            // treats the bucket map as one opaque object.
            lines.push(format!("histograms.{key}.buckets obj"));
            for field in ["count", "max", "p50", "p90", "p99", "sum"] {
                lines.push(format!("histograms.{key}.{field} u64"));
            }
        }
        lines.sort();
        let mut out = lines.join("\n");
        out.push('\n');
        out
    }

    /// Direct parent span of a dotted name, if recorded: the longest
    /// proper dotted prefix present in the snapshot.
    pub fn parent_span<'a>(&self, name: &'a str) -> Option<&'a str> {
        let mut prefix = name;
        while let Some(dot) = prefix.rfind('.') {
            prefix = &prefix[..dot];
            if self.spans.contains_key(prefix) {
                return Some(prefix);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let tel = Telemetry::off();
        assert!(!tel.is_enabled());
        tel.incr("a");
        tel.add("b", 9);
        tel.gauge("g", 4);
        tel.gauge_max("g", 9);
        tel.record_ns("s", 100);
        tel.observe("h", 42);
        let counter = tel.counter("c");
        counter.incr();
        drop(tel.span("span"));
        drop(tel.time_histogram("span"));
        drop(tel.timed("span"));
        tel.absorb(&Telemetry::deterministic().snapshot());
        let snapshot = tel.snapshot();
        assert!(snapshot.is_empty());
        assert_eq!(
            snapshot.to_json(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{},\"spans\":{}}"
        );
    }

    #[test]
    fn counters_gauges_and_spans_accumulate() {
        let tel = Telemetry::deterministic();
        tel.incr("pairs");
        tel.add("pairs", 2);
        let pairs = tel.counter("pairs");
        pairs.add(4);
        tel.gauge("buckets", 7);
        tel.gauge("buckets", 5); // last write wins
        tel.gauge_max("peak", 3);
        tel.gauge_max("peak", 9);
        tel.gauge_max("peak", 4);
        {
            let _outer = tel.span("stage");
            let _inner = tel.span("stage.sub");
        }
        tel.record_ns("stage.sub", 500);
        let snapshot = tel.snapshot();
        assert_eq!(snapshot.counters["pairs"], 7);
        assert_eq!(snapshot.gauges["buckets"], 5);
        assert_eq!(snapshot.gauges["peak"], 9);
        assert_eq!(snapshot.spans["stage"].count, 1);
        assert_eq!(snapshot.spans["stage.sub"].count, 2);
        // Fake clock: the inner span's measured time is strictly inside
        // the outer one's.
        let outer = snapshot.spans["stage"];
        let inner = snapshot.spans["stage.sub"];
        assert!(
            inner.total_ns - 500 <= outer.total_ns,
            "{inner:?} vs {outer:?}"
        );
        assert_eq!(snapshot.parent_span("stage.sub"), Some("stage"));
        assert_eq!(snapshot.parent_span("stage"), None);
        assert_eq!(snapshot.parent_span("other.thing"), None);
    }

    #[test]
    fn deterministic_clock_is_byte_stable() {
        let run = || {
            let tel = Telemetry::deterministic();
            for _ in 0..3 {
                let _g = tel.span("a.b");
                tel.incr("n");
            }
            let _g = tel.span("a");
            drop(_g);
            tel.snapshot().to_json()
        };
        let first = run();
        assert_eq!(first, run());
        assert!(first.contains("\"total_ns\""));
    }

    #[test]
    fn merge_and_prefix() {
        let tel = Telemetry::deterministic();
        tel.add("x", 1);
        tel.gauge("g", 2);
        tel.record_ns("s", 10);
        let a = tel.snapshot();
        let mut merged = a.clone();
        merged.merge(&a);
        assert_eq!(merged.counters["x"], 2);
        assert_eq!(merged.gauges["g"], 4);
        assert_eq!(merged.spans["s"].total_ns, 20);
        assert_eq!(merged.spans["s"].count, 2);
        let prefixed = a.prefixed("domain.0.");
        assert_eq!(prefixed.counters["domain.0.x"], 1);
        assert_eq!(prefixed.spans["domain.0.s"].count, 1);
    }

    #[test]
    fn record_cache_emits_consistent_counters() {
        let tel = Telemetry::new();
        let stats = crate::CacheStats {
            hits: 10,
            misses: 4,
            entries: 4,
        };
        tel.record_cache("lexicon.resolve", &stats);
        let snapshot = tel.snapshot();
        assert_eq!(snapshot.counters["cache.lexicon.resolve.hits"], 10);
        assert_eq!(snapshot.counters["cache.lexicon.resolve.misses"], 4);
        assert_eq!(snapshot.counters["cache.lexicon.resolve.lookups"], 14);
        assert_eq!(snapshot.gauges["cache.lexicon.resolve.entries"], 4);
    }

    #[test]
    fn schema_lists_every_key_sorted() {
        let tel = Telemetry::deterministic();
        tel.incr("b");
        tel.incr("a");
        tel.gauge("g", 1);
        tel.record_ns("s", 1);
        tel.observe("h", 7);
        let schema = tel.snapshot().schema();
        assert_eq!(
            schema,
            "counters.a u64\ncounters.b u64\ngauges.g u64\n\
             histograms.h.buckets obj\nhistograms.h.count u64\nhistograms.h.max u64\n\
             histograms.h.p50 u64\nhistograms.h.p90 u64\nhistograms.h.p99 u64\n\
             histograms.h.sum u64\nspans.s.count u64\nspans.s.total_ns u64\n"
        );
    }

    #[test]
    fn timed_guard_feeds_span_and_histogram_consistently() {
        let tel = Telemetry::deterministic();
        for _ in 0..3 {
            drop(tel.timed("stage"));
        }
        drop(tel.time_histogram("solo"));
        let snapshot = tel.snapshot();
        let span = snapshot.spans["stage"];
        let hist = &snapshot.histograms["stage"];
        assert_eq!(span.count, 3);
        assert_eq!(hist.count(), 3);
        // One clock pair feeds both: the histogram's sum is exactly the
        // span's accumulated total.
        assert_eq!(hist.sum, span.total_ns);
        assert_eq!(hist.max, FAKE_CLOCK_STEP_NS);
        // time_histogram records no span.
        assert!(!snapshot.spans.contains_key("solo"));
        assert_eq!(snapshot.histograms["solo"].count(), 1);
    }

    #[test]
    fn absorb_folds_a_snapshot_into_a_live_registry() {
        let local = Telemetry::deterministic();
        local.add("req", 2);
        local.gauge("depth", 5);
        local.record_ns("stage", 100);
        local.observe("lat", 1_000);
        let global = Telemetry::deterministic();
        global.add("req", 1);
        global.observe("lat", 9);
        global.absorb(&local.snapshot());
        let merged = global.snapshot();
        assert_eq!(merged.counters["req"], 3);
        assert_eq!(merged.gauges["depth"], 5);
        assert_eq!(merged.spans["stage"].total_ns, 100);
        assert_eq!(merged.histograms["lat"].count(), 2);
        assert_eq!(merged.histograms["lat"].max, 1_000);
    }

    #[test]
    fn delta_reports_what_changed_and_drops_the_quiet() {
        let tel = Telemetry::deterministic();
        tel.add("req", 3);
        tel.add("steady", 5);
        tel.gauge("depth", 2);
        tel.record_ns("stage", 100);
        tel.observe("lat", 40);
        let before = tel.snapshot();
        tel.add("req", 4);
        tel.gauge("depth", 9);
        tel.observe("lat", 80);
        tel.incr("fresh");
        let delta = tel.snapshot().delta(&before);
        assert_eq!(delta.counters["req"], 4);
        assert_eq!(delta.counters["fresh"], 1);
        assert!(
            !delta.counters.contains_key("steady"),
            "unchanged counters are dropped"
        );
        assert_eq!(delta.gauges["depth"], 9, "gauges stay instantaneous");
        assert!(!delta.spans.contains_key("stage"), "quiet spans dropped");
        let lat = &delta.histograms["lat"];
        assert_eq!(lat.count(), 1);
        assert_eq!(lat.sum, 80);
        // Identical snapshots produce an empty delta (gauges aside).
        let now = tel.snapshot();
        let idle = now.delta(&now);
        assert!(idle.counters.is_empty());
        assert!(idle.spans.is_empty());
        assert!(idle.histograms.is_empty());
    }

    #[test]
    fn attached_recorder_captures_events_and_counts_outcomes() {
        let tel = Telemetry::deterministic()
            .attach_events(crate::events::EventRecorder::new(2).with_sample(Category::Slow, 2));
        tel.event(Severity::Warn, Category::Shed, "shed.queue_full", || {
            vec![("depth", FieldValue::U64(64))]
        });
        tel.event(Severity::Warn, Category::Slow, "slow", Vec::new);
        tel.event(Severity::Warn, Category::Slow, "slow", Vec::new); // sampled out
        tel.event(Severity::Info, Category::Reload, "reload", Vec::new); // evicts seq 1
        let snapshot = tel.snapshot();
        assert_eq!(snapshot.counters["events.emitted"], 3);
        assert_eq!(snapshot.counters["events.sampled"], 1);
        assert_eq!(snapshot.counters["events.dropped"], 1);
        let page = tel.events().events_since(0, None, 10);
        assert_eq!(page.events.len(), 2);
        assert_eq!(page.dropped_watermark, 1);
    }

    #[test]
    fn event_without_recorder_is_a_noop() {
        let tel = Telemetry::deterministic();
        tel.event(Severity::Error, Category::Panic, "boom", || {
            panic!("fields must not be built without a recorder")
        });
        assert!(tel.snapshot().is_empty());
        let off = Telemetry::off();
        off.event(Severity::Error, Category::Panic, "boom", Vec::new);
        assert!(!off.events().is_enabled());
    }

    #[test]
    fn clones_share_the_attached_recorder() {
        let tel = Telemetry::new().attach_events(crate::events::EventRecorder::new(8));
        let clone = tel.clone();
        clone.event(Severity::Info, Category::Ingest, "ingest.delta", Vec::new);
        assert_eq!(tel.events().last_seq(), 1);
    }

    #[test]
    fn json_escapes_names() {
        let tel = Telemetry::new();
        tel.incr("we\"ird\\name");
        let json = tel.snapshot().to_json();
        assert!(json.contains("we\\\"ird\\\\name"));
    }

    #[test]
    fn wall_clock_spans_measure_time() {
        let tel = Telemetry::new();
        {
            let _g = tel.span("sleepy");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let snapshot = tel.snapshot();
        assert!(snapshot.spans["sleepy"].total_ns >= 1_000_000);
    }

    #[test]
    fn telemetry_is_shareable_across_threads() {
        let tel = Telemetry::new();
        let counter = tel.counter("shared");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let counter = counter.clone();
                let tel = tel.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        counter.incr();
                        tel.incr("named");
                    }
                });
            }
        });
        let snapshot = tel.snapshot();
        assert_eq!(snapshot.counters["shared"], 400);
        assert_eq!(snapshot.counters["named"], 400);
    }
}
