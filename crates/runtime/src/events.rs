//! Bounded ring-buffer flight recorder of structured runtime events.
//!
//! Telemetry counters answer "how many"; the flight recorder answers
//! "which ones, when, and why" for the *rare* decision points of a
//! serving process — delta-ingest fallbacks, shed 503s, slow requests,
//! stale cursors, reload swaps, worker panics. Every event carries a
//! monotonic sequence number, a severity, a category, a static key and
//! a small set of typed fields.
//!
//! The design constraints mirror the rest of [`crate::telemetry`]:
//!
//! * **Disabled is free.** [`EventRecorder`] wraps an
//!   `Option<Arc<_>>`; the disabled handle carries `None`, so an emit
//!   on a cold path is one pointer check. Field construction is
//!   deferred behind a closure that only runs once an event is going
//!   to be kept.
//! * **Bounded and lock-minimal.** The ring is a fixed-capacity
//!   `VecDeque` behind one mutex held only for a push/pop or a clone
//!   out; there is no allocation growth, no blocking hand-off, and a
//!   full ring evicts the oldest event instead of stalling the
//!   emitter. Evictions advance an explicit *drop watermark* (the
//!   highest evicted sequence number) so readers can tell silence from
//!   loss.
//! * **Sampled per category.** High-frequency categories can be
//!   downsampled (keep one in N, counted per category with a relaxed
//!   atomic); sampled-out events consume no sequence number, so the
//!   retained ring stays seq-contiguous and cursor resume via
//!   [`EventRecorder::events_since`] is gap-free above the watermark.
//!
//! Sequence numbers start at 1; `since=0` therefore reads from the
//! beginning. Timestamps are supplied by the caller (the telemetry
//! clock), so deterministic-clock runs produce byte-stable event
//! streams.

use crate::json::Obj;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// How loud an event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Diagnostic detail (sampled aggressively in production).
    Debug,
    /// Expected-but-notable state changes (reloads, ingests).
    Info,
    /// Degraded service decisions (sheds, fallbacks, slow requests).
    Warn,
    /// Faults (worker panics).
    Error,
}

impl Severity {
    /// Stable lowercase name (the JSON encoding).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Debug => "debug",
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

/// Which subsystem decision produced the event. The set enumerates the
/// decision points wired today; extending it is a source change, which
/// keeps category names static (no allocation on emit) and the
/// sampling table a fixed array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// Delta-ingest fallbacks to the full rebuild path.
    Ingest,
    /// Rendered-response cache invalidations.
    Cache,
    /// Load-shedding 503s (queue full, connection limit).
    Shed,
    /// Requests slower than the `--slow-ms` threshold.
    Slow,
    /// Stale-cursor 410s on paginated reads.
    Cursor,
    /// Query traversal budget exhaustion (422s).
    Budget,
    /// Snapshot `/admin/reload` swaps.
    Reload,
    /// Worker panics converted to 500s.
    Panic,
    /// Malformed/oversized requests answered by the reactor's
    /// synthesized error path (400/408/413/431).
    Http,
}

/// Number of categories (size of the sampling table).
pub const CATEGORY_COUNT: usize = 9;

/// Every category, in stable order (index == `as_index`).
pub const CATEGORIES: [Category; CATEGORY_COUNT] = [
    Category::Ingest,
    Category::Cache,
    Category::Shed,
    Category::Slow,
    Category::Cursor,
    Category::Budget,
    Category::Reload,
    Category::Panic,
    Category::Http,
];

impl Category {
    /// Stable lowercase name (the JSON encoding and the
    /// `?category=` filter value).
    pub fn as_str(self) -> &'static str {
        match self {
            Category::Ingest => "ingest",
            Category::Cache => "cache",
            Category::Shed => "shed",
            Category::Slow => "slow",
            Category::Cursor => "cursor",
            Category::Budget => "budget",
            Category::Reload => "reload",
            Category::Panic => "panic",
            Category::Http => "http",
        }
    }

    /// Dense index into the per-category sampling table.
    pub fn as_index(self) -> usize {
        match self {
            Category::Ingest => 0,
            Category::Cache => 1,
            Category::Shed => 2,
            Category::Slow => 3,
            Category::Cursor => 4,
            Category::Budget => 5,
            Category::Reload => 6,
            Category::Panic => 7,
            Category::Http => 8,
        }
    }

    /// Parse a lowercase category name (the `?category=` filter).
    pub fn parse(name: &str) -> Option<Category> {
        CATEGORIES.iter().copied().find(|c| c.as_str() == name)
    }
}

/// One typed event field value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldValue {
    /// An unsigned integer (ids, counts, durations).
    U64(u64),
    /// A short string (domain slugs, reasons, paths).
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(value: u64) -> Self {
        FieldValue::U64(value)
    }
}

impl From<String> for FieldValue {
    fn from(value: String) -> Self {
        FieldValue::Str(value)
    }
}

impl From<&str> for FieldValue {
    fn from(value: &str) -> Self {
        FieldValue::Str(value.to_string())
    }
}

/// One recorded event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Monotonic sequence number (1-based, recorder-wide).
    pub seq: u64,
    /// Timestamp in nanoseconds on the emitting registry's clock.
    pub at_ns: u64,
    /// Severity.
    pub severity: Severity,
    /// Subsystem category.
    pub category: Category,
    /// Static event key (e.g. `ingest.fallback`).
    pub key: &'static str,
    /// Small set of typed fields.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    /// Render as one stable JSON object.
    pub fn to_json(&self) -> String {
        let mut fields = Obj::new();
        for (name, value) in &self.fields {
            match value {
                FieldValue::U64(v) => fields.u64(name, *v),
                FieldValue::Str(v) => fields.str(name, v),
            };
        }
        Obj::new()
            .u64("seq", self.seq)
            .u64("at_ns", self.at_ns)
            .str("severity", self.severity.as_str())
            .str("category", self.category.as_str())
            .str("key", self.key)
            .raw("fields", fields.finish())
            .finish()
    }
}

/// Outcome of one emit attempt.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EmitOutcome {
    /// Sequence number assigned, `None` when sampled out.
    pub seq: Option<u64>,
    /// Events evicted from the ring by this emit (0 or 1).
    pub dropped: u64,
}

/// One page of [`EventRecorder::events_since`].
#[derive(Debug, Clone, Default)]
pub struct EventsPage {
    /// Matching events in sequence order.
    pub events: Vec<Event>,
    /// Resume cursor: pass as `since` to continue after this page.
    /// Equals the request's `since` when nothing matched.
    pub next_seq: u64,
    /// Highest sequence number ever evicted from the ring (0 when
    /// nothing was dropped). A reader whose `since` is below this
    /// watermark has lost events.
    pub dropped_watermark: u64,
    /// Total events evicted from the ring so far.
    pub dropped: u64,
}

struct Ring {
    buf: VecDeque<Event>,
    next_seq: u64,
    dropped_watermark: u64,
    dropped: u64,
}

struct RecorderInner {
    capacity: usize,
    ring: Mutex<Ring>,
    /// Keep one event in N per category (1 = keep all). Atomic so the
    /// builder can configure a handle without unsharing the `Arc`;
    /// reads on the emit path are relaxed.
    sample_every: [AtomicU64; CATEGORY_COUNT],
    /// Per-category emit attempts, for the sampling decision.
    sample_seen: [AtomicU64; CATEGORY_COUNT],
}

/// A handle on a flight recorder (or on nothing, when disabled).
/// Clones share the ring; the handle is `Send + Sync`.
#[derive(Clone, Default)]
pub struct EventRecorder {
    inner: Option<Arc<RecorderInner>>,
}

impl std::fmt::Debug for EventRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventRecorder")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl EventRecorder {
    /// The disabled recorder: every emit is a pointer check.
    pub fn off() -> Self {
        EventRecorder { inner: None }
    }

    /// An enabled recorder retaining the most recent `capacity`
    /// events (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        EventRecorder {
            inner: Some(Arc::new(RecorderInner {
                capacity: capacity.max(1),
                ring: Mutex::new(Ring {
                    buf: VecDeque::new(),
                    next_seq: 1,
                    dropped_watermark: 0,
                    dropped: 0,
                }),
                sample_every: std::array::from_fn(|_| AtomicU64::new(1)),
                sample_seen: Default::default(),
            })),
        }
    }

    /// Keep one in `every` events of `category` (0 and 1 both mean
    /// keep all). Builder-style: configure before traffic flows.
    pub fn with_sample(self, category: Category, every: u64) -> Self {
        if let Some(inner) = &self.inner {
            inner.sample_every[category.as_index()].store(every.max(1), Ordering::Relaxed);
        }
        self
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Ring capacity (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.inner.as_ref().map_or(0, |inner| inner.capacity)
    }

    /// Record one event. `fields` is only invoked once the event has
    /// passed sampling — a sampled-out or disabled emit never builds
    /// its payload.
    pub fn emit(
        &self,
        at_ns: u64,
        severity: Severity,
        category: Category,
        key: &'static str,
        fields: impl FnOnce() -> Vec<(&'static str, FieldValue)>,
    ) -> EmitOutcome {
        let Some(inner) = &self.inner else {
            return EmitOutcome::default();
        };
        let every = inner.sample_every[category.as_index()].load(Ordering::Relaxed);
        if every > 1 {
            let seen = inner.sample_seen[category.as_index()].fetch_add(1, Ordering::Relaxed);
            if seen % every != 0 {
                return EmitOutcome::default();
            }
        }
        let fields = fields();
        let mut ring = inner.ring.lock().expect("event ring poisoned");
        let seq = ring.next_seq;
        ring.next_seq += 1;
        ring.buf.push_back(Event {
            seq,
            at_ns,
            severity,
            category,
            key,
            fields,
        });
        let mut dropped = 0;
        if ring.buf.len() > inner.capacity {
            if let Some(evicted) = ring.buf.pop_front() {
                ring.dropped_watermark = evicted.seq;
                ring.dropped += 1;
                dropped = 1;
            }
        }
        EmitOutcome {
            seq: Some(seq),
            dropped,
        }
    }

    /// Events with `seq > since`, optionally restricted to one
    /// category, capped at `limit`. `since=0` reads from the oldest
    /// retained event. The page's `next_seq` is the highest sequence
    /// number *scanned* (not just matched), so a category-filtered
    /// cursor still advances past non-matching events.
    pub fn events_since(&self, since: u64, category: Option<Category>, limit: usize) -> EventsPage {
        let Some(inner) = &self.inner else {
            return EventsPage::default();
        };
        let ring = inner.ring.lock().expect("event ring poisoned");
        let mut page = EventsPage {
            events: Vec::new(),
            next_seq: since,
            dropped_watermark: ring.dropped_watermark,
            dropped: ring.dropped,
        };
        for event in &ring.buf {
            if event.seq <= since {
                continue;
            }
            if page.events.len() >= limit.max(1) {
                break;
            }
            page.next_seq = event.seq;
            if category.is_none_or(|want| want == event.category) {
                page.events.push(event.clone());
            }
        }
        page
    }

    /// Highest sequence number assigned so far (0 when none).
    pub fn last_seq(&self) -> u64 {
        self.inner.as_ref().map_or(0, |inner| {
            inner.ring.lock().expect("event ring poisoned").next_seq - 1
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emit_n(rec: &EventRecorder, n: u64) {
        for i in 0..n {
            rec.emit(i, Severity::Info, Category::Ingest, "test.event", || {
                vec![("i", FieldValue::U64(i))]
            });
        }
    }

    #[test]
    fn disabled_recorder_is_inert_and_lazy() {
        let rec = EventRecorder::off();
        assert!(!rec.is_enabled());
        let outcome = rec.emit(0, Severity::Error, Category::Panic, "boom", || {
            panic!("fields must not be built on a disabled recorder")
        });
        assert_eq!(outcome, EmitOutcome::default());
        assert!(rec.events_since(0, None, 100).events.is_empty());
        assert_eq!(rec.last_seq(), 0);
    }

    #[test]
    fn sequence_numbers_are_contiguous_and_one_based() {
        let rec = EventRecorder::new(16);
        emit_n(&rec, 5);
        let page = rec.events_since(0, None, 100);
        let seqs: Vec<u64> = page.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3, 4, 5]);
        assert_eq!(page.next_seq, 5);
        assert_eq!(page.dropped, 0);
        assert_eq!(rec.last_seq(), 5);
    }

    #[test]
    fn full_ring_evicts_oldest_and_advances_the_watermark() {
        let rec = EventRecorder::new(3);
        emit_n(&rec, 5);
        let page = rec.events_since(0, None, 100);
        let seqs: Vec<u64> = page.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![3, 4, 5]);
        assert_eq!(page.dropped_watermark, 2);
        assert_eq!(page.dropped, 2);
    }

    #[test]
    fn cursor_resume_sees_every_event_above_the_watermark() {
        let rec = EventRecorder::new(8);
        emit_n(&rec, 4);
        let first = rec.events_since(0, None, 2);
        assert_eq!(first.events.len(), 2);
        assert_eq!(first.next_seq, 2);
        emit_n(&rec, 3);
        let second = rec.events_since(first.next_seq, None, 100);
        let seqs: Vec<u64> = second.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![3, 4, 5, 6, 7]);
    }

    #[test]
    fn category_filter_still_advances_the_cursor() {
        let rec = EventRecorder::new(8);
        rec.emit(0, Severity::Warn, Category::Shed, "shed", Vec::new);
        rec.emit(1, Severity::Info, Category::Reload, "reload", Vec::new);
        rec.emit(2, Severity::Warn, Category::Shed, "shed", Vec::new);
        let page = rec.events_since(0, Some(Category::Shed), 100);
        assert_eq!(page.events.len(), 2);
        // The cursor covers the scanned (not just matched) range.
        assert_eq!(page.next_seq, 3);
        let resumed = rec.events_since(page.next_seq, Some(Category::Shed), 100);
        assert!(resumed.events.is_empty());
    }

    #[test]
    fn sampling_keeps_one_in_n_without_consuming_seqs() {
        let rec = EventRecorder::new(32).with_sample(Category::Slow, 3);
        for i in 0..9u64 {
            rec.emit(i, Severity::Warn, Category::Slow, "slow", Vec::new);
        }
        // Unsampled category is unaffected.
        rec.emit(9, Severity::Info, Category::Reload, "reload", Vec::new);
        let page = rec.events_since(0, None, 100);
        assert_eq!(page.events.len(), 4); // 3 kept slow + 1 reload
        let seqs: Vec<u64> = page.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3, 4], "kept events stay seq-contiguous");
    }

    #[test]
    fn event_json_is_stable_and_typed() {
        let rec = EventRecorder::new(4);
        rec.emit(
            7,
            Severity::Warn,
            Category::Ingest,
            "ingest.fallback",
            || {
                vec![
                    ("domain", FieldValue::from("auto")),
                    ("reason", FieldValue::from("base_mismatch")),
                    ("interfaces", FieldValue::U64(20)),
                ]
            },
        );
        let page = rec.events_since(0, None, 1);
        assert_eq!(
            page.events[0].to_json(),
            "{\"seq\":1,\"at_ns\":7,\"severity\":\"warn\",\"category\":\"ingest\",\
             \"key\":\"ingest.fallback\",\"fields\":{\"domain\":\"auto\",\
             \"reason\":\"base_mismatch\",\"interfaces\":20}}"
        );
    }

    #[test]
    fn category_names_round_trip() {
        for category in CATEGORIES {
            assert_eq!(Category::parse(category.as_str()), Some(category));
        }
        assert_eq!(Category::parse("nope"), None);
    }

    #[test]
    fn concurrent_emitters_never_duplicate_or_skip_retained_seqs() {
        let rec = EventRecorder::new(64);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let rec = rec.clone();
                scope.spawn(move || {
                    for i in 0..100u64 {
                        rec.emit(i, Severity::Info, Category::Http, "req", Vec::new);
                    }
                });
            }
        });
        let page = rec.events_since(0, None, 1_000);
        assert_eq!(rec.last_seq(), 400);
        assert_eq!(page.dropped, 400 - 64);
        let seqs: Vec<u64> = page.events.iter().map(|e| e.seq).collect();
        let expected: Vec<u64> = ((400 - 64 + 1)..=400).collect();
        assert_eq!(seqs, expected, "retained ring is seq-contiguous");
        assert_eq!(page.dropped_watermark, 400 - 64);
    }
}
