//! Append-only string interner.
//!
//! Raw labels repeat enormously across a corpus (every schema, cluster,
//! tuple and candidate mentions the same few hundred strings), and the
//! naming algorithm compares them constantly. Interning maps each
//! distinct string to a dense [`Symbol`] once; from then on equality is a
//! `u32` compare and the memo tables key on `(Symbol, Symbol)` instead of
//! cloning `(String, String)` pairs per lookup. The arena hands out
//! `Arc<str>` leases so public APIs can hold cheap shared references to
//! the canonical spelling.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// Index of an interned string (dense, starting at 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

#[derive(Debug, Default)]
struct Inner {
    /// Symbol → canonical string; append-only.
    arena: Vec<Arc<str>>,
    /// Canonical string → symbol.
    index: HashMap<Arc<str>, Symbol>,
}

/// Thread-safe append-only interner.
#[derive(Debug, Default)]
pub struct Interner {
    inner: RwLock<Inner>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Intern `text`, returning its (new or existing) symbol.
    pub fn intern(&self, text: &str) -> Symbol {
        if let Some(&sym) = self
            .inner
            .read()
            .expect("interner poisoned")
            .index
            .get(text)
        {
            return sym;
        }
        let mut inner = self.inner.write().expect("interner poisoned");
        // Double-check: another thread may have interned between locks.
        if let Some(&sym) = inner.index.get(text) {
            return sym;
        }
        let sym = Symbol(inner.arena.len() as u32);
        let arc: Arc<str> = Arc::from(text);
        inner.arena.push(Arc::clone(&arc));
        inner.index.insert(arc, sym);
        sym
    }

    /// The symbol of `text` if it was interned before.
    pub fn lookup(&self, text: &str) -> Option<Symbol> {
        self.inner
            .read()
            .expect("interner poisoned")
            .index
            .get(text)
            .copied()
    }

    /// A shared lease on the canonical spelling of `sym`.
    ///
    /// # Panics
    /// Panics if `sym` did not come from this interner.
    pub fn resolve(&self, sym: Symbol) -> Arc<str> {
        Arc::clone(&self.inner.read().expect("interner poisoned").arena[sym.0 as usize])
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.inner.read().expect("interner poisoned").arena.len()
    }

    /// True when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let interner = Interner::new();
        let a = interner.intern("Departure City");
        let b = interner.intern("Departure City");
        let c = interner.intern("Arrival City");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(interner.len(), 2);
        assert_eq!(&*interner.resolve(a), "Departure City");
        assert_eq!(interner.lookup("Arrival City"), Some(c));
        assert_eq!(interner.lookup("Missing"), None);
    }

    #[test]
    fn symbols_are_dense_and_ordered_by_first_sight() {
        let interner = Interner::new();
        assert!(interner.is_empty());
        for i in 0..100u32 {
            assert_eq!(interner.intern(&format!("label{i}")), Symbol(i));
        }
        assert_eq!(interner.len(), 100);
    }

    #[test]
    fn concurrent_interning_agrees() {
        let interner = Interner::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let interner = &interner;
                scope.spawn(move || {
                    for i in 0..200u32 {
                        let sym = interner.intern(&format!("w{}", i % 50));
                        assert_eq!(&*interner.resolve(sym), format!("w{}", i % 50).as_str());
                    }
                });
            }
        });
        assert_eq!(interner.len(), 50);
    }
}
