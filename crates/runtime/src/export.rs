//! Exposition formats for a frozen [`MetricsSnapshot`]: Prometheus text
//! v0.0.4 and Chrome `trace_event` JSON.
//!
//! Both renderers walk the snapshot's sorted maps, so two equal
//! snapshots produce byte-identical output — the same determinism
//! contract as [`MetricsSnapshot::to_json`], asserted by the golden
//! tests.
//!
//! **Prometheus.** Dotted metric names are sanitized to the
//! `[a-zA-Z0-9_]` alphabet and prefixed `qi_`. Counters become
//! `<name>_total`, gauges keep their name, a span becomes the counter
//! pair `<name>_calls_total` / `<name>_ns_total`, and a histogram
//! becomes a native Prometheus histogram family with cumulative
//! `_bucket{le="..."}` samples (bucket bounds are inclusive integer
//! nanoseconds, matching `le` semantics), `_sum` and `_count`.
//!
//! **Chrome trace.** Spans carry totals, not individual intervals, so
//! the exporter synthesizes one complete (`ph:"X"`) event per span and
//! lays children out sequentially inside their parent's window (the
//! nesting invariant — child time ≤ parent time — makes this fit). The
//! result loads in `about://tracing` / Perfetto and shows the
//! hierarchical time breakdown of a run.

use crate::histogram::bucket_upper;
use crate::json::{number, Arr, Obj};
use crate::telemetry::MetricsSnapshot;

/// Sanitize a dotted metric name into a Prometheus-legal identifier.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 3);
    out.push_str("qi_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

fn family(out: &mut String, name: &str, kind: &str, help: &str) {
    out.push_str("# HELP ");
    out.push_str(name);
    out.push(' ');
    out.push_str(help);
    out.push('\n');
    out.push_str("# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

/// Render the snapshot in Prometheus text exposition format v0.0.4.
pub fn prometheus_text(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let metric = format!("{}_total", sanitize(name));
        family(&mut out, &metric, "counter", &format!("Counter {name}."));
        out.push_str(&format!("{metric} {value}\n"));
    }
    for (name, value) in &snapshot.gauges {
        let metric = sanitize(name);
        family(&mut out, &metric, "gauge", &format!("Gauge {name}."));
        out.push_str(&format!("{metric} {value}\n"));
    }
    for (name, data) in &snapshot.histograms {
        let metric = sanitize(name);
        family(
            &mut out,
            &metric,
            "histogram",
            &format!("Histogram {name} (nanoseconds)."),
        );
        let mut cumulative = 0u64;
        for (&index, &count) in &data.buckets {
            cumulative += count;
            out.push_str(&format!(
                "{metric}_bucket{{le=\"{}\"}} {cumulative}\n",
                bucket_upper(index)
            ));
        }
        out.push_str(&format!("{metric}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
        out.push_str(&format!("{metric}_sum {}\n", data.sum));
        out.push_str(&format!("{metric}_count {cumulative}\n"));
    }
    for (name, data) in &snapshot.spans {
        let base = sanitize(name);
        let calls = format!("{base}_calls_total");
        family(
            &mut out,
            &calls,
            "counter",
            &format!("Span {name} entries."),
        );
        out.push_str(&format!("{calls} {}\n", data.count));
        let ns = format!("{base}_ns_total");
        family(
            &mut out,
            &ns,
            "counter",
            &format!("Span {name} total nanoseconds."),
        );
        out.push_str(&format!("{ns} {}\n", data.total_ns));
    }
    out
}

/// Render the snapshot's span tree as Chrome `trace_event` JSON
/// (`{"traceEvents":[...]}` with `ph:"X"` complete events, microsecond
/// `ts`/`dur`).
pub fn chrome_trace(snapshot: &MetricsSnapshot) -> String {
    use std::collections::BTreeMap;
    // Sorted iteration guarantees a parent ("label") is laid out before
    // any of its children ("label.phase1"), so one pass suffices: each
    // span starts at its parent's cursor (roots share a virtual root
    // cursor at 0) and advances it by its own total time.
    let mut starts: BTreeMap<&str, u64> = BTreeMap::new();
    let mut cursors: BTreeMap<&str, u64> = BTreeMap::new();
    let mut events = Arr::new();
    for (name, data) in &snapshot.spans {
        let (parent_key, base) = match snapshot.parent_span(name) {
            Some(parent) => (parent, starts.get(parent).copied().unwrap_or(0)),
            None => ("", 0),
        };
        let cursor = cursors.entry(parent_key).or_insert(base);
        let start = *cursor;
        *cursor = cursor.saturating_add(data.total_ns);
        starts.insert(name, start);
        events.raw(
            Obj::new()
                .str("name", name)
                .str("cat", "qi")
                .str("ph", "X")
                .raw("ts", number(start as f64 / 1_000.0, 3))
                .raw("dur", number(data.total_ns as f64 / 1_000.0, 3))
                .u64("pid", 1)
                .u64("tid", 1)
                .raw("args", Obj::new().u64("count", data.count).finish())
                .finish(),
        );
    }
    Obj::new()
        .str("displayTimeUnit", "ms")
        .raw("traceEvents", events.finish())
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::Telemetry;

    fn sample() -> MetricsSnapshot {
        let tel = Telemetry::deterministic();
        tel.add("matcher.pairs", 5);
        tel.gauge("queue.depth", 2);
        {
            let _outer = tel.span("stage");
            let _inner = tel.timed("stage.sub");
        }
        tel.observe("req.latency", 100);
        tel.observe("req.latency", 200_000);
        tel.snapshot()
    }

    #[test]
    fn prometheus_families_are_well_formed() {
        let text = prometheus_text(&sample());
        assert!(text.contains("# TYPE qi_matcher_pairs_total counter"));
        assert!(text.contains("qi_matcher_pairs_total 5"));
        assert!(text.contains("# TYPE qi_queue_depth gauge"));
        assert!(text.contains("# TYPE qi_req_latency histogram"));
        assert!(text.contains("qi_req_latency_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("qi_req_latency_count 2"));
        assert!(text.contains("qi_req_latency_sum 200100"));
        assert!(text.contains("# TYPE qi_stage_calls_total counter"));
        assert!(text.contains("# TYPE qi_stage_ns_total counter"));
        // Every # TYPE family is declared exactly once.
        let mut families = std::collections::BTreeSet::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let fam = rest.split(' ').next().unwrap();
                assert!(families.insert(fam.to_string()), "duplicate family {fam}");
            }
        }
        // Cumulative buckets end at the count.
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn prometheus_and_trace_are_deterministic() {
        let build = || {
            let tel = Telemetry::deterministic();
            tel.incr("c");
            let _g = tel.timed("a");
            drop(_g);
            let _g = tel.timed("a.b");
            drop(_g);
            tel.snapshot()
        };
        let (a, b) = (build(), build());
        assert_eq!(prometheus_text(&a), prometheus_text(&b));
        assert_eq!(chrome_trace(&a), chrome_trace(&b));
    }

    #[test]
    fn chrome_trace_nests_children_inside_parents() {
        let snapshot = sample();
        let trace = chrome_trace(&snapshot);
        assert!(trace.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(trace.contains("\"name\":\"stage\""));
        assert!(trace.contains("\"name\":\"stage.sub\""));
        assert!(trace.contains("\"ph\":\"X\""));
        // The child event's window fits inside the parent's: both start
        // at the same ts, and the child's dur is <= the parent's.
        let dur = |name: &str| -> f64 {
            let marker = format!("\"name\":\"{name}\"");
            let event = trace.split('{').find(|e| e.contains(&marker)).unwrap();
            let dur = event.split("\"dur\":").nth(1).unwrap();
            dur.split(',').next().unwrap().parse().unwrap()
        };
        assert!(dur("stage.sub") <= dur("stage"));
    }

    #[test]
    fn sanitize_maps_dots_and_dashes() {
        assert_eq!(sanitize("a.b-c"), "qi_a_b_c");
        assert_eq!(sanitize("plain"), "qi_plain");
    }
}
