//! Bounded scoped thread pool over `std::thread::scope`.
//!
//! Replaces the one-unbounded-thread-per-domain `crossbeam` scope: a
//! fixed roster of workers pulls item indices from a shared atomic
//! cursor (self-balancing — cheap items don't idle a worker while an
//! expensive one runs), results come back in input order, and panics are
//! either propagated ([`parallel_map`]) or isolated per item
//! ([`parallel_try_map`]) so one poisoned domain cannot sink a corpus
//! run.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Upper bound on worker count: evaluation items (domains, groups) are
/// coarse, so more threads than this only adds scheduling noise.
pub const MAX_THREADS: usize = 16;

/// Resolve a requested thread count: `0` means "use the hardware",
/// anything else is clamped to `[1, MAX_THREADS]`.
pub fn resolve_threads(requested: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let n = if requested == 0 { hw } else { requested };
    n.clamp(1, MAX_THREADS)
}

/// Map `f` over `items` on up to `threads` scoped workers, returning
/// results in input order. Panics in `f` are propagated to the caller.
///
/// `threads` is resolved via [`resolve_threads`] and additionally capped
/// at `items.len()`; with one worker (or one item) the map degenerates to
/// a plain sequential loop with no thread spawned at all, so a
/// single-threaded run is exactly the code the benchmark baseline times.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let results = run(items, threads, |i, item| f(i, item));
    results
        .into_iter()
        .map(|r| r.expect("worker panicked"))
        .collect()
}

/// Map `f` over `items` in contiguous chunks of `chunk_size`, on up to
/// `threads` scoped workers, returning results in input order.
///
/// [`parallel_map`] hands out one item per cursor fetch, which is right
/// for coarse work (a whole domain per item) but drowns fine-grained
/// work in cursor contention and per-slot locking — candidate-pair
/// scoring in the matcher runs `f` for hundreds of thousands of cheap
/// predicates. Here workers claim whole bucket partitions at a time and
/// write each chunk's results into a dedicated slot, so synchronisation
/// cost is per chunk, not per item. Output order (and therefore every
/// downstream merge) is independent of scheduling. Panics in `f`
/// propagate to the caller.
pub fn parallel_map_chunked<T, R, F>(items: &[T], threads: usize, chunk_size: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let chunk_size = chunk_size.max(1);
    let workers = resolve_threads(threads).min(items.len().div_ceil(chunk_size).max(1));
    if workers <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let n_chunks = items.len().div_ceil(chunk_size);
    let mut chunk_slots: Vec<Mutex<Vec<R>>> = Vec::new();
    chunk_slots.resize_with(n_chunks, || Mutex::new(Vec::new()));
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let c = cursor.fetch_add(1, Ordering::Relaxed);
                if c >= n_chunks {
                    break;
                }
                let start = c * chunk_size;
                let end = (start + chunk_size).min(items.len());
                let out: Vec<R> = items[start..end]
                    .iter()
                    .enumerate()
                    .map(|(off, item)| f(start + off, item))
                    .collect();
                *chunk_slots[c].lock().expect("chunk slot poisoned") = out;
            });
        }
    });
    let mut results: Vec<R> = Vec::with_capacity(items.len());
    for slot in chunk_slots {
        results.extend(slot.into_inner().expect("chunk slot poisoned"));
    }
    assert_eq!(results.len(), items.len(), "worker skipped a chunk");
    results
}

/// Like [`parallel_map`], but a panic in `f` yields `Err(message)` for
/// that item instead of aborting the whole map.
pub fn parallel_try_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run(items, threads, f)
}

fn run<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = resolve_threads(threads).min(items.len().max(1));
    let guarded_call = |i: usize, item: &T| -> Result<R, String> {
        catch_unwind(AssertUnwindSafe(|| f(i, item))).map_err(|payload| {
            if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "worker panicked".to_string()
            }
        })
    };
    if workers <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| guarded_call(i, item))
            .collect();
    }
    let mut slots: Vec<Option<Result<R, String>>> = Vec::new();
    slots.resize_with(items.len(), || None);
    let slots = Mutex::new(slots);
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let result = guarded_call(i, &items[i]);
                slots.lock().expect("result slots poisoned")[i] = Some(result);
            });
        }
    });
    slots
        .into_inner()
        .expect("result slots poisoned")
        .into_iter()
        .map(|slot| slot.expect("worker skipped an item"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 4, 16] {
            let out = parallel_map(&items, threads, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn chunked_maps_in_order() {
        let items: Vec<usize> = (0..257).collect();
        for threads in [1, 4, 16] {
            for chunk in [1, 7, 64, 1000] {
                let out = parallel_map_chunked(&items, threads, chunk, |i, &x| {
                    assert_eq!(i, x);
                    x * 3
                });
                assert_eq!(out, (0..257).map(|x| x * 3).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn chunked_empty_and_zero_chunk() {
        let out: Vec<u32> = parallel_map_chunked(&[] as &[u32], 4, 0, |_, &x| x);
        assert!(out.is_empty());
        let out = parallel_map_chunked(&[5u32], 4, 0, |_, &x| x + 1);
        assert_eq!(out, vec![6]);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = parallel_map(&[] as &[u32], 4, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn try_map_isolates_panics() {
        let items = vec![1u32, 2, 3, 4];
        let out = parallel_try_map(&items, 4, |_, &x| {
            if x == 3 {
                panic!("bad domain {x}");
            }
            x * 10
        });
        assert_eq!(out[0], Ok(10));
        assert_eq!(out[1], Ok(20));
        assert_eq!(out[3], Ok(40));
        let err = out[2].as_ref().unwrap_err();
        assert!(err.contains("bad domain 3"), "{err}");
    }

    #[test]
    fn sequential_path_isolates_panics_too() {
        let items = vec![1u32, 2];
        let out = parallel_try_map(&items, 1, |_, &x| {
            if x == 1 {
                panic!("boom");
            }
            x
        });
        assert!(out[0].is_err());
        assert_eq!(out[1], Ok(2));
    }

    #[test]
    fn resolve_threads_clamps() {
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(MAX_THREADS + 50), MAX_THREADS);
        let auto = resolve_threads(0);
        assert!((1..=MAX_THREADS).contains(&auto));
    }

    #[test]
    fn work_is_shared_across_workers() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let items: Vec<u32> = (0..64).collect();
        parallel_map(&items, 4, |_, _| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            seen.lock().unwrap().insert(std::thread::current().id());
        });
        assert!(seen.lock().unwrap().len() > 1, "expected multiple workers");
    }
}
