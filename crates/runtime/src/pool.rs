//! Bounded scoped thread pool over `std::thread::scope`.
//!
//! Replaces the one-unbounded-thread-per-domain `crossbeam` scope: a
//! fixed roster of workers pulls item indices from a shared atomic
//! cursor (self-balancing — cheap items don't idle a worker while an
//! expensive one runs), results come back in input order, and panics are
//! either propagated ([`parallel_map`]) or isolated per item
//! ([`parallel_try_map`]) so one poisoned domain cannot sink a corpus
//! run.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Upper bound on worker count: evaluation items (domains, groups) are
/// coarse, so more threads than this only adds scheduling noise.
pub const MAX_THREADS: usize = 16;

/// Resolve a requested thread count: `0` means "use the hardware",
/// anything else is clamped to `[1, MAX_THREADS]`.
pub fn resolve_threads(requested: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let n = if requested == 0 { hw } else { requested };
    n.clamp(1, MAX_THREADS)
}

/// Map `f` over `items` on up to `threads` scoped workers, returning
/// results in input order. Panics in `f` are propagated to the caller.
///
/// `threads` is resolved via [`resolve_threads`] and additionally capped
/// at `items.len()`; with one worker (or one item) the map degenerates to
/// a plain sequential loop with no thread spawned at all, so a
/// single-threaded run is exactly the code the benchmark baseline times.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let results = run(items, threads, |i, item| f(i, item));
    results
        .into_iter()
        .map(|r| r.expect("worker panicked"))
        .collect()
}

/// Map `f` over `items` in contiguous chunks of `chunk_size`, on up to
/// `threads` scoped workers, returning results in input order.
///
/// [`parallel_map`] hands out one item per cursor fetch, which is right
/// for coarse work (a whole domain per item) but drowns fine-grained
/// work in cursor contention and per-slot locking — candidate-pair
/// scoring in the matcher runs `f` for hundreds of thousands of cheap
/// predicates. Here workers claim whole bucket partitions at a time and
/// write each chunk's results into a dedicated slot, so synchronisation
/// cost is per chunk, not per item. Output order (and therefore every
/// downstream merge) is independent of scheduling. Panics in `f`
/// propagate to the caller.
pub fn parallel_map_chunked<T, R, F>(items: &[T], threads: usize, chunk_size: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let chunk_size = chunk_size.max(1);
    let workers = resolve_threads(threads).min(items.len().div_ceil(chunk_size).max(1));
    if workers <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let n_chunks = items.len().div_ceil(chunk_size);
    let mut chunk_slots: Vec<Mutex<Vec<R>>> = Vec::new();
    chunk_slots.resize_with(n_chunks, || Mutex::new(Vec::new()));
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let c = cursor.fetch_add(1, Ordering::Relaxed);
                if c >= n_chunks {
                    break;
                }
                let start = c * chunk_size;
                let end = (start + chunk_size).min(items.len());
                let out: Vec<R> = items[start..end]
                    .iter()
                    .enumerate()
                    .map(|(off, item)| f(start + off, item))
                    .collect();
                *chunk_slots[c].lock().expect("chunk slot poisoned") = out;
            });
        }
    });
    let mut results: Vec<R> = Vec::with_capacity(items.len());
    for slot in chunk_slots {
        results.extend(slot.into_inner().expect("chunk slot poisoned"));
    }
    assert_eq!(results.len(), items.len(), "worker skipped a chunk");
    results
}

/// Like [`parallel_map`], but a panic in `f` yields `Err(message)` for
/// that item instead of aborting the whole map.
pub fn parallel_try_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run(items, threads, f)
}

fn run<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = resolve_threads(threads).min(items.len().max(1));
    let guarded_call = |i: usize, item: &T| -> Result<R, String> {
        catch_unwind(AssertUnwindSafe(|| f(i, item))).map_err(|payload| {
            if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "worker panicked".to_string()
            }
        })
    };
    if workers <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| guarded_call(i, item))
            .collect();
    }
    let mut slots: Vec<Option<Result<R, String>>> = Vec::new();
    slots.resize_with(items.len(), || None);
    let slots = Mutex::new(slots);
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let result = guarded_call(i, &items[i]);
                slots.lock().expect("result slots poisoned")[i] = Some(result);
            });
        }
    });
    slots
        .into_inner()
        .expect("result slots poisoned")
        .into_iter()
        .map(|slot| slot.expect("worker skipped an item"))
        .collect()
}

/// A bounded multi-producer/multi-consumer job queue for long-lived
/// worker pools.
///
/// The batch maps above ([`parallel_map`] and friends) drive a *known*
/// item list to completion; a server's accept loop instead produces jobs
/// indefinitely and must shed load rather than buffer without bound.
/// `JobQueue` is the handoff point: producers [`JobQueue::push`] without
/// blocking (a full or closed queue rejects the job so the caller can
/// answer 503 instead of queueing forever), consumers block in
/// [`JobQueue::pop`] until a job arrives, and [`JobQueue::close`] wakes
/// every consumer once the remaining jobs drain — the graceful-shutdown
/// path.
#[derive(Debug)]
pub struct JobQueue<T> {
    state: Mutex<QueueState<T>>,
    ready: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> JobQueue<T> {
    /// A queue holding at most `capacity` pending jobs (minimum 1).
    pub fn bounded(capacity: usize) -> Self {
        JobQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueue a job without blocking. Returns the job back when the
    /// queue is full (shed load) or closed (shutting down).
    pub fn push(&self, job: T) -> Result<(), T> {
        let mut state = self.state.lock().expect("job queue poisoned");
        if state.closed || state.items.len() >= self.capacity {
            return Err(job);
        }
        state.items.push_back(job);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeue the next job, blocking while the queue is open and empty.
    /// `None` means the queue was closed and fully drained — the
    /// consumer should exit.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("job queue poisoned");
        loop {
            if let Some(job) = state.items.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("job queue poisoned");
        }
    }

    /// Close the queue: further pushes fail, consumers drain what is
    /// left and then observe `None`.
    pub fn close(&self) {
        self.state.lock().expect("job queue poisoned").closed = true;
        self.ready.notify_all();
    }

    /// Whether [`JobQueue::close`] was called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("job queue poisoned").closed
    }

    /// Number of jobs currently waiting.
    pub fn len(&self) -> usize {
        self.state.lock().expect("job queue poisoned").items.len()
    }

    /// True when no job is waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 4, 16] {
            let out = parallel_map(&items, threads, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn chunked_maps_in_order() {
        let items: Vec<usize> = (0..257).collect();
        for threads in [1, 4, 16] {
            for chunk in [1, 7, 64, 1000] {
                let out = parallel_map_chunked(&items, threads, chunk, |i, &x| {
                    assert_eq!(i, x);
                    x * 3
                });
                assert_eq!(out, (0..257).map(|x| x * 3).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn chunked_empty_and_zero_chunk() {
        let out: Vec<u32> = parallel_map_chunked(&[] as &[u32], 4, 0, |_, &x| x);
        assert!(out.is_empty());
        let out = parallel_map_chunked(&[5u32], 4, 0, |_, &x| x + 1);
        assert_eq!(out, vec![6]);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = parallel_map(&[] as &[u32], 4, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn try_map_isolates_panics() {
        let items = vec![1u32, 2, 3, 4];
        let out = parallel_try_map(&items, 4, |_, &x| {
            if x == 3 {
                panic!("bad domain {x}");
            }
            x * 10
        });
        assert_eq!(out[0], Ok(10));
        assert_eq!(out[1], Ok(20));
        assert_eq!(out[3], Ok(40));
        let err = out[2].as_ref().unwrap_err();
        assert!(err.contains("bad domain 3"), "{err}");
    }

    #[test]
    fn sequential_path_isolates_panics_too() {
        let items = vec![1u32, 2];
        let out = parallel_try_map(&items, 1, |_, &x| {
            if x == 1 {
                panic!("boom");
            }
            x
        });
        assert!(out[0].is_err());
        assert_eq!(out[1], Ok(2));
    }

    #[test]
    fn resolve_threads_clamps() {
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(MAX_THREADS + 50), MAX_THREADS);
        let auto = resolve_threads(0);
        assert!((1..=MAX_THREADS).contains(&auto));
    }

    #[test]
    fn job_queue_rejects_when_full_or_closed() {
        let queue: JobQueue<u32> = JobQueue::bounded(2);
        assert!(queue.is_empty());
        queue.push(1).unwrap();
        queue.push(2).unwrap();
        assert_eq!(queue.push(3), Err(3), "over capacity");
        assert_eq!(queue.len(), 2);
        assert_eq!(queue.pop(), Some(1));
        queue.push(3).unwrap();
        queue.close();
        assert!(queue.is_closed());
        assert_eq!(queue.push(4), Err(4), "closed");
        // Remaining jobs drain before the close is observed.
        assert_eq!(queue.pop(), Some(2));
        assert_eq!(queue.pop(), Some(3));
        assert_eq!(queue.pop(), None);
    }

    #[test]
    fn job_queue_feeds_blocked_workers() {
        let queue: JobQueue<u32> = JobQueue::bounded(64);
        let sum = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    while let Some(job) = queue.pop() {
                        sum.fetch_add(job as usize, Ordering::Relaxed);
                    }
                });
            }
            scope.spawn(|| {
                for job in 1..=32u32 {
                    let mut pending = job;
                    // Spin on a full queue: production outpaces the sum.
                    while let Err(back) = queue.push(pending) {
                        pending = back;
                        std::thread::yield_now();
                    }
                }
                queue.close();
            });
        });
        assert_eq!(sum.load(Ordering::Relaxed), (1..=32).sum::<u32>() as usize);
    }

    #[test]
    fn work_is_shared_across_workers() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let items: Vec<u32> = (0..64).collect();
        parallel_map(&items, 4, |_, _| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            seen.lock().unwrap().insert(std::thread::current().id());
        });
        assert!(seen.lock().unwrap().len() > 1, "expected multiple workers");
    }
}
