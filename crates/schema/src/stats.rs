//! Interface statistics (the per-domain characteristics of Table 6).

/// Shape and labeling statistics of one schema tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterfaceStats {
    /// Number of fields.
    pub leaves: usize,
    /// Number of internal nodes, excluding the root.
    pub internal_nodes: usize,
    /// Maximum number of nodes on a root-to-leaf path (root counted).
    pub depth: usize,
    /// Nodes (fields + internal, root excluded) that carry a label.
    pub labeled: usize,
    /// Nodes that could carry a label (everything but the root).
    pub labelable: usize,
}

impl InterfaceStats {
    /// The paper's LQ metric for one interface: fraction of labeled nodes.
    pub fn labeling_quality(&self) -> f64 {
        if self.labelable == 0 {
            0.0
        } else {
            self.labeled as f64 / self.labelable as f64
        }
    }
}

/// Average of per-interface statistics across a domain (Table 6 columns
/// 2–5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DomainStats {
    /// Number of interfaces aggregated.
    pub interfaces: usize,
    /// Average number of fields per interface.
    pub avg_leaves: f64,
    /// Average number of internal nodes per interface.
    pub avg_internal_nodes: f64,
    /// Average tree depth.
    pub avg_depth: f64,
    /// Average labeling quality (LQ).
    pub avg_labeling_quality: f64,
}

impl DomainStats {
    /// Aggregate per-interface statistics.
    pub fn aggregate(stats: &[InterfaceStats]) -> DomainStats {
        let n = stats.len();
        if n == 0 {
            return DomainStats {
                interfaces: 0,
                avg_leaves: 0.0,
                avg_internal_nodes: 0.0,
                avg_depth: 0.0,
                avg_labeling_quality: 0.0,
            };
        }
        let nf = n as f64;
        DomainStats {
            interfaces: n,
            avg_leaves: stats.iter().map(|s| s.leaves as f64).sum::<f64>() / nf,
            avg_internal_nodes: stats.iter().map(|s| s.internal_nodes as f64).sum::<f64>() / nf,
            avg_depth: stats.iter().map(|s| s.depth as f64).sum::<f64>() / nf,
            avg_labeling_quality: stats
                .iter()
                .map(InterfaceStats::labeling_quality)
                .sum::<f64>()
                / nf,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labeling_quality_ratio() {
        let s = InterfaceStats {
            leaves: 4,
            internal_nodes: 2,
            depth: 3,
            labeled: 3,
            labelable: 6,
        };
        assert!((s.labeling_quality() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn labeling_quality_empty() {
        let s = InterfaceStats {
            leaves: 0,
            internal_nodes: 0,
            depth: 1,
            labeled: 0,
            labelable: 0,
        };
        assert_eq!(s.labeling_quality(), 0.0);
    }

    #[test]
    fn aggregate_averages() {
        let a = InterfaceStats {
            leaves: 10,
            internal_nodes: 4,
            depth: 3,
            labeled: 10,
            labelable: 14,
        };
        let b = InterfaceStats {
            leaves: 6,
            internal_nodes: 2,
            depth: 2,
            labeled: 4,
            labelable: 8,
        };
        let d = DomainStats::aggregate(&[a, b]);
        assert_eq!(d.interfaces, 2);
        assert!((d.avg_leaves - 8.0).abs() < 1e-12);
        assert!((d.avg_internal_nodes - 3.0).abs() < 1e-12);
        assert!((d.avg_depth - 2.5).abs() < 1e-12);
        let expected_lq = (10.0 / 14.0 + 0.5) / 2.0;
        assert!((d.avg_labeling_quality - expected_lq).abs() < 1e-12);
    }

    #[test]
    fn aggregate_empty() {
        let d = DomainStats::aggregate(&[]);
        assert_eq!(d.interfaces, 0);
        assert_eq!(d.avg_leaves, 0.0);
    }
}
