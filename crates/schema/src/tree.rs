//! The ordered schema tree and its queries.

use crate::error::SchemaError;
use crate::node::{Node, NodeId, NodeKind, Widget};
use crate::spec::NodeSpec;
use crate::stats::InterfaceStats;

/// An ordered schema tree abstracting one query interface (§2.3 of the
/// paper). Nodes live in an arena; the root (`NodeId::ROOT`) stands for
/// the interface itself and is never labeled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaTree {
    name: String,
    nodes: Vec<Node>,
}

/// A maximal set of field siblings under one non-root internal node — the
/// paper's *group* of fields (§2.2). Groups with a single leaf are the
/// *isolated* fields of `C_int`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeafGroup {
    /// The internal node the fields hang off.
    pub parent: NodeId,
    /// The fields, in interface order.
    pub leaves: Vec<NodeId>,
}

impl SchemaTree {
    /// Create a tree holding only the (unlabeled) root.
    pub fn new(name: &str) -> Self {
        SchemaTree {
            name: name.to_string(),
            nodes: vec![Node {
                id: NodeId::ROOT,
                label: None,
                kind: NodeKind::Internal,
                parent: None,
                children: Vec::new(),
            }],
        }
    }

    /// Build and validate a tree from declarative specs (children of the
    /// root, in interface order).
    pub fn build(name: &str, specs: Vec<NodeSpec>) -> Result<Self, SchemaError> {
        let mut tree = SchemaTree::new(name);
        for spec in specs {
            tree.add_spec(NodeId::ROOT, &spec);
        }
        tree.validate()?;
        Ok(tree)
    }

    fn add_spec(&mut self, parent: NodeId, spec: &NodeSpec) -> NodeId {
        match spec {
            NodeSpec::Leaf {
                label,
                widget,
                instances,
            } => self.add_leaf_full(parent, label.as_deref(), *widget, instances.clone()),
            NodeSpec::Internal { label, children } => {
                let id = self.add_internal(parent, label.as_deref());
                for child in children {
                    self.add_spec(id, child);
                }
                id
            }
        }
    }

    /// Interface name (e.g. `aa`, `british`, `economytravel`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total node count, including the root.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Never true: a tree always has its root.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The root node.
    pub fn root(&self) -> &Node {
        &self.nodes[0]
    }

    /// Node lookup. Panics on a foreign id — ids are only valid for the
    /// tree that created them.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// All nodes in arena order.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter()
    }

    /// All fields (leaves), in arena order.
    pub fn leaves(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter().filter(|n| n.is_leaf())
    }

    /// Internal nodes other than the root.
    pub fn internal_nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes
            .iter()
            .filter(|n| !n.is_leaf() && n.id != NodeId::ROOT)
    }

    /// Ordered children of a node.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id.index()].children
    }

    /// Parent of a node (`None` for the root).
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.index()].parent
    }

    /// Append a labeled/unlabeled internal node under `parent`.
    pub fn add_internal(&mut self, parent: NodeId, label: Option<&str>) -> NodeId {
        self.push_node(parent, label, NodeKind::Internal)
    }

    /// Append a plain text-box leaf under `parent`.
    pub fn add_leaf(&mut self, parent: NodeId, label: Option<&str>) -> NodeId {
        self.push_node(parent, label, NodeKind::plain_leaf())
    }

    /// Append a leaf with explicit widget and instance domain.
    pub fn add_leaf_full(
        &mut self,
        parent: NodeId,
        label: Option<&str>,
        widget: Widget,
        instances: Vec<String>,
    ) -> NodeId {
        self.push_node(parent, label, NodeKind::Leaf { widget, instances })
    }

    fn push_node(&mut self, parent: NodeId, label: Option<&str>, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            id,
            label: label.map(|l| l.to_string()),
            kind,
            parent: Some(parent),
            children: Vec::new(),
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Replace a node's label.
    pub fn set_label(&mut self, id: NodeId, label: Option<String>) {
        self.nodes[id.index()].label = label;
    }

    /// Turn a leaf into an internal node, dropping its widget/instances.
    /// Used by 1:m expansion (§2.1: the `Passengers` leaf becomes an
    /// internal node whose children match the finer-grained fields).
    pub fn convert_leaf_to_internal(&mut self, id: NodeId) {
        debug_assert!(self.nodes[id.index()].is_leaf());
        self.nodes[id.index()].kind = NodeKind::Internal;
    }

    /// Ids of all descendant leaves of `id` (in document order); if `id`
    /// is itself a leaf, returns just `id`.
    pub fn descendant_leaves(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.collect_leaves(id, &mut out);
        out
    }

    fn collect_leaves(&self, id: NodeId, out: &mut Vec<NodeId>) {
        let node = &self.nodes[id.index()];
        if node.is_leaf() {
            out.push(id);
        } else {
            for &child in &node.children {
                self.collect_leaves(child, out);
            }
        }
    }

    /// Nodes from `id`'s parent up to and including the root — the paper's
    /// `path(e)` (§6), which excludes `e` itself.
    pub fn path_to_root(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut current = self.nodes[id.index()].parent;
        while let Some(p) = current {
            out.push(p);
            current = self.nodes[p.index()].parent;
        }
        out
    }

    /// Lowest common ancestor of a non-empty id set.
    pub fn lca(&self, ids: &[NodeId]) -> NodeId {
        assert!(!ids.is_empty(), "lca of empty set");
        let mut acc: Vec<NodeId> = {
            let mut path = self.path_to_root(ids[0]);
            path.insert(0, ids[0]);
            path
        };
        for &id in &ids[1..] {
            let mut path = self.path_to_root(id);
            path.insert(0, id);
            acc.retain(|n| path.contains(n));
        }
        acc[0]
    }

    /// Depth of a node: number of nodes on the path from the root to it,
    /// inclusive (root has depth 1).
    pub fn node_depth(&self, id: NodeId) -> usize {
        1 + self.path_to_root(id).len()
    }

    /// Tree depth: maximum leaf depth.
    pub fn depth(&self) -> usize {
        self.leaves()
            .map(|leaf| self.node_depth(leaf.id))
            .max()
            .unwrap_or(1)
    }

    /// Pre-order traversal (root first).
    pub fn preorder(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![NodeId::ROOT];
        while let Some(id) = stack.pop() {
            out.push(id);
            for &child in self.nodes[id.index()].children.iter().rev() {
                stack.push(child);
            }
        }
        out
    }

    /// Post-order traversal (root last) — the bottom-up order of the
    /// labeling algorithm's first phase (§6).
    pub fn postorder(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        self.postorder_into(NodeId::ROOT, &mut out);
        out
    }

    fn postorder_into(&self, id: NodeId, out: &mut Vec<NodeId>) {
        for &child in &self.nodes[id.index()].children {
            self.postorder_into(child, out);
        }
        out.push(id);
    }

    /// The field groups of the interface: for every non-root internal
    /// node, its leaf children form one group (singleton groups are the
    /// isolated fields of `C_int`).
    pub fn leaf_groups(&self) -> Vec<LeafGroup> {
        let mut out = Vec::new();
        for node in self.internal_nodes() {
            let leaves: Vec<NodeId> = node
                .children
                .iter()
                .copied()
                .filter(|&c| self.nodes[c.index()].is_leaf())
                .collect();
            if !leaves.is_empty() {
                out.push(LeafGroup {
                    parent: node.id,
                    leaves,
                });
            }
        }
        out
    }

    /// Fields that are direct children of the root (`C_root`).
    pub fn root_leaves(&self) -> Vec<NodeId> {
        self.root()
            .children
            .iter()
            .copied()
            .filter(|&c| self.nodes[c.index()].is_leaf())
            .collect()
    }

    /// Interface statistics (Table 6, columns 2–5 per interface).
    pub fn stats(&self) -> InterfaceStats {
        let leaves = self.leaves().count();
        let internal = self.internal_nodes().count();
        let labelable = self.nodes.len() - 1; // all but root
        let labeled = self
            .nodes
            .iter()
            .filter(|n| n.id != NodeId::ROOT && n.label.is_some())
            .count();
        InterfaceStats {
            leaves,
            internal_nodes: internal,
            depth: self.depth(),
            labeled,
            labelable,
        }
    }

    /// Structural validation; `build` runs this automatically.
    pub fn validate(&self) -> Result<(), SchemaError> {
        if self.name.trim().is_empty() {
            return Err(SchemaError::EmptyName);
        }
        if self.leaves().next().is_none() {
            return Err(SchemaError::NoFields);
        }
        for node in &self.nodes {
            if node.is_leaf() && !node.children.is_empty() {
                return Err(SchemaError::LeafWithChildren(node.id));
            }
            if let Some(label) = &node.label {
                if label.trim().is_empty() {
                    return Err(SchemaError::BlankLabel(node.id));
                }
            }
            for &child in &node.children {
                if self.nodes[child.index()].parent != Some(node.id) {
                    return Err(SchemaError::BrokenParentLink(child));
                }
            }
        }
        Ok(())
    }

    /// Render the tree as indented ASCII, for examples and debugging.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("[{}]\n", self.name));
        self.render_into(NodeId::ROOT, 0, &mut out);
        out
    }

    fn render_into(&self, id: NodeId, depth: usize, out: &mut String) {
        if id != NodeId::ROOT {
            let node = &self.nodes[id.index()];
            let marker = if node.is_leaf() { "-" } else { "+" };
            let label = node.label.as_deref().unwrap_or("(no label)");
            out.push_str(&format!("{}{} {}", "  ".repeat(depth), marker, label));
            let inst = node.instances();
            if !inst.is_empty() {
                let preview: Vec<&str> = inst.iter().take(3).map(String::as_str).collect();
                out.push_str(&format!(
                    " {{{}{}}}",
                    preview.join(", "),
                    if inst.len() > 3 { ", …" } else { "" }
                ));
            }
            out.push('\n');
        }
        for &child in &self.nodes[id.index()].children {
            self.render_into(child, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{leaf, node, select, unlabeled_leaf, unlabeled_node};

    /// The Vacations fragment of Figure 2.
    fn vacations() -> SchemaTree {
        SchemaTree::build(
            "vacations",
            vec![
                node(
                    "Where and when do you want to travel?",
                    vec![leaf("Departing from"), leaf("Going to")],
                ),
                node(
                    "How many people are going?",
                    vec![leaf("Adults"), leaf("Seniors"), leaf("Children")],
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn build_counts() {
        let t = vacations();
        assert_eq!(t.len(), 8); // root + 2 groups + 5 fields
        assert_eq!(t.leaves().count(), 5);
        assert_eq!(t.internal_nodes().count(), 2);
        assert_eq!(t.depth(), 3);
    }

    #[test]
    fn groups_and_root_leaves() {
        let t = vacations();
        let groups = t.leaf_groups();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].leaves.len(), 2);
        assert_eq!(groups[1].leaves.len(), 3);
        assert!(t.root_leaves().is_empty());
    }

    #[test]
    fn flat_interface_root_leaves() {
        let t = SchemaTree::build("flat", vec![leaf("A"), leaf("B")]).unwrap();
        assert_eq!(t.root_leaves().len(), 2);
        assert!(t.leaf_groups().is_empty());
        assert_eq!(t.depth(), 2);
    }

    #[test]
    fn descendant_leaves_in_document_order() {
        let t = vacations();
        let all = t.descendant_leaves(NodeId::ROOT);
        let labels: Vec<&str> = all.iter().map(|&id| t.node(id).label_str()).collect();
        assert_eq!(
            labels,
            vec![
                "Departing from",
                "Going to",
                "Adults",
                "Seniors",
                "Children"
            ]
        );
    }

    #[test]
    fn lca_and_paths() {
        let t = vacations();
        let leaves = t.descendant_leaves(NodeId::ROOT);
        // Adults & Seniors share the "How many people" group.
        let lca = t.lca(&[leaves[2], leaves[3]]);
        assert_eq!(t.node(lca).label_str(), "How many people are going?");
        // Across groups the LCA is the root.
        assert_eq!(t.lca(&[leaves[0], leaves[2]]), NodeId::ROOT);
        // path(e) excludes e and ends at the root.
        let path = t.path_to_root(leaves[2]);
        assert_eq!(path.len(), 2);
        assert_eq!(*path.last().unwrap(), NodeId::ROOT);
    }

    #[test]
    fn lca_of_single_node_is_itself() {
        let t = vacations();
        let leaves = t.descendant_leaves(NodeId::ROOT);
        assert_eq!(t.lca(&[leaves[0]]), leaves[0]);
    }

    #[test]
    fn traversal_orders() {
        let t = vacations();
        let pre = t.preorder();
        assert_eq!(pre[0], NodeId::ROOT);
        assert_eq!(pre.len(), t.len());
        let post = t.postorder();
        assert_eq!(*post.last().unwrap(), NodeId::ROOT);
        assert_eq!(post.len(), t.len());
        // In postorder every child precedes its parent.
        for (i, &id) in post.iter().enumerate() {
            if let Some(p) = t.parent(id) {
                let pi = post.iter().position(|&x| x == p).unwrap();
                assert!(pi > i);
            }
        }
    }

    #[test]
    fn stats_and_labeling_quality() {
        let t = SchemaTree::build(
            "half-labeled",
            vec![
                node("G", vec![leaf("a"), unlabeled_leaf()]),
                unlabeled_node(vec![leaf("b"), unlabeled_leaf()]),
            ],
        )
        .unwrap();
        let stats = t.stats();
        assert_eq!(stats.leaves, 4);
        assert_eq!(stats.internal_nodes, 2);
        assert_eq!(stats.labeled, 3);
        assert_eq!(stats.labelable, 6);
        assert!((stats.labeling_quality() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn validation_catches_blank_label() {
        let err = SchemaTree::build("x", vec![leaf("  ")]).unwrap_err();
        assert!(matches!(err, SchemaError::BlankLabel(_)));
    }

    #[test]
    fn validation_catches_empty_tree_and_name() {
        assert_eq!(
            SchemaTree::build("x", vec![]).unwrap_err(),
            SchemaError::NoFields
        );
        assert_eq!(
            SchemaTree::build("  ", vec![leaf("a")]).unwrap_err(),
            SchemaError::EmptyName
        );
    }

    #[test]
    fn convert_leaf_to_internal_for_expansion() {
        let mut t = SchemaTree::build("m", vec![leaf("Passengers")]).unwrap();
        let passengers = t.descendant_leaves(NodeId::ROOT)[0];
        t.convert_leaf_to_internal(passengers);
        t.add_leaf(passengers, Some("Adults"));
        t.add_leaf(passengers, Some("Children"));
        assert_eq!(t.leaves().count(), 2);
        assert_eq!(t.node(passengers).label_str(), "Passengers");
        assert!(!t.node(passengers).is_leaf());
        t.validate().unwrap();
    }

    #[test]
    fn render_shows_structure_and_instances() {
        let t = SchemaTree::build(
            "r",
            vec![node(
                "G",
                vec![select("Format", &["hardcover", "paperback"])],
            )],
        )
        .unwrap();
        let s = t.render();
        assert!(s.contains("+ G"));
        assert!(s.contains("- Format {hardcover, paperback}"));
    }

    #[test]
    fn round_trip_via_clone_eq() {
        // Corpus snapshots rely on structural equality being a full
        // deep-content contract.
        let t = vacations();
        assert_eq!(t, t.clone());
    }
}
