//! Declarative construction of schema trees.
//!
//! The corpus crate builds 150 interfaces; a terse, readable builder
//! matters. A tree is described by nesting [`NodeSpec`] values:
//!
//! ```
//! use qi_schema::{SchemaTree, spec::{leaf, select, node, unlabeled_leaf}};
//!
//! let tree = SchemaTree::build(
//!     "example",
//!     vec![
//!         node("Trip", vec![leaf("From"), leaf("To")]),
//!         select("Format", &["hardcover", "paperback"]),
//!         unlabeled_leaf(),
//!     ],
//! ).unwrap();
//! assert_eq!(tree.leaves().count(), 4);
//! ```

use crate::node::Widget;

/// Declarative description of a subtree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeSpec {
    /// A field.
    Leaf {
        /// Field label; `None` for unlabeled fields.
        label: Option<String>,
        /// Widget kind.
        widget: Widget,
        /// Predefined instance domain.
        instances: Vec<String>,
    },
    /// A (super)group.
    Internal {
        /// Group label; `None` for unlabeled groups.
        label: Option<String>,
        /// Ordered children.
        children: Vec<NodeSpec>,
    },
}

/// A labeled free-text field.
pub fn leaf(label: &str) -> NodeSpec {
    NodeSpec::Leaf {
        label: Some(label.to_string()),
        widget: Widget::TextBox,
        instances: Vec::new(),
    }
}

/// An unlabeled free-text field (real interfaces have plenty — Table 6,
/// column LQ).
pub fn unlabeled_leaf() -> NodeSpec {
    NodeSpec::Leaf {
        label: None,
        widget: Widget::TextBox,
        instances: Vec::new(),
    }
}

/// A labeled selection list with a predefined instance domain.
pub fn select(label: &str, instances: &[&str]) -> NodeSpec {
    NodeSpec::Leaf {
        label: Some(label.to_string()),
        widget: Widget::SelectList,
        instances: instances.iter().map(|s| s.to_string()).collect(),
    }
}

/// An unlabeled selection list with a predefined instance domain.
pub fn unlabeled_select(instances: &[&str]) -> NodeSpec {
    NodeSpec::Leaf {
        label: None,
        widget: Widget::SelectList,
        instances: instances.iter().map(|s| s.to_string()).collect(),
    }
}

/// A labeled internal node.
pub fn node(label: &str, children: Vec<NodeSpec>) -> NodeSpec {
    NodeSpec::Internal {
        label: Some(label.to_string()),
        children,
    }
}

/// An unlabeled internal node (a visual group with no caption).
pub fn unlabeled_node(children: Vec<NodeSpec>) -> NodeSpec {
    NodeSpec::Internal {
        label: None,
        children,
    }
}

impl NodeSpec {
    /// Number of fields in this subtree.
    pub fn leaf_count(&self) -> usize {
        match self {
            NodeSpec::Leaf { .. } => 1,
            NodeSpec::Internal { children, .. } => children.iter().map(NodeSpec::leaf_count).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert!(matches!(leaf("A"), NodeSpec::Leaf { label: Some(_), .. }));
        assert!(matches!(
            unlabeled_leaf(),
            NodeSpec::Leaf { label: None, .. }
        ));
        let s = select("Format", &["hardcover", "paperback"]);
        match s {
            NodeSpec::Leaf {
                widget, instances, ..
            } => {
                assert_eq!(widget, Widget::SelectList);
                assert_eq!(instances.len(), 2);
            }
            NodeSpec::Internal { .. } => unreachable!(),
        }
    }

    #[test]
    fn leaf_count_recursive() {
        let spec = node(
            "G",
            vec![
                leaf("a"),
                node("H", vec![leaf("b"), leaf("c")]),
                unlabeled_leaf(),
            ],
        );
        assert_eq!(spec.leaf_count(), 4);
    }
}
