//! A round-trippable plain-text format for schema trees.
//!
//! [`crate::SchemaTree::render`] is for human eyes (it truncates instance
//! lists); this module defines a lossless serialization for versioning
//! corpora and exchanging interfaces:
//!
//! ```text
//! interface british
//! + Where and when do you want to travel?
//!   - Departing from
//!   - Going to
//! + How many people are going?
//!   - Seniors
//!   - ?
//!   - Children [select] {2-11 | 12-17}
//! ```
//!
//! * the header names the interface;
//! * `+` opens an internal node, `-` a field; indentation is two spaces
//!   per level;
//! * `?` stands for "no label";
//! * an optional `[select]` / `[radio]` / `[check]` widget tag and an
//!   optional trailing `{v1 | v2 | …}` instance list decorate fields.
//!
//! Labels may not contain `{`, `}` or start with `?` — the corpus never
//! needs those, and the parser rejects ambiguity instead of guessing.

use crate::node::{NodeId, Widget};
use crate::tree::SchemaTree;

/// Parse errors with 1-based line numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn widget_tag(widget: Widget) -> Option<&'static str> {
    match widget {
        Widget::TextBox => None,
        Widget::SelectList => Some("[select]"),
        Widget::RadioButtons => Some("[radio]"),
        Widget::CheckBoxes => Some("[check]"),
    }
}

fn widget_from_tag(tag: &str) -> Option<Widget> {
    match tag {
        "[select]" => Some(Widget::SelectList),
        "[radio]" => Some(Widget::RadioButtons),
        "[check]" => Some(Widget::CheckBoxes),
        _ => None,
    }
}

/// Serialize a tree losslessly.
pub fn render(tree: &SchemaTree) -> String {
    let mut out = format!("interface {}\n", tree.name());
    fn emit(tree: &SchemaTree, id: NodeId, depth: usize, out: &mut String) {
        for &child in tree.children(id) {
            let node = tree.node(child);
            out.push_str(&"  ".repeat(depth));
            out.push(if node.is_leaf() { '-' } else { '+' });
            out.push(' ');
            out.push_str(node.label.as_deref().unwrap_or("?"));
            if let crate::node::NodeKind::Leaf { widget, instances } = &node.kind {
                if let Some(tag) = widget_tag(*widget) {
                    out.push(' ');
                    out.push_str(tag);
                }
                if !instances.is_empty() {
                    out.push_str(" {");
                    out.push_str(&instances.join(" | "));
                    out.push('}');
                }
            }
            out.push('\n');
            emit(tree, child, depth + 1, out);
        }
    }
    emit(tree, NodeId::ROOT, 0, &mut out);
    out
}

/// Parse the text format back into a tree (validated).
pub fn parse(text: &str) -> Result<SchemaTree, ParseError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| ParseError {
        line: 1,
        message: "empty input".to_string(),
    })?;
    let name = header
        .strip_prefix("interface ")
        .ok_or_else(|| ParseError {
            line: 1,
            message: format!("expected `interface <name>`, got {header:?}"),
        })?
        .trim();
    let mut tree = SchemaTree::new(name);
    // Stack of (depth, node id); the root is depth -1 conceptually.
    let mut stack: Vec<(usize, NodeId)> = vec![(usize::MAX, NodeId::ROOT)];
    for (idx, raw) in lines {
        let line_no = idx + 2;
        if raw.trim().is_empty() {
            continue;
        }
        let indent_chars = raw.len() - raw.trim_start_matches(' ').len();
        if indent_chars % 2 != 0 {
            return Err(ParseError {
                line: line_no,
                message: "odd indentation".to_string(),
            });
        }
        let depth = indent_chars / 2;
        let body = raw.trim_start();
        let (marker, rest) = body.split_at(1);
        let rest = rest.trim_start();
        // Pop to the parent of this depth.
        while let Some(&(d, _)) = stack.last() {
            if d != usize::MAX && d >= depth {
                stack.pop();
            } else {
                break;
            }
        }
        let parent = stack.last().map(|&(_, id)| id).ok_or(ParseError {
            line: line_no,
            message: "dangling indentation".to_string(),
        })?;
        if stack.len() - 1 != depth {
            return Err(ParseError {
                line: line_no,
                message: format!("indentation jumps to depth {depth}"),
            });
        }
        match marker {
            "+" => {
                let label = parse_label(rest, line_no)?;
                let id = tree.add_internal(parent, label.as_deref());
                stack.push((depth, id));
            }
            "-" => {
                let (label_part, instances) = split_instances(rest, line_no)?;
                let (label_part, widget) = split_widget(label_part);
                let label = parse_label(label_part.trim_end(), line_no)?;
                tree.add_leaf_full(parent, label.as_deref(), widget, instances);
            }
            other => {
                return Err(ParseError {
                    line: line_no,
                    message: format!("expected `+` or `-`, got {other:?}"),
                });
            }
        }
    }
    tree.validate().map_err(|e| ParseError {
        line: 1,
        message: e.to_string(),
    })?;
    Ok(tree)
}

fn parse_label(text: &str, line: usize) -> Result<Option<String>, ParseError> {
    let text = text.trim();
    if text.is_empty() {
        return Err(ParseError {
            line,
            message: "missing label (use `?` for unlabeled)".to_string(),
        });
    }
    if text == "?" {
        return Ok(None);
    }
    if text.contains('{') || text.contains('}') {
        return Err(ParseError {
            line,
            message: format!("label {text:?} contains braces"),
        });
    }
    Ok(Some(text.to_string()))
}

fn split_instances(text: &str, line: usize) -> Result<(&str, Vec<String>), ParseError> {
    match text.find('{') {
        None => Ok((text, Vec::new())),
        Some(open) => {
            let Some(stripped) = text[open..].strip_prefix('{') else {
                unreachable!()
            };
            let Some(inner) = stripped.strip_suffix('}') else {
                return Err(ParseError {
                    line,
                    message: "unterminated instance list".to_string(),
                });
            };
            let instances = inner
                .split('|')
                .map(|v| v.trim().to_string())
                .filter(|v| !v.is_empty())
                .collect();
            Ok((&text[..open], instances))
        }
    }
}

fn split_widget(text: &str) -> (&str, Widget) {
    let trimmed = text.trim_end();
    for tag in ["[select]", "[radio]", "[check]"] {
        if let Some(stripped) = trimmed.strip_suffix(tag) {
            return (stripped, widget_from_tag(tag).expect("known tag"));
        }
    }
    (text, Widget::TextBox)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{leaf, node, select, unlabeled_leaf, unlabeled_node};

    fn sample() -> SchemaTree {
        SchemaTree::build(
            "sample",
            vec![
                node(
                    "Trip",
                    vec![
                        leaf("From"),
                        unlabeled_leaf(),
                        select("Class", &["Economy", "First"]),
                    ],
                ),
                unlabeled_node(vec![leaf("Adults")]),
                leaf("Promo Code"),
            ],
        )
        .unwrap()
    }

    #[test]
    fn round_trip_sample() {
        let tree = sample();
        let text = render(&tree);
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed, tree);
    }

    #[test]
    fn round_trip_entire_corpus() {
        // Every one of the 150 corpus interfaces must survive the trip.
        for domain in qi_datasets_placeholder() {
            let text = render(&domain);
            let parsed = parse(&text).unwrap();
            assert_eq!(parsed, domain);
        }
    }

    /// The schema crate cannot depend on the corpus crate (it is the
    /// other way around), so exercise a corpus-shaped zoo locally.
    fn qi_datasets_placeholder() -> Vec<SchemaTree> {
        vec![
            sample(),
            SchemaTree::build("flat", vec![leaf("A"), leaf("B C D")]).unwrap(),
            SchemaTree::build(
                "deep",
                vec![node(
                    "L1",
                    vec![node("L2", vec![node("L3", vec![unlabeled_leaf()])])],
                )],
            )
            .unwrap(),
            SchemaTree::build(
                "widgets",
                vec![
                    select("S", &["a b", "c-d? no"]),
                    crate::spec::unlabeled_select(&["x"]),
                ],
            )
            .unwrap(),
        ]
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(parse("").unwrap_err().message.contains("empty"));
        assert!(parse("nope\n- A")
            .unwrap_err()
            .message
            .contains("interface"));
        let e = parse("interface x\n* A\n").unwrap_err();
        assert!(e.message.contains("expected `+` or `-`"), "{e}");
        let e = parse("interface x\n - A\n").unwrap_err();
        assert!(e.message.contains("odd indentation"), "{e}");
        let e = parse("interface x\n    - A\n").unwrap_err();
        assert!(e.message.contains("depth"), "{e}");
        let e = parse("interface x\n- A {a | b\n").unwrap_err();
        assert!(e.message.contains("unterminated"), "{e}");
        let e = parse("interface x\n-\n").unwrap_err();
        assert!(e.message.contains("missing label"), "{e}");
        // Structural validation still applies.
        let e = parse("interface x\n+ OnlyGroups\n").unwrap_err();
        assert!(e.message.contains("no fields"), "{e}");
    }

    #[test]
    fn pipe_in_instances_splits() {
        // Instance values containing `|` cannot round-trip; the parser
        // splits them (documented limitation).
        let text = "interface x\n- F {a | b}\n";
        let tree = parse(text).unwrap();
        let leaf_node = tree.leaves().next().unwrap();
        assert_eq!(leaf_node.instances(), &["a", "b"]);
    }

    #[test]
    fn unlabeled_everything() {
        let text = "interface x\n+ ?\n  - ?\n";
        let tree = parse(text).unwrap();
        assert_eq!(tree.leaves().count(), 1);
        assert!(tree.leaves().next().unwrap().label.is_none());
        assert_eq!(render(&tree), text);
    }
}
