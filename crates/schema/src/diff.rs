//! Structural diff between two schema trees.
//!
//! Compares trees positionally (same child order — the order the merge
//! emits is deterministic) and reports label changes, widget/instance
//! changes, and inserted/removed subtrees. Built for the golden-snapshot
//! workflow and for comparing the integrated interfaces two policies
//! produce.

use crate::node::{NodeId, NodeKind};
use crate::tree::SchemaTree;

/// One difference between two trees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Difference {
    /// Interface names differ.
    Name {
        /// Left name.
        left: String,
        /// Right name.
        right: String,
    },
    /// Same position, different label.
    Label {
        /// Path of child indices from the root.
        path: Vec<usize>,
        /// Left label (`None` = unlabeled).
        left: Option<String>,
        /// Right label.
        right: Option<String>,
    },
    /// Same position, one side is a field and the other a group.
    Kind {
        /// Path of child indices from the root.
        path: Vec<usize>,
    },
    /// Same position, both fields, different widget or instances.
    FieldPayload {
        /// Path of child indices from the root.
        path: Vec<usize>,
    },
    /// The left tree has extra children at this position.
    RemovedChildren {
        /// Path of the parent.
        path: Vec<usize>,
        /// How many extra children the left side has.
        count: usize,
    },
    /// The right tree has extra children at this position.
    AddedChildren {
        /// Path of the parent.
        path: Vec<usize>,
        /// How many extra children the right side has.
        count: usize,
    },
}

impl std::fmt::Display for Difference {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn fmt_path(path: &[usize]) -> String {
            if path.is_empty() {
                "/".to_string()
            } else {
                path.iter()
                    .map(usize::to_string)
                    .collect::<Vec<_>>()
                    .join("/")
            }
        }
        match self {
            Difference::Name { left, right } => {
                write!(f, "interface name: {left:?} vs {right:?}")
            }
            Difference::Label { path, left, right } => write!(
                f,
                "label at {}: {:?} vs {:?}",
                fmt_path(path),
                left.as_deref().unwrap_or("∅"),
                right.as_deref().unwrap_or("∅")
            ),
            Difference::Kind { path } => {
                write!(f, "node kind differs at {}", fmt_path(path))
            }
            Difference::FieldPayload { path } => {
                write!(f, "field widget/instances differ at {}", fmt_path(path))
            }
            Difference::RemovedChildren { path, count } => {
                write!(f, "{count} children removed under {}", fmt_path(path))
            }
            Difference::AddedChildren { path, count } => {
                write!(f, "{count} children added under {}", fmt_path(path))
            }
        }
    }
}

/// Compute the differences between two trees. Empty = identical (up to
/// node ids, which are arena artifacts).
pub fn diff(left: &SchemaTree, right: &SchemaTree) -> Vec<Difference> {
    let mut out = Vec::new();
    if left.name() != right.name() {
        out.push(Difference::Name {
            left: left.name().to_string(),
            right: right.name().to_string(),
        });
    }
    diff_children(
        left,
        NodeId::ROOT,
        right,
        NodeId::ROOT,
        &mut Vec::new(),
        &mut out,
    );
    out
}

fn diff_children(
    left: &SchemaTree,
    left_id: NodeId,
    right: &SchemaTree,
    right_id: NodeId,
    path: &mut Vec<usize>,
    out: &mut Vec<Difference>,
) {
    let left_children = left.children(left_id);
    let right_children = right.children(right_id);
    let common = left_children.len().min(right_children.len());
    for i in 0..common {
        path.push(i);
        diff_node(left, left_children[i], right, right_children[i], path, out);
        path.pop();
    }
    if left_children.len() > common {
        out.push(Difference::RemovedChildren {
            path: path.clone(),
            count: left_children.len() - common,
        });
    }
    if right_children.len() > common {
        out.push(Difference::AddedChildren {
            path: path.clone(),
            count: right_children.len() - common,
        });
    }
}

fn diff_node(
    left: &SchemaTree,
    left_id: NodeId,
    right: &SchemaTree,
    right_id: NodeId,
    path: &mut Vec<usize>,
    out: &mut Vec<Difference>,
) {
    let l = left.node(left_id);
    let r = right.node(right_id);
    if l.label != r.label {
        out.push(Difference::Label {
            path: path.clone(),
            left: l.label.clone(),
            right: r.label.clone(),
        });
    }
    match (&l.kind, &r.kind) {
        (NodeKind::Internal, NodeKind::Internal) => {
            diff_children(left, left_id, right, right_id, path, out);
        }
        (
            NodeKind::Leaf {
                widget: lw,
                instances: li,
            },
            NodeKind::Leaf {
                widget: rw,
                instances: ri,
            },
        ) => {
            if lw != rw || li != ri {
                out.push(Difference::FieldPayload { path: path.clone() });
            }
        }
        _ => out.push(Difference::Kind { path: path.clone() }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{leaf, node, select, unlabeled_leaf};

    fn base() -> SchemaTree {
        SchemaTree::build(
            "t",
            vec![
                node("G", vec![leaf("A"), leaf("B")]),
                select("S", &["x", "y"]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn identical_trees_have_no_diff() {
        assert!(diff(&base(), &base()).is_empty());
    }

    #[test]
    fn label_change_is_reported_with_path() {
        let other = SchemaTree::build(
            "t",
            vec![
                node("G", vec![leaf("A"), leaf("B2")]),
                select("S", &["x", "y"]),
            ],
        )
        .unwrap();
        let differences = diff(&base(), &other);
        assert_eq!(differences.len(), 1);
        match &differences[0] {
            Difference::Label { path, left, right } => {
                assert_eq!(path, &vec![0, 1]);
                assert_eq!(left.as_deref(), Some("B"));
                assert_eq!(right.as_deref(), Some("B2"));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(differences[0].to_string().contains("0/1"));
    }

    #[test]
    fn unlabeled_vs_labeled() {
        let other = SchemaTree::build(
            "t",
            vec![
                node("G", vec![leaf("A"), unlabeled_leaf()]),
                select("S", &["x", "y"]),
            ],
        )
        .unwrap();
        let differences = diff(&base(), &other);
        assert!(matches!(
            &differences[0],
            Difference::Label { right: None, .. }
        ));
    }

    #[test]
    fn kind_and_payload_changes() {
        let kind_change =
            SchemaTree::build("t", vec![leaf("G"), select("S", &["x", "y"])]).unwrap();
        let differences = diff(&base(), &kind_change);
        assert!(differences
            .iter()
            .any(|d| matches!(d, Difference::Kind { .. })));
        let payload_change = SchemaTree::build(
            "t",
            vec![node("G", vec![leaf("A"), leaf("B")]), select("S", &["x"])],
        )
        .unwrap();
        let differences = diff(&base(), &payload_change);
        assert!(differences
            .iter()
            .any(|d| matches!(d, Difference::FieldPayload { .. })));
    }

    #[test]
    fn added_and_removed_children() {
        let extra = SchemaTree::build(
            "t",
            vec![
                node("G", vec![leaf("A"), leaf("B"), leaf("C")]),
                select("S", &["x", "y"]),
            ],
        )
        .unwrap();
        let differences = diff(&base(), &extra);
        assert!(matches!(
            &differences[0],
            Difference::AddedChildren { path, count: 1 } if path == &vec![0]
        ));
        let differences = diff(&extra, &base());
        assert!(matches!(
            &differences[0],
            Difference::RemovedChildren { count: 1, .. }
        ));
    }

    #[test]
    fn name_change() {
        let renamed = SchemaTree::build(
            "other",
            vec![
                node("G", vec![leaf("A"), leaf("B")]),
                select("S", &["x", "y"]),
            ],
        )
        .unwrap();
        let differences = diff(&base(), &renamed);
        assert!(matches!(&differences[0], Difference::Name { .. }));
    }
}
