//! Schema construction and validation errors.

use crate::node::NodeId;

/// Errors raised while building or validating a schema tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// The tree has no fields at all.
    NoFields,
    /// A leaf node was given children.
    LeafWithChildren(NodeId),
    /// A node's parent pointer does not match the parent's child list.
    BrokenParentLink(NodeId),
    /// An interface name is empty.
    EmptyName,
    /// A label is present but blank after trimming.
    BlankLabel(NodeId),
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemaError::NoFields => write!(f, "schema tree has no fields"),
            SchemaError::LeafWithChildren(id) => write!(f, "leaf node {id} has children"),
            SchemaError::BrokenParentLink(id) => write!(f, "node {id} has a broken parent link"),
            SchemaError::EmptyName => write!(f, "interface name is empty"),
            SchemaError::BlankLabel(id) => write!(f, "node {id} has a blank label"),
        }
    }
}

impl std::error::Error for SchemaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            SchemaError::NoFields.to_string(),
            "schema tree has no fields"
        );
        assert!(SchemaError::LeafWithChildren(NodeId(2))
            .to_string()
            .contains("n2"));
    }
}
