//! Render a schema tree as a semantic HTML form.
//!
//! The whole point of the paper is producing an interface a user can
//! actually read; this module materializes a labeled (integrated) schema
//! tree as accessible HTML: groups become `<fieldset>`/`<legend>`, fields
//! become `<label>` + `<input>`/`<select>`, unlabeled fields fall back to
//! an `aria-label` derived from their instances. Output is deterministic
//! and escaped.

use crate::node::{NodeId, NodeKind, Widget};
use crate::tree::SchemaTree;

/// Escape text for HTML element content and attribute values.
fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            other => out.push(other),
        }
    }
    out
}

/// Stable, readable id for a field.
fn field_id(tree: &SchemaTree, id: NodeId) -> String {
    let label = tree.node(id).label_str();
    let mut slug = String::with_capacity(label.len());
    for c in label.chars() {
        if c.is_ascii_alphanumeric() {
            slug.push(c.to_ascii_lowercase());
        } else if !slug.ends_with('-') && !slug.is_empty() {
            slug.push('-');
        }
    }
    let slug = slug.trim_matches('-').to_string();
    if slug.is_empty() {
        format!("field-{}", id.0)
    } else {
        format!("{slug}-{}", id.0)
    }
}

/// Render the tree as an HTML `<form>` fragment.
pub fn render_form(tree: &SchemaTree) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "<form class=\"qi-form\" data-interface=\"{}\">\n",
        escape(tree.name())
    ));
    for &child in tree.children(NodeId::ROOT) {
        render_node(tree, child, 1, &mut out);
    }
    out.push_str("</form>\n");
    out
}

fn indent(depth: usize) -> String {
    "  ".repeat(depth)
}

fn render_node(tree: &SchemaTree, id: NodeId, depth: usize, out: &mut String) {
    let node = tree.node(id);
    match &node.kind {
        NodeKind::Internal => {
            out.push_str(&format!("{}<fieldset>\n", indent(depth)));
            if let Some(label) = &node.label {
                out.push_str(&format!(
                    "{}<legend>{}</legend>\n",
                    indent(depth + 1),
                    escape(label)
                ));
            }
            for &child in &node.children {
                render_node(tree, child, depth + 1, out);
            }
            out.push_str(&format!("{}</fieldset>\n", indent(depth)));
        }
        NodeKind::Leaf { widget, instances } => {
            let fid = field_id(tree, id);
            out.push_str(&format!("{}<div class=\"qi-field\">\n", indent(depth)));
            if let Some(label) = &node.label {
                out.push_str(&format!(
                    "{}<label for=\"{fid}\">{}</label>\n",
                    indent(depth + 1),
                    escape(label)
                ));
            }
            let aria = if node.label.is_none() {
                // Fall back to the instances so screen readers get
                // *something* (the §7 inferable-field situation).
                let hint = if instances.is_empty() {
                    "unlabeled field".to_string()
                } else {
                    instances.join(", ")
                };
                format!(" aria-label=\"{}\"", escape(&hint))
            } else {
                String::new()
            };
            match widget {
                Widget::SelectList => {
                    out.push_str(&format!(
                        "{}<select id=\"{fid}\" name=\"{fid}\"{aria}>\n",
                        indent(depth + 1)
                    ));
                    for value in instances {
                        out.push_str(&format!(
                            "{}<option value=\"{}\">{}</option>\n",
                            indent(depth + 2),
                            escape(value),
                            escape(value)
                        ));
                    }
                    out.push_str(&format!("{}</select>\n", indent(depth + 1)));
                }
                Widget::RadioButtons | Widget::CheckBoxes => {
                    let kind = if *widget == Widget::RadioButtons {
                        "radio"
                    } else {
                        "checkbox"
                    };
                    for (i, value) in instances.iter().enumerate() {
                        out.push_str(&format!(
                            "{}<label><input type=\"{kind}\" name=\"{fid}\" \
                             value=\"{}\"{}/> {}</label>\n",
                            indent(depth + 1),
                            escape(value),
                            if i == 0 { &aria } else { "" },
                            escape(value)
                        ));
                    }
                    if instances.is_empty() {
                        out.push_str(&format!(
                            "{}<input type=\"{kind}\" id=\"{fid}\" name=\"{fid}\"{aria}/>\n",
                            indent(depth + 1)
                        ));
                    }
                }
                Widget::TextBox => {
                    out.push_str(&format!(
                        "{}<input type=\"text\" id=\"{fid}\" name=\"{fid}\"{aria}/>\n",
                        indent(depth + 1)
                    ));
                }
            }
            out.push_str(&format!("{}</div>\n", indent(depth)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{leaf, node, select, unlabeled_select};

    fn sample() -> SchemaTree {
        SchemaTree::build(
            "demo",
            vec![
                node(
                    "Trip <details>",
                    vec![leaf("From \"city\""), select("Class & Co", &["A<B", "C>D"])],
                ),
                unlabeled_select(&["x", "y"]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn renders_fieldsets_labels_and_selects() {
        let html = render_form(&sample());
        assert!(html.starts_with("<form class=\"qi-form\" data-interface=\"demo\">"));
        assert!(html.contains("<fieldset>"));
        assert!(html.contains("<legend>Trip &lt;details&gt;</legend>"));
        assert!(html.contains("<label for="));
        assert!(html.contains("<select id="));
        assert!(html.contains("<option value=\"A&lt;B\">A&lt;B</option>"));
        assert!(html.ends_with("</form>\n"));
    }

    #[test]
    fn escapes_everything() {
        let html = render_form(&sample());
        assert!(!html.contains("Trip <details>"));
        assert!(!html.contains("A<B"));
        assert!(html.contains("From &quot;city&quot;"));
        assert!(html.contains("Class &amp; Co"));
    }

    #[test]
    fn unlabeled_fields_get_aria_labels() {
        let html = render_form(&sample());
        assert!(html.contains("aria-label=\"x, y\""), "{html}");
    }

    #[test]
    fn field_ids_are_stable_slugs() {
        let html = render_form(&sample());
        assert!(html.contains("id=\"from-city-"), "{html}");
    }

    #[test]
    fn text_and_radio_widgets() {
        let tree = SchemaTree::build(
            "w",
            vec![
                leaf("Keyword"),
                crate::spec::NodeSpec::Leaf {
                    label: Some("Trip Type".to_string()),
                    widget: Widget::RadioButtons,
                    instances: vec!["One Way".to_string(), "Round Trip".to_string()],
                },
            ],
        )
        .unwrap();
        let html = render_form(&tree);
        assert!(html.contains("input type=\"text\""));
        assert!(html.contains("input type=\"radio\""));
        assert!(html.contains("value=\"One Way\""));
    }
}
