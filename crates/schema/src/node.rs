//! Schema-tree nodes.

/// Index of a node inside a [`crate::SchemaTree`] arena. The root is
/// always `NodeId(0)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The root node id.
    pub const ROOT: NodeId = NodeId(0);

    /// Arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The widget kind of a form field (§2 of the paper: "text boxes,
/// selection lists, radio buttons, and check boxes ... generically called
/// fields").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Widget {
    /// Free-text input.
    #[default]
    TextBox,
    /// Drop-down / selection list with a predefined domain.
    SelectList,
    /// Radio-button set.
    RadioButtons,
    /// Check-box (set).
    CheckBoxes,
}

/// Payload distinguishing fields (leaves) from (super)groups (internal
/// nodes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// A form field.
    Leaf {
        /// Widget rendering the field.
        widget: Widget,
        /// Predefined instance domain, e.g. the options of a selection
        /// list. Empty for free-text fields (the common case — see \[23\]).
        instances: Vec<String>,
    },
    /// A logical (super)group of fields.
    Internal,
}

impl NodeKind {
    /// A leaf with no instances and the default widget.
    pub fn plain_leaf() -> Self {
        NodeKind::Leaf {
            widget: Widget::TextBox,
            instances: Vec::new(),
        }
    }

    /// True for fields.
    pub fn is_leaf(&self) -> bool {
        matches!(self, NodeKind::Leaf { .. })
    }
}

/// One node of a schema tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// This node's id (its arena index).
    pub id: NodeId,
    /// The label shown on the interface, if any. Fields and groups on real
    /// interfaces are frequently unlabeled (Table 6, column LQ).
    pub label: Option<String>,
    /// Leaf/internal payload.
    pub kind: NodeKind,
    /// Parent node; `None` for the root.
    pub parent: Option<NodeId>,
    /// Ordered children (visual order of the interface).
    pub children: Vec<NodeId>,
}

impl Node {
    /// True for fields.
    pub fn is_leaf(&self) -> bool {
        self.kind.is_leaf()
    }

    /// The label, or `""` when absent.
    pub fn label_str(&self) -> &str {
        self.label.as_deref().unwrap_or("")
    }

    /// The predefined instance domain (empty for internal nodes and
    /// free-text fields).
    pub fn instances(&self) -> &[String] {
        match &self.kind {
            NodeKind::Leaf { instances, .. } => instances,
            NodeKind::Internal => &[],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_root_and_display() {
        assert_eq!(NodeId::ROOT, NodeId(0));
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(NodeId(3).index(), 3);
    }

    #[test]
    fn plain_leaf_has_no_instances() {
        let kind = NodeKind::plain_leaf();
        assert!(kind.is_leaf());
        match kind {
            NodeKind::Leaf { widget, instances } => {
                assert_eq!(widget, Widget::TextBox);
                assert!(instances.is_empty());
            }
            NodeKind::Internal => unreachable!(),
        }
    }

    #[test]
    fn node_accessors() {
        let node = Node {
            id: NodeId(1),
            label: None,
            kind: NodeKind::Internal,
            parent: Some(NodeId::ROOT),
            children: vec![],
        };
        assert_eq!(node.label_str(), "");
        assert!(node.instances().is_empty());
        assert!(!node.is_leaf());
    }
}
