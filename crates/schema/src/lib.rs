//! Ordered schema trees modeling Deep-Web query interfaces.
//!
//! Following §2 of the paper, a query interface is abstracted as an
//! *ordered schema tree*: leaves are form fields (text boxes, selection
//! lists, radio buttons, check boxes), internal nodes are (super)groups of
//! semantically related fields, and sibling order mirrors the visual order
//! of fields on the interface. Fields may carry a label and a predefined
//! instance domain (the values of a selection list).
//!
//! The same representation serves both the source interfaces and the
//! integrated interface produced by the merge algorithm (`qi-merge`).
//!
//! # Example
//!
//! ```
//! use qi_schema::{SchemaTree, spec};
//!
//! // A fragment of the Vacations interface of Figure 1/2 of the paper.
//! let tree = SchemaTree::build(
//!     "vacations",
//!     vec![
//!         spec::node(
//!             "Where and when do you want to travel?",
//!             vec![spec::leaf("Departing from"), spec::leaf("Going to")],
//!         ),
//!         spec::node(
//!             "How many people are going?",
//!             vec![spec::leaf("Adults"), spec::leaf("Seniors"), spec::leaf("Children")],
//!         ),
//!     ],
//! )
//! .unwrap();
//! assert_eq!(tree.leaves().count(), 5);
//! assert_eq!(tree.stats().depth, 3);
//! ```

pub mod diff;
pub mod error;
pub mod html;
pub mod node;
pub mod spec;
pub mod stats;
pub mod text_format;
pub mod tree;

pub use error::SchemaError;
pub use node::{NodeId, NodeKind, Widget};
pub use spec::NodeSpec;
pub use stats::{DomainStats, InterfaceStats};
pub use tree::{LeafGroup, SchemaTree};
