//! Evaluate the label-similarity matcher against the corpus ground truth.
//!
//! The paper takes the clusters as given (§2.1, citing \[10, 23, 24\]); the
//! library nevertheless ships a matcher for users without ground truth.
//! This module measures how much of the pipeline's input quality that
//! shortcut sacrifices, per domain, in pairwise precision/recall.

use qi_datasets::Domain;
use qi_lexicon::Lexicon;
use qi_mapping::{matcher::match_by_labels, pairwise_quality, MatchQuality};

/// Matcher quality on one domain.
#[derive(Debug, Clone)]
pub struct MatcherReport {
    /// Domain name.
    pub domain: String,
    /// Pairwise precision/recall against ground truth.
    pub quality: MatchQuality,
    /// Cluster counts, derived vs truth.
    pub derived_clusters: usize,
    /// Ground-truth cluster count.
    pub truth_clusters: usize,
}

/// Run the matcher on a domain's raw interfaces and score it.
pub fn evaluate_matcher(domain: &Domain, lexicon: &Lexicon) -> MatcherReport {
    let derived = match_by_labels(&domain.schemas, lexicon);
    let quality = pairwise_quality(&derived, &domain.mapping);
    MatcherReport {
        domain: domain.name.clone(),
        quality,
        derived_clusters: derived.len(),
        truth_clusters: domain.mapping.len(),
    }
}

/// Render a per-domain matcher-quality table.
pub fn render(reports: &[MatcherReport]) -> String {
    let mut out = String::new();
    out.push_str("Matcher quality vs ground-truth clusters (pairwise)\n");
    out.push_str("Domain         Precision  Recall     F1   clusters (derived/truth)\n");
    for report in reports {
        out.push_str(&format!(
            "{:<14} {:>8.1}% {:>7.1}% {:>6.2}   {}/{}\n",
            report.domain,
            report.quality.precision * 100.0,
            report.quality.recall * 100.0,
            report.quality.f1(),
            report.derived_clusters,
            report.truth_clusters
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matcher_is_high_precision_everywhere() {
        let lexicon = Lexicon::builtin();
        for domain in qi_datasets::all_domains() {
            let report = evaluate_matcher(&domain, &lexicon);
            assert!(
                report.quality.precision > 0.85,
                "{}: precision {}",
                report.domain,
                report.quality.precision
            );
        }
    }

    #[test]
    fn matcher_recall_suffers_on_unlabeled_domains() {
        let lexicon = Lexicon::builtin();
        let auto = evaluate_matcher(&qi_datasets::auto::domain(), &lexicon);
        let airline = evaluate_matcher(&qi_datasets::airline::domain(), &lexicon);
        // Airline is full of unlabeled date selects and a 1:m field the
        // matcher cannot see — its recall must trail Auto's.
        assert!(
            airline.quality.recall < auto.quality.recall,
            "airline {} vs auto {}",
            airline.quality.recall,
            auto.quality.recall
        );
        assert!(
            auto.quality.recall > 0.7,
            "auto recall {}",
            auto.quality.recall
        );
    }

    #[test]
    fn derived_cluster_count_is_bounded_sensibly() {
        let lexicon = Lexicon::builtin();
        for domain in qi_datasets::all_domains() {
            let report = evaluate_matcher(&domain, &lexicon);
            // The matcher never merges within a schema, so it can only
            // over-segment: at least as many clusters as ground truth.
            assert!(
                report.derived_clusters >= report.truth_clusters,
                "{}: derived {} < truth {}",
                report.domain,
                report.derived_clusters,
                report.truth_clusters
            );
        }
    }

    #[test]
    fn render_contains_all_domains() {
        let lexicon = Lexicon::builtin();
        let reports: Vec<MatcherReport> = qi_datasets::all_domains()
            .iter()
            .map(|d| evaluate_matcher(d, &lexicon))
            .collect();
        let text = render(&reports);
        for domain in [
            "Airline",
            "Auto",
            "Book",
            "Job",
            "Real Estate",
            "Car Rental",
            "Hotels",
        ] {
            assert!(text.contains(domain), "{domain} missing from\n{text}");
        }
    }
}
