//! The simulated human-acceptance survey (§7).
//!
//! The paper asked 11 people whether they had difficulty filling in each
//! field of the integrated interfaces, then re-examined the flagged
//! fields on the source interfaces and discounted those that were just as
//! hard at the source. Two regularities anchor the simulation (both
//! reported verbatim in §7):
//!
//! 1. *"without exception all the fields that people found hard to
//!    understand have very low frequency ... they all have a frequency of
//!    1"* — so the oracle only ever flags frequency-1 material
//!    (chain-specific loyalty fields, one-source groups) plus fields that
//!    are unreadable outright (no label, no instances);
//! 2. for several domains *"people have accounted the sources for some of
//!    the errors"* — so each judge, shown the source interface, blames
//!    the source with some probability, which is what lifts HA to HA*.
//!
//! Judges are deterministic: each (judge, field) decision is a hash-based
//! Bernoulli draw, so evaluations are reproducible without carrying RNG
//! state around.

use qi_core::LabeledInterface;
use qi_mapping::Mapping;
use qi_schema::SchemaTree;

/// Panel configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PanelConfig {
    /// Number of judges (the paper used 11).
    pub judges: usize,
    /// Probability a judge flags a frequency-1 field as ambiguous (the
    /// paper's flagged fields were noticed by a minority of judges, e.g.
    /// 4 of 11 for the airline return-route pair).
    pub flag_probability: f64,
    /// Probability a judge attributes a flagged field's difficulty to the
    /// source interface when shown it (HA → HA*).
    pub source_blame_probability: f64,
    /// Seed mixed into every decision.
    pub seed: u64,
}

impl Default for PanelConfig {
    fn default() -> Self {
        PanelConfig {
            judges: 11,
            flag_probability: 0.4,
            source_blame_probability: 0.6,
            seed: 2006,
        }
    }
}

/// The simulated panel.
#[derive(Debug, Clone, Copy)]
pub struct Panel {
    config: PanelConfig,
}

impl Default for Panel {
    fn default() -> Self {
        Panel::new(PanelConfig::default())
    }
}

impl Panel {
    /// Create a panel.
    pub fn new(config: PanelConfig) -> Self {
        Panel { config }
    }

    /// Run the survey: returns `(HA, HA*)`.
    ///
    /// HA is the average over judges of the fraction of non-ambiguous
    /// fields; HA* recomputes it after discounting fields whose
    /// difficulty the judge attributes to the source interface.
    pub fn survey(
        &self,
        domain: &str,
        labeled: &LabeledInterface,
        schemas: &[SchemaTree],
        mapping: &Mapping,
    ) -> (f64, f64) {
        let fields = field_profiles(labeled, mapping);
        if fields.is_empty() || self.config.judges == 0 {
            return (1.0, 1.0);
        }
        let mut ha_sum = 0.0;
        let mut ha_star_sum = 0.0;
        for judge in 0..self.config.judges {
            let mut ambiguous = 0usize;
            let mut attributed_to_source = 0usize;
            for profile in &fields {
                let flagged = match profile.kind {
                    FieldKind::Unreadable => true,
                    // §7 on the Figure 11 No-Label field: "the semantics
                    // ... can be easily inferred by a user given the label
                    // of its sibling" — inferable fields behave like the
                    // borderline frequency-1 ones.
                    FieldKind::Inferable | FieldKind::FrequencyOne => {
                        self.draw(domain, judge, &profile.key, 0)
                    }
                    FieldKind::Clear => false,
                };
                if !flagged {
                    continue;
                }
                ambiguous += 1;
                // Second survey question: is the field understandable on
                // the source interface it came from? Frequency-1 fields
                // read exactly the same at the source, so judges often
                // blame the source (§7: "people have accounted the
                // sources for some of the errors").
                let source_verbatim = profile.source_verbatim(schemas, mapping);
                if source_verbatim
                    && self.draw_with(
                        domain,
                        judge,
                        &profile.key,
                        1,
                        self.config.source_blame_probability,
                    )
                {
                    attributed_to_source += 1;
                }
            }
            let n = fields.len() as f64;
            ha_sum += (n - ambiguous as f64) / n;
            ha_star_sum += (n - (ambiguous - attributed_to_source) as f64) / n;
        }
        let judges = self.config.judges as f64;
        (ha_sum / judges, ha_star_sum / judges)
    }

    fn draw(&self, domain: &str, judge: usize, key: &str, salt: u64) -> bool {
        self.draw_with(domain, judge, key, salt, self.config.flag_probability)
    }

    /// Deterministic Bernoulli draw from a hash of (seed, domain, judge,
    /// field, salt).
    fn draw_with(&self, domain: &str, judge: usize, key: &str, salt: u64, p: f64) -> bool {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.config.seed;
        for byte in domain
            .bytes()
            .chain(key.bytes())
            .chain(judge.to_le_bytes())
            .chain(salt.to_le_bytes())
        {
            h ^= byte as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        (h >> 11) as f64 / (1u64 << 53) as f64 * 1.0 < p
    }
}

/// How a field presents to a judge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FieldKind {
    /// Labeled (or instance-bearing) and backed by several sources.
    Clear,
    /// Backed by exactly one source interface — the too-specific fields
    /// the paper's subjects flagged.
    FrequencyOne,
    /// No label and no instances, but a labeled sibling to infer from.
    Inferable,
    /// No label, no instances, no labeled sibling: unreadable.
    Unreadable,
}

struct FieldProfile {
    key: String,
    kind: FieldKind,
    cluster: Option<qi_mapping::ClusterId>,
}

impl FieldProfile {
    /// Does the field appear verbatim (same label) on some source
    /// interface? True for frequency-1 fields by construction.
    fn source_verbatim(&self, _schemas: &[SchemaTree], mapping: &Mapping) -> bool {
        match self.cluster {
            Some(cluster) => !mapping.cluster(cluster).members.is_empty(),
            None => false,
        }
    }
}

fn field_profiles(labeled: &LabeledInterface, mapping: &Mapping) -> Vec<FieldProfile> {
    let mut out = Vec::new();
    for leaf in labeled.tree.leaves() {
        let cluster = labeled.leaf_cluster.get(&leaf.id).copied();
        let frequency = cluster
            .map(|c| mapping.cluster(c).members.len())
            .unwrap_or(0);
        let kind = if leaf.label.is_none() && leaf.instances().is_empty() {
            let labeled_sibling = leaf
                .parent
                .map(|p| {
                    labeled.tree.children(p).iter().any(|&sib| {
                        sib != leaf.id
                            && labeled.tree.node(sib).is_leaf()
                            && labeled.tree.node(sib).label.is_some()
                    })
                })
                .unwrap_or(false);
            if labeled_sibling {
                FieldKind::Inferable
            } else {
                FieldKind::Unreadable
            }
        } else if frequency <= 1 {
            FieldKind::FrequencyOne
        } else {
            FieldKind::Clear
        };
        let key = cluster
            .map(|c| mapping.cluster(c).concept.clone())
            .unwrap_or_else(|| leaf.id.to_string());
        out.push(FieldProfile { key, kind, cluster });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qi_core::{Labeler, NamingPolicy};
    use qi_lexicon::Lexicon;

    fn run(domain: qi_datasets::Domain) -> (f64, f64) {
        let prepared = domain.prepare();
        let lexicon = Lexicon::builtin();
        let labeler = Labeler::new(&lexicon, NamingPolicy::default());
        let labeled = labeler.label(&prepared.schemas, &prepared.mapping, &prepared.integrated);
        Panel::new(PanelConfig::default()).survey(
            &prepared.name,
            &labeled,
            &prepared.schemas,
            &prepared.mapping,
        )
    }

    #[test]
    fn ha_star_never_below_ha() {
        for domain in qi_datasets::all_domains() {
            let name = domain.name.clone();
            let (ha, ha_star) = run(domain);
            assert!(ha_star >= ha - 1e-12, "{name}: HA {ha} > HA* {ha_star}");
            assert!((0.0..=1.0).contains(&ha), "{name}: HA {ha}");
            assert!((0.0..=1.0).contains(&ha_star));
        }
    }

    #[test]
    fn deterministic() {
        let a = run(qi_datasets::hotels::domain());
        let b = run(qi_datasets::hotels::domain());
        assert_eq!(a, b);
    }

    #[test]
    fn auto_and_job_are_clean() {
        // Paper: "nobody identified any problem in the Auto and Job
        // unified interfaces" (HA = 100%).
        let (ha, ha_star) = run(qi_datasets::auto::domain());
        assert!(ha > 0.99, "auto HA {ha}");
        assert!(ha_star > 0.99);
        let (ha, _) = run(qi_datasets::job::domain());
        assert!(ha > 0.99, "job HA {ha}");
    }

    #[test]
    fn hotels_scores_below_auto() {
        // Chain-specific frequency-1 fields hurt Hotels (Table 6).
        let (auto_ha, _) = run(qi_datasets::auto::domain());
        let (hotel_ha, hotel_ha_star) = run(qi_datasets::hotels::domain());
        assert!(hotel_ha < auto_ha, "hotels {hotel_ha} vs auto {auto_ha}");
        assert!(hotel_ha_star >= hotel_ha);
    }
}
