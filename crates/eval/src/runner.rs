//! Whole-pipeline evaluation: one domain, or the whole corpus.
//!
//! The corpus sweep fans out over a bounded scoped pool
//! ([`qi_runtime::parallel_try_map`]): worker count is clamped to the
//! hardware (never one unbounded thread per domain), results come back
//! in input order, and a panicking domain is recorded in
//! [`CorpusEvaluation::failed`] instead of sinking the whole run.

use crate::metrics::{fields_accuracy, integrated_shape, internal_accuracy, DomainEvaluation};
use crate::panel::Panel;
use qi_core::{ConsistencyClass, Labeler, LiUsage, NamingPolicy};
use qi_datasets::Domain;
use qi_lexicon::Lexicon;
use qi_runtime::{parallel_try_map, resolve_threads, MetricsSnapshot, TelemetryMode};

/// Runtime options for an evaluation run.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Worker bound for the corpus fan-out (`0` = hardware parallelism,
    /// clamped; `1` = sequential). When more than one corpus worker is
    /// active, each domain runs its labeler single-threaded to avoid
    /// oversubscription; with one worker the labeler itself fans phase-1
    /// group naming out over this many threads.
    pub threads: usize,
    /// Naming-context memo-caches on (default) or off (benchmark
    /// baseline).
    pub cache: bool,
    /// Telemetry collection mode. `Off` (the default) skips all metric
    /// recording at the cost of one pointer check per boundary; the
    /// other modes attach a [`MetricsSnapshot`] to every
    /// [`DomainEvaluation`] — each domain gets a *fresh* registry, so
    /// parallel sweeps attribute work deterministically.
    pub telemetry: TelemetryMode,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            threads: 0,
            cache: true,
            telemetry: TelemetryMode::Off,
        }
    }
}

/// A domain whose evaluation panicked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainFailure {
    /// Display name of the domain.
    pub name: String,
    /// The panic message.
    pub error: String,
}

/// Corpus-level results: per-domain rows plus the aggregate LI usage
/// (Figure 10).
#[derive(Debug, Clone)]
pub struct CorpusEvaluation {
    /// One row per successfully evaluated domain, Table 6 order.
    pub domains: Vec<DomainEvaluation>,
    /// LI usage summed across domains.
    pub li_usage: LiUsage,
    /// Domains whose evaluation panicked; they contribute no row but do
    /// not abort the sweep.
    pub failed: Vec<DomainFailure>,
    /// Per-domain metrics merged in row order (empty when telemetry is
    /// off).
    pub metrics: MetricsSnapshot,
}

/// Run the full pipeline on one domain and compute its Table 6 row.
pub fn evaluate_domain(
    domain: &Domain,
    lexicon: &Lexicon,
    policy: NamingPolicy,
    panel: Panel,
) -> DomainEvaluation {
    evaluate_domain_with(
        domain,
        lexicon,
        policy,
        panel,
        RunConfig {
            threads: 1,
            ..RunConfig::default()
        },
    )
}

/// [`evaluate_domain`] with explicit runtime options.
pub fn evaluate_domain_with(
    domain: &Domain,
    lexicon: &Lexicon,
    policy: NamingPolicy,
    panel: Panel,
    config: RunConfig,
) -> DomainEvaluation {
    // A fresh registry per domain: sequential recording inside one
    // domain is deterministic even when the corpus sweep runs domains
    // concurrently, and the merge happens in row order.
    let telemetry = config.telemetry.build();
    // The lexicon and the Porter stem cache outlive this run, so their
    // activity is attributed as a delta across it.
    let lexicon_before = lexicon.named_cache_stats();
    let stemmer_before = qi_text::porter::stem_cache_stats();

    let domain_span = telemetry.span("eval.domain");
    let source = domain.source_stats();
    let prepare_span = telemetry.span("eval.domain.prepare");
    let prepared = domain.prepare();
    drop(prepare_span);
    let labeler = Labeler::new(lexicon, policy)
        .with_threads(config.threads)
        .with_cache(config.cache)
        .with_telemetry(telemetry.clone());
    let label_span = telemetry.span("eval.domain.label");
    let labeled = labeler.label(&prepared.schemas, &prepared.mapping, &prepared.integrated);
    drop(label_span);
    let survey_span = telemetry.span("eval.domain.survey");
    let (ha, ha_star) = panel.survey(
        &prepared.name,
        &labeled,
        &prepared.schemas,
        &prepared.mapping,
    );
    drop(survey_span);
    drop(domain_span);

    if telemetry.is_enabled() {
        telemetry.incr("eval.domains");
        for ((name, after), (_, before)) in lexicon
            .named_cache_stats()
            .iter()
            .zip(lexicon_before.iter())
        {
            telemetry.record_cache(name, &after.delta_since(before));
        }
        telemetry.record_cache(
            "stemmer",
            &qi_text::porter::stem_cache_stats().delta_since(&stemmer_before),
        );
    }

    DomainEvaluation {
        name: prepared.name.clone(),
        source,
        shape: integrated_shape(&labeled),
        fld_acc: fields_accuracy(&labeled),
        int_acc: internal_accuracy(&labeled),
        ha,
        ha_star,
        class: labeled
            .report
            .class
            .unwrap_or(ConsistencyClass::Inconsistent),
        li_usage: labeled.report.li_usage,
        metrics: telemetry.snapshot(),
    }
}

/// Evaluate a set of domains on a bounded worker pool (hardware
/// parallelism by default).
pub fn evaluate_corpus(
    domains: &[Domain],
    lexicon: &Lexicon,
    policy: NamingPolicy,
    panel: Panel,
) -> CorpusEvaluation {
    evaluate_corpus_with(domains, lexicon, policy, panel, RunConfig::default())
}

/// [`evaluate_corpus`] with explicit runtime options.
pub fn evaluate_corpus_with(
    domains: &[Domain],
    lexicon: &Lexicon,
    policy: NamingPolicy,
    panel: Panel,
    config: RunConfig,
) -> CorpusEvaluation {
    let outer = resolve_threads(config.threads).min(domains.len().max(1));
    let per_domain = RunConfig {
        threads: if outer > 1 { 1 } else { config.threads },
        ..config
    };
    let results = parallel_try_map(domains, config.threads, |_, domain| {
        evaluate_domain_with(domain, lexicon, policy, panel, per_domain)
    });
    let mut rows: Vec<DomainEvaluation> = Vec::with_capacity(domains.len());
    let mut failed: Vec<DomainFailure> = Vec::new();
    for (domain, result) in domains.iter().zip(results) {
        match result {
            Ok(row) => rows.push(row),
            Err(error) => failed.push(DomainFailure {
                name: domain.name.clone(),
                error,
            }),
        }
    }
    let mut li_usage = LiUsage::default();
    let mut metrics = MetricsSnapshot::default();
    for row in &rows {
        li_usage.merge(&row.li_usage);
        metrics.merge(&row.metrics);
    }
    CorpusEvaluation {
        domains: rows,
        li_usage,
        failed,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qi_core::InferenceRule;

    #[test]
    fn corpus_evaluation_has_seven_rows() {
        let domains = qi_datasets::all_domains();
        let lexicon = Lexicon::builtin();
        let result = evaluate_corpus(
            &domains,
            &lexicon,
            NamingPolicy::default(),
            Panel::default(),
        );
        assert_eq!(result.domains.len(), 7);
        assert!(result.failed.is_empty());
        for row in &result.domains {
            assert!(
                (0.0..=1.0).contains(&row.fld_acc),
                "{}: {}",
                row.name,
                row.fld_acc
            );
            assert!((0.0..=1.0).contains(&row.int_acc));
            assert!(row.shape.leaves > 0);
        }
        // Figure 10's headline: LI2 (and LI3/LI5 family) dominate.
        assert!(result.li_usage.total() > 0);
        assert!(
            result.li_usage.ratio(InferenceRule::Li2) > 0.3,
            "LI2 ratio {}",
            result.li_usage.ratio(InferenceRule::Li2)
        );
    }

    /// The determinism acceptance check: a parallel corpus run over all
    /// seven builtin domains is byte-identical (Debug form, which covers
    /// every Table 6 column and the LI counters) to a sequential one.
    #[test]
    fn parallel_matches_sequential() {
        let domains = qi_datasets::all_domains();
        let lexicon = Lexicon::builtin();
        let parallel = evaluate_corpus_with(
            &domains,
            &lexicon,
            NamingPolicy::default(),
            Panel::default(),
            RunConfig {
                threads: 0,
                ..RunConfig::default()
            },
        );
        let sequential = evaluate_corpus_with(
            &domains,
            &lexicon,
            NamingPolicy::default(),
            Panel::default(),
            RunConfig {
                threads: 1,
                ..RunConfig::default()
            },
        );
        assert!(parallel.failed.is_empty());
        assert!(sequential.failed.is_empty());
        assert_eq!(
            format!("{:?}", parallel.domains),
            format!("{:?}", sequential.domains)
        );
        assert_eq!(
            format!("{:?}", parallel.li_usage),
            format!("{:?}", sequential.li_usage)
        );
    }

    /// Disabling the memo-caches must not change any result either.
    #[test]
    fn cache_off_matches_cache_on() {
        let domains = vec![qi_datasets::auto::domain(), qi_datasets::job::domain()];
        let lexicon = Lexicon::builtin();
        let on = evaluate_corpus_with(
            &domains,
            &lexicon,
            NamingPolicy::default(),
            Panel::default(),
            RunConfig {
                threads: 1,
                ..RunConfig::default()
            },
        );
        let off = evaluate_corpus_with(
            &domains,
            &lexicon,
            NamingPolicy::default(),
            Panel::default(),
            RunConfig {
                threads: 1,
                cache: false,
                ..RunConfig::default()
            },
        );
        assert_eq!(format!("{:?}", on.domains), format!("{:?}", off.domains));
    }

    /// A domain that panics mid-pipeline is reported in `failed`; the
    /// healthy domains still produce their rows.
    #[test]
    fn panicking_domain_does_not_sink_the_corpus() {
        let mut domains = vec![qi_datasets::auto::domain()];
        // A mapping that references a non-existent source schema panics
        // during preparation.
        let mut broken = qi_datasets::job::domain();
        broken.name = "Broken".to_string();
        broken.mapping = qi_mapping::Mapping::from_clusters(vec![(
            "ghost".to_string(),
            vec![qi_mapping::FieldRef::new(99, qi_schema::NodeId::ROOT)],
        )]);
        domains.push(broken);
        domains.push(qi_datasets::job::domain());
        let lexicon = Lexicon::builtin();
        let result = evaluate_corpus(
            &domains,
            &lexicon,
            NamingPolicy::default(),
            Panel::default(),
        );
        assert_eq!(result.domains.len(), 2);
        assert_eq!(result.failed.len(), 1);
        assert_eq!(result.failed[0].name, "Broken");
        assert!(!result.failed[0].error.is_empty());
        assert_eq!(result.domains[0].name, domains[0].name);
        assert_eq!(result.domains[1].name, domains[2].name);
    }
}
