//! Whole-pipeline evaluation: one domain, or the whole corpus.

use crate::metrics::{fields_accuracy, integrated_shape, internal_accuracy, DomainEvaluation};
use crate::panel::Panel;
use qi_core::{ConsistencyClass, Labeler, LiUsage, NamingPolicy};
use qi_datasets::Domain;
use qi_lexicon::Lexicon;

/// Corpus-level results: per-domain rows plus the aggregate LI usage
/// (Figure 10).
#[derive(Debug, Clone)]
pub struct CorpusEvaluation {
    /// One row per domain, Table 6 order.
    pub domains: Vec<DomainEvaluation>,
    /// LI usage summed across domains.
    pub li_usage: LiUsage,
}

/// Run the full pipeline on one domain and compute its Table 6 row.
pub fn evaluate_domain(
    domain: &Domain,
    lexicon: &Lexicon,
    policy: NamingPolicy,
    panel: Panel,
) -> DomainEvaluation {
    let source = domain.source_stats();
    let prepared = domain.prepare();
    let labeler = Labeler::new(lexicon, policy);
    let labeled = labeler.label(&prepared.schemas, &prepared.mapping, &prepared.integrated);
    let (ha, ha_star) = panel.survey(&prepared.name, &labeled, &prepared.schemas, &prepared.mapping);
    DomainEvaluation {
        name: prepared.name.clone(),
        source,
        shape: integrated_shape(&labeled),
        fld_acc: fields_accuracy(&labeled),
        int_acc: internal_accuracy(&labeled),
        ha,
        ha_star,
        class: labeled
            .report
            .class
            .unwrap_or(ConsistencyClass::Inconsistent),
        li_usage: labeled.report.li_usage,
    }
}

/// Evaluate a set of domains in parallel (one thread per domain).
pub fn evaluate_corpus(
    domains: &[Domain],
    lexicon: &Lexicon,
    policy: NamingPolicy,
    panel: Panel,
) -> CorpusEvaluation {
    let mut rows: Vec<Option<DomainEvaluation>> = Vec::new();
    rows.resize_with(domains.len(), || None);
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, domain) in domains.iter().enumerate() {
            handles.push((
                i,
                scope.spawn(move |_| evaluate_domain(domain, lexicon, policy, panel)),
            ));
        }
        for (i, handle) in handles {
            rows[i] = Some(handle.join().expect("domain evaluation panicked"));
        }
    })
    .expect("evaluation threads");
    let domains: Vec<DomainEvaluation> = rows.into_iter().map(Option::unwrap).collect();
    let mut li_usage = LiUsage::default();
    for row in &domains {
        li_usage.merge(&row.li_usage);
    }
    CorpusEvaluation {
        domains,
        li_usage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qi_core::InferenceRule;

    #[test]
    fn corpus_evaluation_has_seven_rows() {
        let domains = qi_datasets::all_domains();
        let lexicon = Lexicon::builtin();
        let result = evaluate_corpus(
            &domains,
            &lexicon,
            NamingPolicy::default(),
            Panel::default(),
        );
        assert_eq!(result.domains.len(), 7);
        for row in &result.domains {
            assert!((0.0..=1.0).contains(&row.fld_acc), "{}: {}", row.name, row.fld_acc);
            assert!((0.0..=1.0).contains(&row.int_acc));
            assert!(row.shape.leaves > 0);
        }
        // Figure 10's headline: LI2 (and LI3/LI5 family) dominate.
        assert!(result.li_usage.total() > 0);
        assert!(
            result.li_usage.ratio(InferenceRule::Li2) > 0.3,
            "LI2 ratio {}",
            result.li_usage.ratio(InferenceRule::Li2)
        );
    }

    #[test]
    fn parallel_matches_sequential() {
        let domains = vec![qi_datasets::auto::domain(), qi_datasets::job::domain()];
        let lexicon = Lexicon::builtin();
        let parallel = evaluate_corpus(
            &domains,
            &lexicon,
            NamingPolicy::default(),
            Panel::default(),
        );
        let sequential: Vec<DomainEvaluation> = domains
            .iter()
            .map(|d| evaluate_domain(d, &lexicon, NamingPolicy::default(), Panel::default()))
            .collect();
        for (p, s) in parallel.domains.iter().zip(&sequential) {
            assert_eq!(p.name, s.name);
            assert_eq!(p.fld_acc, s.fld_acc);
            assert_eq!(p.int_acc, s.int_acc);
            assert_eq!(p.ha, s.ha);
            assert_eq!(p.class, s.class);
        }
    }
}
