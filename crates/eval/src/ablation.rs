//! Policy ablations (the design choices DESIGN.md calls out).
//!
//! * **Ablation A** — most-descriptive (the paper, §3.2.1) vs
//!   most-general (\[12\]'s strategy): how many field/internal labels
//!   change, and what happens to expressiveness.
//! * **Ablation B** — the consistency-level ladder of Definition 2:
//!   string-only, string+equality, full ladder; how many groups reach a
//!   consistent solution at each cap.
//! * **Ablation C** — instance rules (LI6/LI7) on vs off.

use qi_core::{ConsistencyClass, Labeler, NamingPolicy};
use qi_datasets::Domain;
use qi_lexicon::Lexicon;
use qi_text::LabelText;

/// Result of comparing two policies on one domain.
#[derive(Debug, Clone)]
pub struct PolicyComparison {
    /// Domain name.
    pub domain: String,
    /// Short names of the two policies.
    pub left: String,
    /// Ditto.
    pub right: String,
    /// Fields whose final labels differ.
    pub differing_fields: usize,
    /// Internal nodes whose final labels differ.
    pub differing_internal: usize,
    /// Total labeled fields (for the ratio).
    pub total_fields: usize,
    /// Mean content-word count of field labels under the left policy.
    pub left_expressiveness: f64,
    /// Ditto, right policy.
    pub right_expressiveness: f64,
    /// Consistency classes under both policies.
    pub classes: (ConsistencyClass, ConsistencyClass),
}

/// Count of groups solved consistently under a policy.
#[derive(Debug, Clone)]
pub struct LadderPoint {
    /// Domain name.
    pub domain: String,
    /// Policy cap description.
    pub cap: String,
    /// Groups with a consistent solution.
    pub consistent_groups: usize,
    /// Total groups reported.
    pub total_groups: usize,
}

fn label_set(domain: &Domain, lexicon: &Lexicon, policy: NamingPolicy) -> LabeledRun {
    let prepared = domain.prepare();
    let labeler = Labeler::new(lexicon, policy);
    let labeled = labeler.label(&prepared.schemas, &prepared.mapping, &prepared.integrated);
    let fields: Vec<Option<String>> = labeled.tree.leaves().map(|l| l.label.clone()).collect();
    let internal: Vec<Option<String>> = labeled
        .tree
        .internal_nodes()
        .map(|n| n.label.clone())
        .collect();
    LabeledRun {
        fields,
        internal,
        class: labeled
            .report
            .class
            .unwrap_or(ConsistencyClass::Inconsistent),
        consistent_groups: labeled
            .report
            .groups
            .iter()
            .filter(|g| g.consistent)
            .count(),
        total_groups: labeled.report.groups.len(),
    }
}

struct LabeledRun {
    fields: Vec<Option<String>>,
    internal: Vec<Option<String>>,
    class: ConsistencyClass,
    consistent_groups: usize,
    total_groups: usize,
}

fn mean_expressiveness(labels: &[Option<String>], lexicon: &Lexicon) -> f64 {
    let mut sum = 0usize;
    let mut count = 0usize;
    for label in labels.iter().flatten() {
        sum += LabelText::new(label, lexicon).expressiveness();
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        sum as f64 / count as f64
    }
}

/// Ablation A/C: compare two policies on one domain.
pub fn compare_policies(
    domain: &Domain,
    lexicon: &Lexicon,
    left: (&str, NamingPolicy),
    right: (&str, NamingPolicy),
) -> PolicyComparison {
    let l = label_set(domain, lexicon, left.1);
    let r = label_set(domain, lexicon, right.1);
    let differing_fields = l
        .fields
        .iter()
        .zip(&r.fields)
        .filter(|(a, b)| a != b)
        .count();
    let differing_internal = l
        .internal
        .iter()
        .zip(&r.internal)
        .filter(|(a, b)| a != b)
        .count();
    PolicyComparison {
        domain: domain.name.clone(),
        left: left.0.to_string(),
        right: right.0.to_string(),
        differing_fields,
        differing_internal,
        total_fields: l.fields.len(),
        left_expressiveness: mean_expressiveness(&l.fields, lexicon),
        right_expressiveness: mean_expressiveness(&r.fields, lexicon),
        classes: (l.class, r.class),
    }
}

/// The concrete label differences two policies produce on one domain —
/// a [`qi_schema::diff`] of the two labeled integrated trees.
pub fn policy_label_diff(
    domain: &Domain,
    lexicon: &Lexicon,
    left: NamingPolicy,
    right: NamingPolicy,
) -> Vec<qi_schema::diff::Difference> {
    let prepared = domain.prepare();
    let l = Labeler::new(lexicon, left).label(
        &prepared.schemas,
        &prepared.mapping,
        &prepared.integrated,
    );
    let r = Labeler::new(lexicon, right).label(
        &prepared.schemas,
        &prepared.mapping,
        &prepared.integrated,
    );
    qi_schema::diff::diff(&l.tree, &r.tree)
}

/// Ablation B: how far each consistency-level cap gets on one domain.
pub fn ladder_sweep(domain: &Domain, lexicon: &Lexicon) -> Vec<LadderPoint> {
    use qi_core::ConsistencyLevel;
    ConsistencyLevel::LADDER
        .iter()
        .map(|&cap| {
            let policy = NamingPolicy {
                max_level: cap,
                ..NamingPolicy::default()
            };
            let run = label_set(domain, lexicon, policy);
            LadderPoint {
                domain: domain.name.clone(),
                cap: cap.to_string(),
                consistent_groups: run.consistent_groups,
                total_groups: run.total_groups,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptive_beats_general_on_expressiveness() {
        let lexicon = Lexicon::builtin();
        let domain = qi_datasets::auto::domain();
        let cmp = compare_policies(
            &domain,
            &lexicon,
            ("descriptive", NamingPolicy::default()),
            ("general", NamingPolicy::most_general_baseline()),
        );
        assert!(
            cmp.left_expressiveness >= cmp.right_expressiveness,
            "descriptive {} < general {}",
            cmp.left_expressiveness,
            cmp.right_expressiveness
        );
        assert!(cmp.total_fields > 0);
    }

    /// The purpose-built ladder domain climbs exactly one rung per level:
    /// nothing at string, the equality groups at equality, everything at
    /// synonymy.
    #[test]
    fn ladder_domain_climbs_by_level() {
        let lexicon = Lexicon::builtin();
        let domain = qi_datasets::generate_ladder(3, 3);
        let points = ladder_sweep(&domain, &lexicon);
        let consistent: Vec<usize> = points.iter().map(|p| p.consistent_groups).collect();
        assert_eq!(consistent, vec![0, 3, 6], "{points:?}");
    }

    #[test]
    fn policy_diff_lists_only_label_changes() {
        let lexicon = Lexicon::builtin();
        let domain = qi_datasets::real_estate::domain();
        let differences = policy_label_diff(
            &domain,
            &lexicon,
            NamingPolicy::default(),
            NamingPolicy::most_general_baseline(),
        );
        assert!(
            !differences.is_empty(),
            "policies should disagree somewhere"
        );
        // Policies change labels only — never the structure.
        for difference in &differences {
            assert!(
                matches!(difference, qi_schema::diff::Difference::Label { .. }),
                "unexpected structural difference: {difference}"
            );
        }
    }

    #[test]
    fn ladder_is_monotone() {
        let lexicon = Lexicon::builtin();
        for domain in [qi_datasets::airline::domain(), qi_datasets::job::domain()] {
            let points = ladder_sweep(&domain, &lexicon);
            assert_eq!(points.len(), 3);
            for pair in points.windows(2) {
                assert!(
                    pair[0].consistent_groups <= pair[1].consistent_groups,
                    "{}: {} then {}",
                    pair[0].domain,
                    pair[0].consistent_groups,
                    pair[1].consistent_groups
                );
            }
        }
    }
}
