//! The evaluation metrics of §7.

use qi_core::{ConsistencyClass, LabeledInterface, LiUsage};
use qi_schema::DomainStats;

/// Shape of an integrated interface (Table 6, columns 6–11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntegratedShape {
    /// Number of fields.
    pub leaves: usize,
    /// Number of groups (≥ 2 sibling fields).
    pub groups: usize,
    /// Isolated fields (`C_int`).
    pub isolated: usize,
    /// Fields directly under the root (`C_root`).
    pub root_leaves: usize,
    /// Internal nodes (root excluded).
    pub internal_nodes: usize,
    /// Tree depth (nodes on the longest root-to-leaf path).
    pub depth: usize,
}

/// Everything Table 6 reports for one domain.
#[derive(Debug, Clone)]
pub struct DomainEvaluation {
    /// Domain name.
    pub name: String,
    /// Source-interface averages (columns 2–5).
    pub source: DomainStats,
    /// Integrated-interface shape (columns 6–11).
    pub shape: IntegratedShape,
    /// Fields-consistency accuracy: fields labeled (or unlabeled but
    /// carrying instances) over all fields (§7, column FldAcc).
    pub fld_acc: f64,
    /// Internal-nodes accuracy: labeled internal nodes over all internal
    /// nodes (§7, column IntAcc).
    pub int_acc: f64,
    /// Simulated human acceptance (column HA).
    pub ha: f64,
    /// HA after discounting errors attributable to source interfaces
    /// (column HA*).
    pub ha_star: f64,
    /// Definition 8 classification of the labeled tree.
    pub class: ConsistencyClass,
    /// Inference-rule usage for this domain (Figure 10 input).
    pub li_usage: LiUsage,
    /// Operational metrics of this domain's run (empty when telemetry
    /// was off — the default).
    pub metrics: qi_runtime::MetricsSnapshot,
}

/// Compute the integrated-interface shape statistics.
pub fn integrated_shape(labeled: &LabeledInterface) -> IntegratedShape {
    let tree = &labeled.tree;
    let mut groups = 0usize;
    let mut isolated = 0usize;
    for group in tree.leaf_groups() {
        if group.leaves.len() >= 2 {
            groups += 1;
        } else {
            isolated += 1;
        }
    }
    IntegratedShape {
        leaves: tree.leaves().count(),
        groups,
        isolated,
        root_leaves: tree.root_leaves().len(),
        internal_nodes: tree.internal_nodes().count(),
        depth: tree.depth(),
    }
}

/// FldAcc (§7): a field counts as accurately handled when it carries a
/// label, or carries no label but has an instance domain the user can
/// read the semantics from (the paper's allowance for the Figure 11
/// unlabeled field is the *complement*: unlabeled fields without
/// instances are the failures).
pub fn fields_accuracy(labeled: &LabeledInterface) -> f64 {
    let mut total = 0usize;
    let mut ok = 0usize;
    for leaf in labeled.tree.leaves() {
        total += 1;
        if leaf.label.is_some() || !leaf.instances().is_empty() {
            ok += 1;
        }
    }
    if total == 0 {
        1.0
    } else {
        ok as f64 / total as f64
    }
}

/// IntAcc (§7): labeled internal nodes over all internal nodes.
pub fn internal_accuracy(labeled: &LabeledInterface) -> f64 {
    let mut total = 0usize;
    let mut ok = 0usize;
    for node in labeled.tree.internal_nodes() {
        total += 1;
        if node.label.is_some() {
            ok += 1;
        }
    }
    if total == 0 {
        1.0
    } else {
        ok as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qi_core::{Labeler, NamingPolicy};
    use qi_lexicon::Lexicon;

    fn labeled_airline() -> LabeledInterface {
        let prepared = qi_datasets::airline::domain().prepare();
        let lexicon = Lexicon::builtin();
        let labeler = Labeler::new(&lexicon, NamingPolicy::default());
        labeler.label(&prepared.schemas, &prepared.mapping, &prepared.integrated)
    }

    #[test]
    fn airline_field_accuracy_is_perfect() {
        // The only unlabeled airline fields are date selects with
        // instances, so FldAcc = 100% (Table 6).
        let labeled = labeled_airline();
        assert!((fields_accuracy(&labeled) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn airline_internal_accuracy_near_paper() {
        // Paper: 84.6%. Two of the twelve internal nodes stay unlabeled
        // (the frequency-1 return-route group, the blocked fare pair).
        let labeled = labeled_airline();
        let acc = internal_accuracy(&labeled);
        assert!((0.78..=0.92).contains(&acc), "IntAcc {acc}");
    }

    #[test]
    fn shape_is_consistent_with_tree() {
        let labeled = labeled_airline();
        let shape = integrated_shape(&labeled);
        assert_eq!(shape.leaves, 24);
        assert_eq!(
            shape.groups + shape.isolated,
            labeled.tree.leaf_groups().len()
        );
        assert!(shape.depth >= 4);
    }
}
