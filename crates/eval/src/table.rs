//! Plain-text rendering of Table 6 and Figure 10.

use crate::metrics::DomainEvaluation;
use qi_core::{InferenceRule, LiUsage};

/// Render Table 6 (all columns) as fixed-width text.
pub fn render_table6(rows: &[DomainEvaluation]) -> String {
    let mut out = String::new();
    out.push_str(
        "Domain            | Source interfaces (avg)        | Integrated query interface                      | Statistics\n",
    );
    out.push_str(
        "                  | Leaves IntNod Depth  LQ        | Leaves Groups Iso Root IntNod Depth             | FldAcc  IntAcc  HA      HA*     Class\n",
    );
    out.push_str(&"-".repeat(150));
    out.push('\n');
    for row in rows {
        out.push_str(&format!(
            "{:<17} | {:>6.1} {:>6.1} {:>5.1} {:>4.1}% | {:>6} {:>6} {:>3} {:>4} {:>6} {:>5} | {:>5.1}% {:>6.1}% {:>6.1}% {:>6.1}%  {}\n",
            format!("{} ({})", row.name, row.source.interfaces),
            row.source.avg_leaves,
            row.source.avg_internal_nodes,
            row.source.avg_depth,
            row.source.avg_labeling_quality * 100.0,
            row.shape.leaves,
            row.shape.groups,
            row.shape.isolated,
            row.shape.root_leaves,
            row.shape.internal_nodes,
            row.shape.depth,
            row.fld_acc * 100.0,
            row.int_acc * 100.0,
            row.ha * 100.0,
            row.ha_star * 100.0,
            row.class,
        ));
    }
    out
}

/// Render Figure 10 (LI involvement ratios) as text with bars.
pub fn render_figure10(usage: &LiUsage) -> String {
    let mut out = String::new();
    out.push_str("Inference-rule involvement (Figure 10)\n");
    out.push_str(&format!(
        "total candidate-label derivations: {}\n",
        usage.total()
    ));
    for rule in InferenceRule::ALL {
        let ratio = usage.ratio(rule);
        let bar = "#".repeat((ratio * 50.0).round() as usize);
        out.push_str(&format!(
            "{rule}: {:>5.1}% ({:>4})  {bar}\n",
            ratio * 100.0,
            usage.count(rule)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::IntegratedShape;
    use qi_core::ConsistencyClass;
    use qi_schema::DomainStats;

    fn row() -> DomainEvaluation {
        DomainEvaluation {
            name: "Airline".to_string(),
            source: DomainStats {
                interfaces: 20,
                avg_leaves: 10.7,
                avg_internal_nodes: 5.1,
                avg_depth: 3.6,
                avg_labeling_quality: 0.53,
            },
            shape: IntegratedShape {
                leaves: 24,
                groups: 8,
                isolated: 0,
                root_leaves: 1,
                internal_nodes: 13,
                depth: 5,
            },
            fld_acc: 1.0,
            int_acc: 0.846,
            ha: 0.966,
            ha_star: 0.983,
            class: ConsistencyClass::Inconsistent,
            li_usage: qi_core::LiUsage::default(),
            metrics: qi_runtime::MetricsSnapshot::default(),
        }
    }

    #[test]
    fn table6_renders_all_rows() {
        let text = render_table6(&[row()]);
        assert!(text.contains("Airline (20)"));
        assert!(text.contains("84.6"));
        assert!(text.contains("inconsistent"));
    }

    #[test]
    fn figure10_renders_all_rules() {
        let mut usage = qi_core::LiUsage::default();
        usage.record(InferenceRule::Li2);
        usage.record(InferenceRule::Li2);
        usage.record(InferenceRule::Li3);
        let text = render_figure10(&usage);
        for rule in InferenceRule::ALL {
            assert!(text.contains(&rule.to_string()), "{rule} missing");
        }
        assert!(text.contains("66.7%"));
    }
}
