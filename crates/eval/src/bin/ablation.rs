//! Policy ablations: most-descriptive vs most-general, the consistency
//! ladder, and the instance rules.

use qi_core::NamingPolicy;
use qi_eval::ablation::{compare_policies, ladder_sweep};
use qi_lexicon::Lexicon;

fn main() {
    let domains = qi_datasets::all_domains();
    let lexicon = Lexicon::builtin();
    println!("== Ablation A: most-descriptive (paper) vs most-general ([12]) ==");
    for domain in &domains {
        let cmp = compare_policies(
            domain,
            &lexicon,
            ("descriptive", NamingPolicy::default()),
            ("general", NamingPolicy::most_general_baseline()),
        );
        println!(
            "{:<12} fields changed {:>2}/{:<2}  internal changed {:>2}  expressiveness {:.2} vs {:.2}  class {} vs {}",
            cmp.domain,
            cmp.differing_fields,
            cmp.total_fields,
            cmp.differing_internal,
            cmp.left_expressiveness,
            cmp.right_expressiveness,
            cmp.classes.0,
            cmp.classes.1
        );
    }
    println!();
    println!("   e.g. the exact Real Estate label changes:");
    if let Some(re) = domains.iter().find(|d| d.name == "Real Estate") {
        for difference in qi_eval::ablation::policy_label_diff(
            re,
            &lexicon,
            NamingPolicy::default(),
            NamingPolicy::most_general_baseline(),
        ) {
            println!("     {difference}");
        }
    }
    println!();
    println!("== Ablation B: consistency-level ladder (Definition 2) ==");
    for domain in &domains {
        for point in ladder_sweep(domain, &lexicon) {
            println!(
                "{:<12} cap={:<9} consistent groups {:>2}/{:<2}",
                point.domain, point.cap, point.consistent_groups, point.total_groups
            );
        }
    }
    println!();
    println!("== Ablation B': the ladder on a purpose-built domain ==");
    println!("   (3 equality-level groups + 3 synonymy-level groups;");
    println!("    no group is solvable by plain string comparison)");
    let ladder_domain = qi_datasets::generate_ladder(3, 3);
    for point in ladder_sweep(&ladder_domain, &lexicon) {
        println!(
            "{:<12} cap={:<9} consistent groups {:>2}/{:<2}",
            point.domain, point.cap, point.consistent_groups, point.total_groups
        );
    }
    println!();
    println!("== Ablation C: instance rules (LI6/LI7) on vs off ==");
    for domain in &domains {
        let cmp = compare_policies(
            domain,
            &lexicon,
            ("instances on", NamingPolicy::default()),
            (
                "instances off",
                NamingPolicy {
                    use_instances: false,
                    ..NamingPolicy::default()
                },
            ),
        );
        println!(
            "{:<12} fields changed {:>2}/{:<2}  internal changed {:>2}",
            cmp.domain, cmp.differing_fields, cmp.total_fields, cmp.differing_internal
        );
    }
}
