//! Regenerate Figure 10 (inference-rule involvement) on the full corpus.

use qi_core::NamingPolicy;
use qi_eval::{evaluate_corpus, table, Panel};
use qi_lexicon::Lexicon;

fn main() {
    let domains = qi_datasets::all_domains();
    let lexicon = Lexicon::builtin();
    let result = evaluate_corpus(
        &domains,
        &lexicon,
        NamingPolicy::default(),
        Panel::default(),
    );
    print!("{}", table::render_figure10(&result.li_usage));
}
