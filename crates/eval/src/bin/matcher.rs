//! Score the label-similarity matcher against the corpus ground truth.

use qi_eval::matcher_eval::{evaluate_matcher, render, MatcherReport};
use qi_lexicon::Lexicon;

fn main() {
    let lexicon = Lexicon::builtin();
    let reports: Vec<MatcherReport> = qi_datasets::all_domains()
        .iter()
        .map(|domain| evaluate_matcher(domain, &lexicon))
        .collect();
    print!("{}", render(&reports));
}
