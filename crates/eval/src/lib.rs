//! Evaluation harness reproducing §7 of the paper.
//!
//! * [`runner::evaluate_domain`] runs the full pipeline (1:m expansion →
//!   merge → naming) on one domain and computes every statistic of
//!   Table 6: source characteristics (columns 2–5), integrated-interface
//!   shape (columns 6–11), the consistency-quality metrics FldAcc and
//!   IntAcc, and the simulated human-acceptance scores HA / HA*.
//! * [`panel`] implements the 11-judge acceptance survey as a
//!   deterministic ambiguity oracle built from the paper's own findings
//!   (every field humans flagged had source frequency 1; some errors were
//!   attributed to the sources on inspection).
//! * [`runner::evaluate_corpus`] sweeps all seven domains (in parallel)
//!   and aggregates the LI-usage ratios behind Figure 10.
//! * [`ablation`] compares naming policies (most-descriptive vs
//!   most-general, consistency-level ladder, instance rules).

pub mod ablation;
pub mod json;
pub mod matcher_eval;
pub mod metrics;
pub mod panel;
pub mod runner;
pub mod table;

pub use metrics::{DomainEvaluation, IntegratedShape};
pub use panel::{Panel, PanelConfig};
pub use runner::{
    evaluate_corpus, evaluate_corpus_with, evaluate_domain, evaluate_domain_with, CorpusEvaluation,
    DomainFailure, RunConfig,
};
