//! JSON rendering of evaluation results on the shared
//! [`qi_runtime::json`] writer (the workspace is dependency-free, and
//! the output schema is small and fixed).

use crate::metrics::DomainEvaluation;
use crate::runner::CorpusEvaluation;
use qi_core::InferenceRule;
use qi_runtime::json::{Arr, Obj};

/// Evaluation documents carry six fraction digits.
const DECIMALS: usize = 6;

/// One Table 6 row as a JSON object.
pub fn domain_to_json(row: &DomainEvaluation) -> String {
    let mut source = Obj::new();
    source
        .u64("interfaces", row.source.interfaces as u64)
        .f64("avg_leaves", row.source.avg_leaves, DECIMALS)
        .f64(
            "avg_internal_nodes",
            row.source.avg_internal_nodes,
            DECIMALS,
        )
        .f64("avg_depth", row.source.avg_depth, DECIMALS)
        .f64(
            "avg_labeling_quality",
            row.source.avg_labeling_quality,
            DECIMALS,
        );
    let mut integrated = Obj::new();
    integrated
        .u64("leaves", row.shape.leaves as u64)
        .u64("groups", row.shape.groups as u64)
        .u64("isolated", row.shape.isolated as u64)
        .u64("root_leaves", row.shape.root_leaves as u64)
        .u64("internal_nodes", row.shape.internal_nodes as u64)
        .u64("depth", row.shape.depth as u64);
    Obj::new()
        .str("domain", &row.name)
        .raw("source", source.finish())
        .raw("integrated", integrated.finish())
        .f64("fld_acc", row.fld_acc, DECIMALS)
        .f64("int_acc", row.int_acc, DECIMALS)
        .f64("ha", row.ha, DECIMALS)
        .f64("ha_star", row.ha_star, DECIMALS)
        .str("class", &row.class.to_string())
        .finish()
}

/// The whole evaluation (Table 6 + Figure 10) as one JSON document.
pub fn corpus_to_json(result: &CorpusEvaluation) -> String {
    let mut domains = Arr::new();
    for row in &result.domains {
        domains.raw(domain_to_json(row));
    }
    let mut li = Obj::new();
    for &rule in InferenceRule::ALL.iter() {
        li.raw(
            &rule.to_string(),
            Obj::new()
                .u64("count", result.li_usage.count(rule) as u64)
                .f64("ratio", result.li_usage.ratio(rule), DECIMALS)
                .finish(),
        );
    }
    Obj::new()
        .raw("table6", domains.finish())
        .raw("figure10", li.finish())
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qi_core::NamingPolicy;
    use qi_lexicon::Lexicon;

    #[test]
    fn corpus_json_is_well_formed_enough() {
        let lexicon = Lexicon::builtin();
        let domains = vec![qi_datasets::auto::domain()];
        let result = crate::runner::evaluate_corpus(
            &domains,
            &lexicon,
            NamingPolicy::default(),
            crate::panel::Panel::default(),
        );
        let json = corpus_to_json(&result);
        // Structural sanity: balanced braces/brackets, expected keys.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.starts_with("{\"table6\":["));
        assert!(json.contains("\"domain\":\"Auto\""));
        assert!(json.contains("\"fld_acc\":1.000000"));
        assert!(json.contains("\"figure10\":{\"LI1\""));
        assert!(json.ends_with("}}"));
    }
}
