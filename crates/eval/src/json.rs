//! Minimal JSON rendering of evaluation results (hand-rolled writer —
//! the workspace is dependency-free, and the output schema is small and
//! fixed).

use crate::metrics::DomainEvaluation;
use crate::runner::CorpusEvaluation;
use qi_core::InferenceRule;

/// Escape a string for a JSON string literal.
fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn number(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.6}")
    } else {
        "null".to_string()
    }
}

/// One Table 6 row as a JSON object.
pub fn domain_to_json(row: &DomainEvaluation) -> String {
    format!(
        concat!(
            "{{\"domain\":\"{}\",",
            "\"source\":{{\"interfaces\":{},\"avg_leaves\":{},\"avg_internal_nodes\":{},",
            "\"avg_depth\":{},\"avg_labeling_quality\":{}}},",
            "\"integrated\":{{\"leaves\":{},\"groups\":{},\"isolated\":{},\"root_leaves\":{},",
            "\"internal_nodes\":{},\"depth\":{}}},",
            "\"fld_acc\":{},\"int_acc\":{},\"ha\":{},\"ha_star\":{},\"class\":\"{}\"}}"
        ),
        escape(&row.name),
        row.source.interfaces,
        number(row.source.avg_leaves),
        number(row.source.avg_internal_nodes),
        number(row.source.avg_depth),
        number(row.source.avg_labeling_quality),
        row.shape.leaves,
        row.shape.groups,
        row.shape.isolated,
        row.shape.root_leaves,
        row.shape.internal_nodes,
        row.shape.depth,
        number(row.fld_acc),
        number(row.int_acc),
        number(row.ha),
        number(row.ha_star),
        escape(&row.class.to_string()),
    )
}

/// The whole evaluation (Table 6 + Figure 10) as one JSON document.
pub fn corpus_to_json(result: &CorpusEvaluation) -> String {
    let domains: Vec<String> = result.domains.iter().map(domain_to_json).collect();
    let li: Vec<String> = InferenceRule::ALL
        .iter()
        .map(|&rule| {
            format!(
                "\"{}\":{{\"count\":{},\"ratio\":{}}}",
                rule,
                result.li_usage.count(rule),
                number(result.li_usage.ratio(rule))
            )
        })
        .collect();
    format!(
        "{{\"table6\":[{}],\"figure10\":{{{}}}}}",
        domains.join(","),
        li.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use qi_core::NamingPolicy;
    use qi_lexicon::Lexicon;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn corpus_json_is_well_formed_enough() {
        let lexicon = Lexicon::builtin();
        let domains = vec![qi_datasets::auto::domain()];
        let result = crate::runner::evaluate_corpus(
            &domains,
            &lexicon,
            NamingPolicy::default(),
            crate::panel::Panel::default(),
        );
        let json = corpus_to_json(&result);
        // Structural sanity: balanced braces/brackets, expected keys.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.starts_with("{\"table6\":["));
        assert!(json.contains("\"domain\":\"Auto\""));
        assert!(json.contains("\"fld_acc\":1.000000"));
        assert!(json.contains("\"figure10\":{\"LI1\""));
        assert!(json.ends_with("}}"));
    }

    #[test]
    fn nan_becomes_null() {
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(1.5), "1.500000");
    }
}
