//! A corpus domain: interfaces + ground-truth clusters, and the prepared
//! (expanded + merged) form the labeler consumes.

use crate::spec::{build_interface, FieldSpec};
use qi_mapping::{expand_one_to_many, FieldRef, Integrated, Mapping};
use qi_schema::{DomainStats, InterfaceStats, SchemaTree};
use std::collections::BTreeMap;

/// One evaluation domain (e.g. Airline) in raw, 1:m form.
#[derive(Debug, Clone)]
pub struct Domain {
    /// Display name (Table 6 row).
    pub name: String,
    /// Source interfaces.
    pub schemas: Vec<SchemaTree>,
    /// Ground-truth clusters (possibly 1:m, before expansion).
    pub mapping: Mapping,
}

/// A domain after 1:m expansion and structural merge — the exact inputs
/// of the naming algorithm (§3 Preliminaries).
#[derive(Debug, Clone)]
pub struct PreparedDomain {
    /// Display name.
    pub name: String,
    /// Expanded source interfaces.
    pub schemas: Vec<SchemaTree>,
    /// 1:1 mapping.
    pub mapping: Mapping,
    /// The merged, unlabeled integrated interface.
    pub integrated: Integrated,
}

impl Domain {
    /// Build a domain from `(interface name, specs)` pairs. Cluster order
    /// follows first appearance of each concept.
    pub fn from_interfaces(name: &str, interfaces: Vec<(&str, Vec<FieldSpec>)>) -> Domain {
        let mut schemas: Vec<SchemaTree> = Vec::with_capacity(interfaces.len());
        let mut clusters: BTreeMap<String, Vec<FieldRef>> = BTreeMap::new();
        let mut order: Vec<String> = Vec::new();
        for (schema_idx, (iface_name, specs)) in interfaces.into_iter().enumerate() {
            let (tree, concepts) = build_interface(iface_name, &specs)
                .unwrap_or_else(|e| panic!("{name}/{iface_name}: {e}"));
            for (node, concept_names) in concepts {
                for concept in concept_names {
                    if !clusters.contains_key(&concept) {
                        order.push(concept.clone());
                    }
                    clusters
                        .entry(concept)
                        .or_default()
                        .push(FieldRef::new(schema_idx, node));
                }
            }
            schemas.push(tree);
        }
        let mapping = Mapping::from_clusters(
            order
                .into_iter()
                .map(|concept| {
                    let members = clusters.remove(&concept).expect("concept recorded");
                    (concept, members)
                })
                .collect::<Vec<_>>(),
        );
        Domain {
            name: name.to_string(),
            schemas,
            mapping,
        }
    }

    /// Average source-interface statistics (Table 6, columns 2–5).
    pub fn source_stats(&self) -> DomainStats {
        let stats: Vec<InterfaceStats> = self.schemas.iter().map(SchemaTree::stats).collect();
        DomainStats::aggregate(&stats)
    }

    /// Expand 1:m matchings and merge: produce the labeler's inputs.
    pub fn prepare(&self) -> PreparedDomain {
        let mut schemas = self.schemas.clone();
        let mut mapping = self.mapping.clone();
        expand_one_to_many(&mut schemas, &mut mapping);
        let integrated = qi_merge::merge(&schemas, &mapping);
        PreparedDomain {
            name: self.name.clone(),
            schemas,
            mapping,
            integrated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{f, fm, g};

    fn tiny() -> Domain {
        Domain::from_interfaces(
            "Tiny",
            vec![
                (
                    "one",
                    vec![g(
                        "People",
                        vec![f("adult", "Adults"), f("child", "Children")],
                    )],
                ),
                ("two", vec![fm(&["adult", "child"], "Passengers")]),
            ],
        )
    }

    #[test]
    fn clusters_follow_first_appearance() {
        let d = tiny();
        assert_eq!(d.mapping.clusters[0].concept, "adult");
        assert_eq!(d.mapping.clusters[1].concept, "child");
        assert_eq!(d.mapping.clusters.len(), 2);
        // The 1:m Passengers field is in both clusters pre-expansion.
        assert_eq!(d.mapping.clusters[0].members.len(), 2);
        assert_eq!(d.mapping.clusters[1].members.len(), 2);
    }

    #[test]
    fn prepare_expands_and_merges() {
        let d = tiny();
        let p = d.prepare();
        p.mapping.validate(&p.schemas).unwrap();
        assert_eq!(p.integrated.tree.leaves().count(), 2);
        // `Passengers` became an internal node in schema "two".
        assert_eq!(p.schemas[1].internal_nodes().count(), 1);
    }

    #[test]
    fn source_stats_aggregate() {
        let d = tiny();
        let stats = d.source_stats();
        assert_eq!(stats.interfaces, 2);
        assert!((stats.avg_leaves - 1.5).abs() < 1e-9); // 2 and 1 leaves
    }
}
