//! The Car Rental domain: 20 interfaces.
//!
//! The widest integrated interface of the corpus (Table 6: 34 leaves, 9
//! groups, 3 isolated fields, 15 internal nodes, depth 5), with low
//! source labeling quality (LQ ≈ 52.5%: unlabeled date/time selects and
//! unlabeled groups everywhere). Reproduces the paper's reported
//! pathologies:
//!
//! * the integrated interface is *inconsistent*: the pick-up location
//!   subgroup's only candidate label (`Pick Up Location`) is claimed by
//!   its ancestor ("a node whose set of candidate labels is promoted to
//!   its ancestors", §7), so the node stays unlabeled (IntAcc ≈ 93%);
//! * frequency-1 loyalty-program fields (`Hertz Gold Number`,
//!   `Avis Wizard Number`) that the human-acceptance panel flags as too
//!   specific for a global interface.

use crate::domain::Domain;
use crate::spec::{f, fi, fui, g, gu, FieldSpec};

const MONTHS: &[&str] = &[
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];
const DAYS: &[&str] = &["1", "5", "10", "15", "20", "25", "28"];
const HOURS: &[&str] = &["08:00", "10:00", "12:00", "16:00", "18:00"];
const CAR_CLASSES: &[&str] = &["Economy", "Compact", "Midsize", "Full Size", "SUV"];
const TRANSMISSIONS: &[&str] = &["Automatic", "Manual"];
const RATE_TYPES: &[&str] = &["Daily", "Weekly", "Monthly"];
const PAY_TYPES: &[&str] = &["Pay now", "Pay at counter"];

/// An unlabeled month/day/hour triple.
fn datetime(prefix: &str) -> Vec<FieldSpec> {
    vec![
        fui(&format!("{prefix}_month"), MONTHS),
        fui(&format!("{prefix}_day"), DAYS),
        fui(&format!("{prefix}_time"), HOURS),
    ]
}

/// Build the Car Rental domain.
pub fn domain() -> Domain {
    let interfaces: Vec<(&str, Vec<FieldSpec>)> = vec![
        // --- The three sources that set up the blocked-candidate node -----
        (
            "hertz",
            vec![
                g(
                    "Pick Up Location",
                    vec![f("pu_city", "City"), f("pu_state", "State")],
                ),
                g("Pick Up Date", datetime("pu")),
                g(
                    "Drop Off Location",
                    vec![f("do_city", "City"), f("do_state", "State")],
                ),
                g("Drop Off Date", datetime("do")),
                g("Membership", vec![f("hertz_gold", "Hertz Gold Number")]),
            ],
        ),
        (
            "avis",
            vec![
                g(
                    "Pick Up",
                    vec![
                        g(
                            "Pick Up Location",
                            vec![
                                f("pu_city", "City"),
                                f("pu_state", "State"),
                                f("pu_zip", "Zip Code"),
                                f("pu_airport", "Airport"),
                                f("pu_country", "Country"),
                            ],
                        ),
                        gu(datetime("pu")),
                    ],
                ),
                g(
                    "Drop Off",
                    vec![
                        g(
                            "Drop Off Location",
                            vec![
                                f("do_city", "City"),
                                f("do_state", "State"),
                                f("do_zip", "Zip Code"),
                                f("do_airport", "Airport"),
                                f("do_country", "Country"),
                            ],
                        ),
                        gu(datetime("do")),
                    ],
                ),
                g("Membership", vec![f("avis_wizard", "Avis Wizard Number")]),
            ],
        ),
        (
            "budget",
            vec![
                g(
                    "Pick Up Location",
                    vec![
                        f("pu_city", "City"),
                        f("pu_state", "State"),
                        f("pu_zip", "Zip Code"),
                        f("pu_airport", "Airport"),
                        f("pu_country", "Country"),
                    ],
                ),
                g("Pick Up Date", datetime("pu")),
                g("Drop Off Date", datetime("do")),
                g(
                    "Car Preferences",
                    vec![
                        fi("car_class", "Car Class", CAR_CLASSES),
                        fui("transmission", TRANSMISSIONS),
                    ],
                ),
            ],
        ),
        // --- Super-grouped interfaces (depth 4–5) ---------------------------
        (
            "alamo",
            vec![
                g(
                    "Pick Up",
                    vec![
                        f("pu_city", "City"),
                        f("pu_airport", "Airport"),
                        gu(datetime("pu")),
                    ],
                ),
                g(
                    "Drop Off",
                    vec![
                        f("do_city", "City"),
                        f("do_airport", "Airport"),
                        gu(datetime("do")),
                    ],
                ),
                fi("car_class", "Car Type", CAR_CLASSES),
                f("discount_code", "Discount Code"),
            ],
        ),
        (
            "national",
            vec![
                g(
                    "Pick Up",
                    vec![
                        f("pu_city", "City"),
                        f("pu_state", "State"),
                        gu(datetime("pu")),
                    ],
                ),
                g(
                    "Drop Off",
                    vec![
                        f("do_city", "City"),
                        f("do_state", "State"),
                        gu(datetime("do")),
                    ],
                ),
                g(
                    "Driver",
                    vec![
                        f("driver_age", "Driver Age"),
                        f("residence", "Country of Residence"),
                    ],
                ),
            ],
        ),
        (
            "enterprise",
            vec![
                gu(vec![f("pu_city", "City"), f("pu_zip", "Zip Code")]),
                g("Pick Up Date", datetime("pu")),
                g("Drop Off Date", datetime("do")),
                g(
                    "Vehicle",
                    vec![
                        fi("car_class", "Vehicle Class", CAR_CLASSES),
                        fui("transmission", TRANSMISSIONS),
                        f("ac", "Air Conditioning"),
                    ],
                ),
                f("coupon", "Coupon Number"),
            ],
        ),
        (
            "thrifty",
            vec![
                gu(vec![
                    f("pu_city", "Pick Up City"),
                    f("pu_airport", "Pick Up Airport"),
                ]),
                gu(datetime("pu")),
                gu(vec![f("do_city", "City"), f("do_airport", "Airport")]),
                gu(datetime("do")),
                g(
                    "Rate",
                    vec![
                        fi("rate_type", "Rate Type", RATE_TYPES),
                        fui("pay_type", PAY_TYPES),
                    ],
                ),
            ],
        ),
        (
            "dollar",
            vec![
                gu(vec![f("pu_city", "City"), f("pu_state", "State")]),
                gu(datetime("pu")),
                gu(datetime("do")),
                g(
                    "Extras",
                    vec![
                        f("gps", "GPS Navigation"),
                        f("child_seat", "Child Seat"),
                        f("insurance", "Insurance"),
                    ],
                ),
                f("mileage_option", "Unlimited Mileage"),
            ],
        ),
        (
            "payless",
            vec![
                gu(vec![f("pu_city", "City"), f("pu_zip", "Zip Code")]),
                gu(datetime("pu")),
                gu(datetime("do")),
                g(
                    "Discounts",
                    vec![
                        f("discount_code", "Discount Code"),
                        f("coupon", "Coupon"),
                        f("company_pref", "Rental Company"),
                    ],
                ),
            ],
        ),
        (
            "foxrent",
            vec![
                gu(vec![f("pu_city", "City"), f("pu_airport", "Airport")]),
                gu(datetime("pu")),
                gu(datetime("do")),
                fi("car_class", "Car Class", CAR_CLASSES),
                f("driver_age", "Age of Driver"),
            ],
        ),
        (
            "aamcar",
            vec![
                f("pu_city", "Pick Up City"),
                gu(datetime("pu")),
                gu(datetime("do")),
                g(
                    "Extras",
                    vec![f("gps", "GPS"), f("child_seat", "Child Seat")],
                ),
                g(
                    "Flight Information",
                    vec![f("flight_number", "Flight Number")],
                ),
            ],
        ),
        (
            "rentalcars",
            vec![
                gu(vec![f("pu_city", "City"), f("pu_country", "Country")]),
                gu(datetime("pu")),
                gu(vec![f("do_city", "City"), f("do_country", "Country")]),
                gu(datetime("do")),
                g(
                    "Driver",
                    vec![f("driver_age", "Driver Age"), f("residence", "Residence")],
                ),
                f("currency", "Currency"),
            ],
        ),
        (
            "autoeurope",
            vec![
                gu(vec![f("pu_city", "City"), f("pu_country", "Country")]),
                gu(datetime("pu")),
                gu(datetime("do")),
                g(
                    "Rate",
                    vec![
                        fi("rate_type", "Rate", RATE_TYPES),
                        fui("pay_type", PAY_TYPES),
                    ],
                ),
                f("currency", "Preferred Currency"),
            ],
        ),
        (
            "kayakcars",
            vec![
                gu(vec![f("pu_city", "City"), f("pu_airport", "Airport")]),
                gu(datetime("pu")),
                gu(datetime("do")),
                g(
                    "Car Preferences",
                    vec![
                        fi("car_class", "Car Class", CAR_CLASSES),
                        f("ac", "Air Conditioning"),
                    ],
                ),
                f("company_pref", "Preferred Company"),
            ],
        ),
        (
            "expediacars",
            vec![
                gu(vec![f("pu_city", "City"), f("pu_airport", "Airport")]),
                gu(datetime("pu")),
                gu(vec![f("do_city", "City"), f("do_airport", "Airport")]),
                gu(datetime("do")),
                g(
                    "Discounts",
                    vec![
                        f("discount_code", "Discount Code"),
                        f("coupon", "Coupon Code"),
                    ],
                ),
                g(
                    "Flight Information",
                    vec![f("flight_number", "Flight Number")],
                ),
            ],
        ),
        (
            "orbitzcars",
            vec![
                gu(vec![f("pu_city", "City"), f("pu_state", "State")]),
                gu(datetime("pu")),
                gu(datetime("do")),
                g(
                    "Extras",
                    vec![
                        f("gps", "GPS Navigation"),
                        f("child_seat", "Child Seat"),
                        f("insurance", "Rental Insurance"),
                    ],
                ),
                f("mileage_option", "Unlimited Mileage"),
            ],
        ),
        (
            "carrentals",
            vec![
                gu(vec![f("pu_city", "City"), f("pu_zip", "Zip Code")]),
                gu(datetime("pu")),
                gu(datetime("do")),
                fi("car_class", "Car Class", CAR_CLASSES),
                fui("transmission", TRANSMISSIONS),
                f("driver_age", "Driver Age"),
            ],
        ),
        (
            "economycarrentals",
            vec![
                gu(vec![f("pu_city", "City"), f("pu_country", "Country")]),
                gu(datetime("pu")),
                gu(datetime("do")),
                g(
                    "Driver",
                    vec![
                        f("driver_age", "Age"),
                        f("residence", "Country of Residence"),
                    ],
                ),
                f("currency", "Currency"),
            ],
        ),
        (
            "sixt",
            vec![
                gu(vec![f("pu_city", "City"), f("pu_airport", "Airport")]),
                gu(datetime("pu")),
                gu(datetime("do")),
                g(
                    "Rate",
                    vec![
                        fi("rate_type", "Rate Type", RATE_TYPES),
                        fui("pay_type", PAY_TYPES),
                    ],
                ),
                f("mileage_option", "Mileage Option"),
            ],
        ),
        (
            "zipcar",
            vec![
                f("pu_city", "City"),
                f("pu_zip", "Zip Code"),
                gu(datetime("pu")),
                gu(datetime("do")),
                g(
                    "Vehicle",
                    vec![
                        fi("car_class", "Vehicle Class", CAR_CLASSES),
                        fui("transmission", TRANSMISSIONS),
                        f("ac", "Air Conditioning"),
                    ],
                ),
            ],
        ),
    ];
    Domain::from_interfaces("Car Rental", interfaces)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_interfaces() {
        let d = domain();
        assert_eq!(d.schemas.len(), 20);
    }

    #[test]
    fn source_shape_tracks_table6() {
        let stats = domain().source_stats();
        // Paper: 10.4 leaves, 2.4 internal, depth 2.5, LQ 52.5%.
        assert!(
            (9.0..=13.0).contains(&stats.avg_leaves),
            "leaves {}",
            stats.avg_leaves
        );
        assert!(
            (2.0..=5.0).contains(&stats.avg_internal_nodes),
            "internal {}",
            stats.avg_internal_nodes
        );
        assert!(
            (2.3..=3.5).contains(&stats.avg_depth),
            "depth {}",
            stats.avg_depth
        );
        assert!(
            (0.40..=0.65).contains(&stats.avg_labeling_quality),
            "LQ {}",
            stats.avg_labeling_quality
        );
    }

    #[test]
    fn loyalty_fields_have_frequency_one() {
        let d = domain();
        for concept in ["hertz_gold", "avis_wizard"] {
            let cluster = d.mapping.by_concept(concept).unwrap();
            assert_eq!(cluster.members.len(), 1, "{concept}");
        }
    }

    #[test]
    fn integrated_shape_tracks_table6() {
        let p = domain().prepare();
        let partition = p.integrated.partition();
        // Paper: 34 leaves, 9 groups, 3 isolated, 3 root leaves, 15
        // internal, depth 5.
        let leaves = p.integrated.tree.leaves().count();
        assert!((28..=36).contains(&leaves), "leaves {leaves}");
        assert!(
            (7..=11).contains(&partition.groups.len()),
            "groups {} in\n{}",
            partition.groups.len(),
            p.integrated.tree.render()
        );
        assert!(
            (4..=6).contains(&p.integrated.tree.depth()),
            "depth {}",
            p.integrated.tree.depth()
        );
        let internal = p.integrated.tree.internal_nodes().count();
        assert!((10..=18).contains(&internal), "internal {internal}");
    }
}
