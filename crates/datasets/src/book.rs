//! The Book domain: 20 interfaces.
//!
//! Flat-ish interfaces (Table 6: 5.4 fields, 1.3 internal nodes, depth
//! 2.3, LQ 83.3%) with a few recurring groups. Notable corpus features:
//!
//! * the `Format`/`Binding` cluster with instance domains (`hardcover`,
//!   `paperback`, …) — §6.1.2's *label-as-value* scenario: one source
//!   labels the field `Hardcover`, which LI7 must discard;
//! * the format cluster is the integrated interface's single *isolated*
//!   field (Table 6: Iso. = 1), so the RAN-style election of §4.4 runs;
//! * price/year range pairs in two label families bridged at the
//!   equality/synonymy levels.

use crate::domain::Domain;
use crate::spec::{f, fi, fu, fui, g, gu, FieldSpec};

const FORMATS: &[&str] = &["Hardcover", "Paperback", "Audio"];
const CONDITIONS: &[&str] = &["New", "Used", "Like New"];
const LANGUAGES: &[&str] = &["English", "Spanish", "French", "German"];
const SUBJECTS: &[&str] = &["Fiction", "History", "Science", "Children"];

/// Build the Book domain.
pub fn domain() -> Domain {
    let interfaces: Vec<(&str, Vec<FieldSpec>)> = vec![
        (
            "abebooks",
            vec![
                g(
                    "Search by",
                    vec![
                        f("title", "Title"),
                        f("author", "Author"),
                        f("keyword", "Keywords"),
                        f("isbn", "ISBN"),
                    ],
                ),
                fi("format", "Binding", FORMATS),
                f("publisher", "Publisher"),
            ],
        ),
        (
            "alibris",
            vec![
                f("title", "Title"),
                f("author", "Author"),
                g(
                    "Price Range",
                    vec![
                        f("price_min", "Lowest Price"),
                        f("price_max", "Highest Price"),
                    ],
                ),
                fi("condition", "Condition", CONDITIONS),
            ],
        ),
        (
            "biblio",
            vec![
                f("title", "Book Title"),
                f("author", "Author Name"),
                f("isbn", "ISBN Number"),
                g(
                    "Collectible Attributes",
                    vec![f("signed", "Signed"), f("dustjacket", "Dust Jacket")],
                ),
            ],
        ),
        (
            "powells",
            vec![
                f("title", "Title"),
                f("author", "Author"),
                f("keyword", "Keyword"),
                fui("subject", SUBJECTS),
                g("Format", vec![fui("format", FORMATS)]),
            ],
        ),
        (
            "bookfinder",
            vec![
                f("title", "Title"),
                f("author", "Author"),
                f("isbn", "ISBN"),
                g(
                    "Publication Year",
                    vec![f("year_from", "From"), f("year_to", "To")],
                ),
                fi("format", "Format", FORMATS),
            ],
        ),
        (
            "half",
            vec![
                f("title", "Title"),
                f("author", "Author"),
                g(
                    "Price Range",
                    vec![f("price_min", "Min Price"), f("price_max", "Max Price")],
                ),
                fui("condition", CONDITIONS),
            ],
        ),
        (
            "strandbooks",
            vec![
                f("title", "Title"),
                f("author", "Author"),
                f("publisher", "Publisher"),
                g(
                    "Book Attributes",
                    vec![
                        fi("condition", "Condition", CONDITIONS),
                        fi("language", "Language", LANGUAGES),
                    ],
                ),
            ],
        ),
        (
            "bookdepot",
            vec![
                f("keyword", "Keywords"),
                fi("subject", "Topic", SUBJECTS),
                // One source labels the field by a *value* — the LI7 case.
                f("format", "Hardcover"),
                f("seller", "Bookseller"),
            ],
        ),
        (
            "textbookx",
            vec![
                f("title", "Title"),
                f("author", "Author"),
                f("isbn", "ISBN"),
                f("edition", "Edition"),
                fui("condition", CONDITIONS),
            ],
        ),
        (
            "bookcloseouts",
            vec![
                f("title", "Title"),
                f("author", "Author"),
                g(
                    "Price Range",
                    vec![
                        f("price_min", "Lowest Price"),
                        f("price_max", "Highest Price"),
                    ],
                ),
                f("shipping", "Free Shipping Only"),
            ],
        ),
        (
            "ecampus",
            vec![
                f("title", "Title"),
                f("author", "Author"),
                f("isbn", "ISBN"),
                fui("format", FORMATS),
                f("age", "Reader Age"),
            ],
        ),
        (
            "bookbyte",
            vec![
                gu(vec![
                    f("title", "Title"),
                    f("author", "Author"),
                    f("keyword", "Keywords"),
                ]),
                fi("condition", "Condition", CONDITIONS),
            ],
        ),
        (
            "thriftbooks",
            vec![
                f("title", "Title"),
                f("author", "Author"),
                fui("language", LANGUAGES),
                fi("subject", "Subject", SUBJECTS),
                f("age", "Age Range"),
            ],
        ),
        (
            "betterworld",
            vec![
                f("title", "Title"),
                f("author", "Author"),
                g(
                    "Publication Year",
                    vec![f("year_from", "Year from"), f("year_to", "Year to")],
                ),
                fi("format", "Format", FORMATS),
            ],
        ),
        (
            "biblioquest",
            vec![
                f("title", "Title"),
                f("author", "Author"),
                g(
                    "Collectible Attributes",
                    vec![
                        f("signed", "Signed by Author"),
                        f("dustjacket", "Dust Jacket"),
                    ],
                ),
                f("edition", "First Edition"),
            ],
        ),
        (
            "valorebooks",
            vec![
                f("title", "Title"),
                f("author", "Author"),
                f("isbn", "ISBN"),
                fu("publisher"),
                fui("condition", CONDITIONS),
            ],
        ),
        (
            "bookmooch",
            vec![
                g(
                    "Find Books",
                    vec![
                        f("title", "Title"),
                        f("author", "Author"),
                        f("keyword", "Keywords"),
                        f("isbn", "ISBN"),
                    ],
                ),
                fi("language", "Language", LANGUAGES),
            ],
        ),
        (
            "paperbackswap",
            vec![
                f("title", "Title"),
                f("author", "Author"),
                fui("format", FORMATS),
                f("shipping", "Shipping"),
            ],
        ),
        (
            "bookrenter",
            vec![
                f("title", "Title"),
                f("isbn", "ISBN"),
                fu("edition"),
                g(
                    "Price Range",
                    vec![f("price_min", "Min Price"), f("price_max", "Max Price")],
                ),
            ],
        ),
        (
            "campusbooks",
            vec![
                f("title", "Title"),
                f("author", "Author"),
                f("isbn", "ISBN"),
                g(
                    "Publication Year",
                    vec![f("year_from", "From"), f("year_to", "To")],
                ),
                f("publisher", "Publisher"),
            ],
        ),
    ];
    Domain::from_interfaces("Book", interfaces)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_interfaces() {
        let d = domain();
        assert_eq!(d.schemas.len(), 20);
        assert_eq!(
            d.mapping.len(),
            19,
            "{:?}",
            d.mapping
                .clusters
                .iter()
                .map(|c| c.concept.as_str())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn source_shape_tracks_table6() {
        let stats = domain().source_stats();
        // Paper: 5.4 leaves, 1.3 internal, depth 2.3, LQ 83.3%.
        assert!(
            (4.2..=6.5).contains(&stats.avg_leaves),
            "leaves {}",
            stats.avg_leaves
        );
        assert!(
            (0.5..=2.0).contains(&stats.avg_internal_nodes),
            "internal {}",
            stats.avg_internal_nodes
        );
        assert!(
            (2.0..=3.0).contains(&stats.avg_depth),
            "depth {}",
            stats.avg_depth
        );
        assert!(
            (0.72..=0.95).contains(&stats.avg_labeling_quality),
            "LQ {}",
            stats.avg_labeling_quality
        );
    }

    #[test]
    fn integrated_shape_tracks_table6() {
        let p = domain().prepare();
        let partition = p.integrated.partition();
        assert_eq!(p.integrated.tree.leaves().count(), 19);
        // Paper: 5 groups, 1 isolated, 8 root leaves, 6 internal, depth 3.
        assert!(
            (4..=6).contains(&partition.groups.len()),
            "groups {} in\n{}",
            partition.groups.len(),
            p.integrated.tree.render()
        );
        assert_eq!(partition.isolated.len(), 1, "{:?}", partition.isolated);
        assert!(
            (5..=9).contains(&partition.root.len()),
            "root {}",
            partition.root.len()
        );
    }

    #[test]
    fn format_is_the_isolated_cluster() {
        let p = domain().prepare();
        let partition = p.integrated.partition();
        let (_, cluster) = partition.isolated[0];
        assert_eq!(p.mapping.cluster(cluster).concept, "format");
    }
}
