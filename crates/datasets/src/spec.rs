//! Concept-annotated interface specs — the corpus authoring toolkit.
//!
//! A corpus interface is written as a nested [`FieldSpec`] tree in which
//! every field names its ground-truth *concept* (the cluster it belongs
//! to). The domain builder converts the specs into schema trees and a
//! [`qi_mapping::Mapping`] in one pass.
//!
//! ```
//! use qi_datasets::{f, fu, g, spec};
//!
//! let iface = vec![
//!     g("How many people are going?", vec![
//!         f("adult", "Adults"),
//!         f("child", "Children"),
//!         fu("infant"), // unlabeled field, still mapped
//!     ]),
//! ];
//! let (tree, concepts) = spec::build_interface("example", &iface).unwrap();
//! assert_eq!(tree.leaves().count(), 3);
//! assert_eq!(concepts.len(), 3);
//! ```

use qi_schema::{NodeId, SchemaError, SchemaTree, Widget};

/// A corpus field/group spec with ground-truth concept annotations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldSpec {
    /// A field mapped to one or more concepts (several = the coarse side
    /// of a 1:m matching, e.g. `Passengers`).
    Field {
        /// Ground-truth concept names (cluster keys).
        concepts: Vec<String>,
        /// The label shown on the interface, if any.
        label: Option<String>,
        /// Predefined instance domain.
        instances: Vec<String>,
    },
    /// A (super)group.
    Group {
        /// Group label, if any.
        label: Option<String>,
        /// Children in interface order.
        children: Vec<FieldSpec>,
    },
}

/// Labeled field.
pub fn f(concept: &str, label: &str) -> FieldSpec {
    FieldSpec::Field {
        concepts: vec![concept.to_string()],
        label: Some(label.to_string()),
        instances: Vec::new(),
    }
}

/// Labeled field with instances (selection list).
pub fn fi(concept: &str, label: &str, instances: &[&str]) -> FieldSpec {
    FieldSpec::Field {
        concepts: vec![concept.to_string()],
        label: Some(label.to_string()),
        instances: instances.iter().map(|s| s.to_string()).collect(),
    }
}

/// Unlabeled field.
pub fn fu(concept: &str) -> FieldSpec {
    FieldSpec::Field {
        concepts: vec![concept.to_string()],
        label: None,
        instances: Vec::new(),
    }
}

/// Unlabeled field with instances.
pub fn fui(concept: &str, instances: &[&str]) -> FieldSpec {
    FieldSpec::Field {
        concepts: vec![concept.to_string()],
        label: None,
        instances: instances.iter().map(|s| s.to_string()).collect(),
    }
}

/// Coarse field matching several concepts (1:m; expanded later), e.g.
/// `fm(&["adult", "senior", "child", "infant"], "Passengers")`.
pub fn fm(concepts: &[&str], label: &str) -> FieldSpec {
    FieldSpec::Field {
        concepts: concepts.iter().map(|s| s.to_string()).collect(),
        label: Some(label.to_string()),
        instances: Vec::new(),
    }
}

/// Labeled group.
pub fn g(label: &str, children: Vec<FieldSpec>) -> FieldSpec {
    FieldSpec::Group {
        label: Some(label.to_string()),
        children,
    }
}

/// Unlabeled group.
pub fn gu(children: Vec<FieldSpec>) -> FieldSpec {
    FieldSpec::Group {
        label: None,
        children,
    }
}

/// Per-leaf ground-truth annotation: `(created node, concept names)`.
pub type LeafConcepts = Vec<(NodeId, Vec<String>)>;

/// Build one schema tree from specs; returns the tree and, for every
/// created leaf, its `(node, concepts)` annotation.
pub fn build_interface(
    name: &str,
    specs: &[FieldSpec],
) -> Result<(SchemaTree, LeafConcepts), SchemaError> {
    let mut tree = SchemaTree::new(name);
    let mut concepts: Vec<(NodeId, Vec<String>)> = Vec::new();
    for spec in specs {
        add(&mut tree, NodeId::ROOT, spec, &mut concepts);
    }
    tree.validate()?;
    Ok((tree, concepts))
}

fn add(
    tree: &mut SchemaTree,
    parent: NodeId,
    spec: &FieldSpec,
    concepts: &mut Vec<(NodeId, Vec<String>)>,
) {
    match spec {
        FieldSpec::Field {
            concepts: cs,
            label,
            instances,
        } => {
            let widget = if instances.is_empty() {
                Widget::TextBox
            } else {
                Widget::SelectList
            };
            let id = tree.add_leaf_full(parent, label.as_deref(), widget, instances.clone());
            concepts.push((id, cs.clone()));
        }
        FieldSpec::Group { label, children } => {
            let id = tree.add_internal(parent, label.as_deref());
            for child in children {
                add(tree, id, child, concepts);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_construct_expected_specs() {
        assert!(matches!(f("a", "A"), FieldSpec::Field { ref label, .. } if label.is_some()));
        assert!(matches!(fu("a"), FieldSpec::Field { label: None, .. }));
        let m = fm(&["a", "b"], "AB");
        match m {
            FieldSpec::Field { concepts, .. } => assert_eq!(concepts.len(), 2),
            _ => unreachable!(),
        }
        let sel = fi("c", "C", &["x", "y"]);
        match sel {
            FieldSpec::Field { instances, .. } => assert_eq!(instances.len(), 2),
            _ => unreachable!(),
        }
    }

    #[test]
    fn build_interface_maps_all_leaves() {
        let specs = vec![g("G", vec![f("a", "A"), fu("b")]), fui("c", &["1", "2"])];
        let (tree, concepts) = build_interface("t", &specs).unwrap();
        assert_eq!(tree.leaves().count(), 3);
        assert_eq!(concepts.len(), 3);
        assert_eq!(concepts[0].1, vec!["a".to_string()]);
        // The select widget is inferred from instances.
        let select_leaf = tree.node(concepts[2].0);
        assert_eq!(select_leaf.instances().len(), 2);
    }

    #[test]
    fn nested_groups() {
        let specs = vec![g("Outer", vec![gu(vec![f("x", "X")])])];
        let (tree, _) = build_interface("t", &specs).unwrap();
        assert_eq!(tree.internal_nodes().count(), 2);
        assert_eq!(tree.depth(), 4);
    }
}
