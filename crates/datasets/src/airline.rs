//! The Airline domain: 20 interfaces.
//!
//! Faithful to the paper's published fragments:
//!
//! * the Table 2 group relation rows (`aa`, `airfareplanet`, `airtravel`,
//!   `british`, `economytravel`, `vacations` passenger labels);
//! * the Table 4 rows (`aa`, `airfareplanet`, `alldest`, `cheap`, `msn`
//!   service-preference labels);
//! * the Figure 2 1:m `Passengers` field on `airtravel`;
//! * the troublesome structures of §7: the frequency-1 `[Return From,
//!   Return To]` group whose internal node is unlabeled in its only
//!   source, unlabeled date selects everywhere (LQ ≈ 53%), and a fare
//!   subgroup whose only candidate label is claimed by its ancestor —
//!   which leaves an internal node with a nonempty candidate set
//!   unlabeled and makes the integrated interface *inconsistent*, as the
//!   paper reports for Airline.
//!
//! 24 concepts; the integrated interface targets Table 6's airline row
//! (24 leaves, 8 groups, ~0 isolated, 1 root leaf, ~13 internal nodes,
//! depth 5).

use crate::domain::Domain;
use crate::spec::{f, fi, fm, fui, g, gu, FieldSpec};

const MONTHS: &[&str] = &[
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];
const DAYS: &[&str] = &["1", "5", "10", "15", "20", "25", "28"];
const CABINS: &[&str] = &["Economy", "Business", "First"];
const SEATS: &[&str] = &["Window", "Aisle", "No Preference"];
const MEALS: &[&str] = &["Regular", "Vegetarian", "Kosher"];
const TRIPS: &[&str] = &["Round Trip", "One Way"];
const CURRENCIES: &[&str] = &["USD", "EUR", "GBP"];

/// The ubiquitous unlabeled month/day select pair.
fn date_pair(prefix: &str) -> Vec<FieldSpec> {
    vec![
        fui(&format!("{prefix}_month"), MONTHS),
        fui(&format!("{prefix}_day"), DAYS),
    ]
}

/// Build the Airline domain.
pub fn domain() -> Domain {
    let interfaces: Vec<(&str, Vec<FieldSpec>)> = vec![
        // ---- Table 2 / Table 4 interfaces --------------------------------
        (
            "aa",
            vec![
                g(
                    "Where and when do you want to travel?",
                    vec![
                        gu(vec![f("from", "From"), f("to", "To")]),
                        g(
                            "When do you want to travel?",
                            vec![gu(date_pair("dep")), gu(date_pair("ret"))],
                        ),
                    ],
                ),
                g(
                    "How many people are going?",
                    vec![f("adult", "Adults"), f("child", "Children")],
                ),
                g(
                    "Do you have any preferences?",
                    vec![f("stops", "NonStop"), f("airline", "Choose an Airline")],
                ),
            ],
        ),
        (
            "airfareplanet",
            vec![
                gu(vec![
                    f("from", "Departure City"),
                    f("to", "Destination City"),
                ]),
                g(
                    "Travel Dates",
                    vec![gu(date_pair("dep")), gu(date_pair("ret"))],
                ),
                gu(vec![
                    f("adult", "Adult"),
                    f("child", "Child"),
                    f("infant", "Infant"),
                ]),
                g(
                    "Airline Preferences",
                    vec![
                        f("stops", "Number of Connections"),
                        f("airline", "Airline Preference"),
                    ],
                ),
                f("promo", "Promotion Code"),
            ],
        ),
        (
            "airtravel",
            vec![
                gu(vec![f("from", "Leaving from"), f("to", "Going to")]),
                g(
                    "When do you want to travel?",
                    vec![gu(date_pair("dep")), gu(date_pair("ret"))],
                ),
                fm(&["adult", "senior", "child", "infant"], "Passengers"),
                gu(vec![
                    fi("trip_type", "Trip Type", TRIPS),
                    f("flex", "My dates are flexible"),
                ]),
            ],
        ),
        (
            "alldest",
            vec![
                gu(vec![f("from", "From"), f("to", "To")]),
                g(
                    "When do you want to travel?",
                    vec![gu(date_pair("dep")), gu(date_pair("ret"))],
                ),
                g(
                    "What are your service preferences?",
                    vec![
                        fi("class", "Class of Ticket", CABINS),
                        f("airline", "Preferred Airline"),
                    ],
                ),
                g(
                    "Fare",
                    vec![f("fare_min", "Lowest Fare"), f("fare_max", "Highest Fare")],
                ),
            ],
        ),
        (
            "british",
            vec![
                g(
                    "Where and when do you want to travel?",
                    vec![
                        gu(vec![f("from", "Departing from"), f("to", "Going to")]),
                        g(
                            "When do you want to travel?",
                            vec![gu(date_pair("dep")), gu(date_pair("ret"))],
                        ),
                    ],
                ),
                g(
                    "How many people are going?",
                    vec![
                        f("senior", "Seniors"),
                        f("adult", "Adults"),
                        f("child", "Children"),
                    ],
                ),
                g(
                    "Comfort",
                    vec![
                        fi("seat", "Seat Preference", SEATS),
                        fi("meal", "Meal Preference", MEALS),
                    ],
                ),
            ],
        ),
        (
            "cheap",
            vec![
                gu(vec![f("from", "Leaving from"), f("to", "Going to")]),
                g(
                    "Travel Dates",
                    vec![gu(date_pair("dep")), gu(date_pair("ret"))],
                ),
                g(
                    "Service Preferences",
                    vec![
                        f("stops", "Max. Number of Stops"),
                        f("airline", "Airline Preference"),
                    ],
                ),
                gu(vec![
                    fi("trip_type", "Type of Trip", TRIPS),
                    f("flex", "Flexible Dates"),
                ]),
            ],
        ),
        (
            "economytravel",
            vec![
                gu(vec![f("from", "Departure City"), f("to", "Arrival City")]),
                g(
                    "When do you want to travel?",
                    vec![gu(date_pair("dep")), gu(date_pair("ret"))],
                ),
                g(
                    "Passengers",
                    vec![
                        f("adult", "Adults"),
                        f("child", "Children"),
                        f("infant", "Infants"),
                    ],
                ),
                gu(vec![
                    f("fare_min", "Lowest Price"),
                    f("fare_max", "Highest Price"),
                ]),
            ],
        ),
        (
            "msn",
            vec![
                gu(vec![f("from", "From"), f("to", "To")]),
                g(
                    "Travel Dates",
                    vec![gu(date_pair("dep")), gu(date_pair("ret"))],
                ),
                g(
                    "Preferences",
                    vec![fi("class", "Class", CABINS), f("airline", "Airline")],
                ),
                f("promo", "Promo Code"),
            ],
        ),
        (
            "vacations",
            vec![
                g(
                    "Where do you want to go?",
                    vec![f("from", "Departing from"), f("to", "Going to")],
                ),
                g(
                    "How many people are going?",
                    vec![
                        f("senior", "Seniors"),
                        f("adult", "Adults"),
                        f("child", "Children"),
                    ],
                ),
                g(
                    "When do you want to travel?",
                    vec![gu(date_pair("dep")), gu(date_pair("ret"))],
                ),
            ],
        ),
        // ---- the rest of the corpus ---------------------------------------
        (
            "orbitz",
            vec![
                g(
                    "Where and when do you want to travel?",
                    vec![
                        gu(vec![f("from", "From"), f("to", "To")]),
                        g(
                            "When do you want to travel?",
                            vec![g("Leave", date_pair("dep")), g("Return", date_pair("ret"))],
                        ),
                    ],
                ),
                g(
                    "Travelers",
                    vec![
                        f("adult", "Adults (19-64)"),
                        f("senior", "Seniors (65+)"),
                        f("child", "Children (2-18)"),
                        f("infant", "Infants"),
                    ],
                ),
                g(
                    "Do you have any preferences?",
                    vec![
                        fi("class", "Class", CABINS),
                        f("airline", "Airline"),
                        f("stops", "Stops"),
                    ],
                ),
            ],
        ),
        (
            "expedia",
            vec![
                gu(vec![f("from", "Leaving from"), f("to", "Going to")]),
                g(
                    "When do you want to travel?",
                    vec![
                        g("Departing", date_pair("dep")),
                        g("Returning", date_pair("ret")),
                    ],
                ),
                g(
                    "Passengers",
                    vec![
                        f("adult", "Adults"),
                        f("child", "Children"),
                        f("infant", "Infants"),
                    ],
                ),
                gu(vec![
                    fi("trip_type", "Trip Type", TRIPS),
                    f("flex", "My dates are flexible"),
                ]),
                f("promo", "Promotion Code"),
            ],
        ),
        (
            "travelocity",
            vec![
                gu(vec![f("from", "From"), f("to", "To")]),
                g(
                    "Travel Dates",
                    vec![gu(date_pair("dep")), gu(date_pair("ret"))],
                ),
                g(
                    "Who is traveling?",
                    vec![
                        f("adult", "Adults"),
                        f("senior", "Seniors"),
                        f("child", "Children"),
                    ],
                ),
                g(
                    "Comfort",
                    vec![fi("seat", "Seating", SEATS), fi("meal", "Meal", MEALS)],
                ),
            ],
        ),
        (
            "united",
            vec![
                gu(vec![f("from", "Departure City"), f("to", "Arrival City")]),
                g(
                    "When do you want to travel?",
                    vec![gu(date_pair("dep")), gu(date_pair("ret"))],
                ),
                g(
                    "Passengers",
                    vec![f("adult", "Adults"), f("child", "Children")],
                ),
                g(
                    "Search Options",
                    vec![
                        fi("trip_type", "Trip Type", TRIPS),
                        f("flex", "Flexible Dates"),
                        f("nearby", "Include nearby airports"),
                    ],
                ),
                // The nested fare section: an unlabeled min/max pair inside
                // the labeled Fare group — the structure that later blocks
                // the integrated fare subgroup's only candidate label.
                g(
                    "Fare",
                    vec![
                        gu(vec![
                            f("fare_min", "Lowest Price"),
                            f("fare_max", "Highest Price"),
                        ]),
                        fi("currency", "Currency", CURRENCIES),
                    ],
                ),
            ],
        ),
        (
            "delta",
            vec![
                gu(vec![f("from", "From"), f("to", "To")]),
                g(
                    "When do you want to travel?",
                    vec![
                        g("Departure Date", date_pair("dep")),
                        g("Return Date", date_pair("ret")),
                    ],
                ),
                gu(vec![
                    f("adult", "Adults"),
                    f("child", "Children"),
                    f("infant", "Infants"),
                ]),
                g(
                    "Service Preferences",
                    vec![
                        fi("class", "Flight Class", CABINS),
                        f("airline", "Preferred Airline"),
                        f("stops", "Number of Stops"),
                    ],
                ),
            ],
        ),
        (
            "lufthansa",
            vec![
                g(
                    "Where do you want to go?",
                    vec![f("from", "Departing from"), f("to", "Going to")],
                ),
                g(
                    "Travel Dates",
                    vec![gu(date_pair("dep")), gu(date_pair("ret"))],
                ),
                g(
                    "Passengers",
                    vec![
                        f("adult", "Adults"),
                        f("senior", "Seniors"),
                        f("child", "Children"),
                    ],
                ),
                g(
                    "Comfort",
                    vec![
                        fi("seat", "Seat Preference", SEATS),
                        fi("meal", "Meal Preference", MEALS),
                    ],
                ),
                f("promo", "Promotion Code"),
            ],
        ),
        (
            "kayak",
            vec![
                gu(vec![f("from", "Departing from"), f("to", "Destination")]),
                g(
                    "When do you want to travel?",
                    vec![gu(date_pair("dep")), gu(date_pair("ret"))],
                ),
                fm(&["adult", "child"], "Travelers"),
                g(
                    "Preferences",
                    vec![fi("class", "Cabin", CABINS), f("stops", "Stops")],
                ),
                gu(vec![fi("trip_type", "Trip", TRIPS), f("flex", "Flexible")]),
            ],
        ),
        (
            "priceline",
            vec![
                gu(vec![
                    f("from", "Departure City"),
                    f("to", "Destination City"),
                ]),
                g(
                    "Travel Dates",
                    vec![gu(date_pair("dep")), gu(date_pair("ret"))],
                ),
                gu(vec![f("adult", "Adults"), f("child", "Children")]),
                g(
                    "Fare",
                    vec![
                        f("fare_min", "Lowest Fare"),
                        f("fare_max", "Highest Fare"),
                        fi("currency", "Currency", CURRENCIES),
                    ],
                ),
                f("promo", "Promo Code"),
            ],
        ),
        (
            "hotwire",
            vec![
                gu(vec![f("from", "Leaving from"), f("to", "Going to")]),
                g(
                    "When do you want to travel?",
                    vec![
                        g("Departing", date_pair("dep")),
                        g("Returning", date_pair("ret")),
                    ],
                ),
                g(
                    "Who is traveling?",
                    vec![
                        f("adult", "Adults"),
                        f("child", "Children"),
                        f("infant", "Infants"),
                    ],
                ),
                g(
                    "Service Preferences",
                    vec![
                        fi("class", "Class of Service", CABINS),
                        f("airline", "Airline"),
                    ],
                ),
            ],
        ),
        // The interface carrying the troublesome frequency-1 group
        // [Return From, Return To] (§7), in an unlabeled subgroup of its
        // itinerary section.
        (
            "flightnet",
            vec![
                g(
                    "Where and when do you want to travel?",
                    vec![
                        gu(vec![f("from", "From"), f("to", "To")]),
                        gu(vec![f("ret_from", "Return From"), f("ret_to", "Return To")]),
                        g(
                            "When do you want to travel?",
                            vec![gu(date_pair("dep")), gu(date_pair("ret"))],
                        ),
                    ],
                ),
                gu(vec![f("adult", "Adults"), f("child", "Children")]),
                g(
                    "Preferences",
                    vec![fi("class", "Class", CABINS), f("airline", "Airline")],
                ),
            ],
        ),
        (
            "jetblue",
            vec![
                gu(vec![f("from", "From"), f("to", "To")]),
                g(
                    "When do you want to travel?",
                    vec![gu(date_pair("dep")), gu(date_pair("ret"))],
                ),
                g(
                    "Passengers",
                    vec![
                        f("adult", "Adults"),
                        f("senior", "Seniors"),
                        f("child", "Children"),
                        f("infant", "Infants"),
                    ],
                ),
                g(
                    "Search Options",
                    vec![
                        fi("trip_type", "Trip Type", TRIPS),
                        f("flex", "Flexible Dates"),
                        f("nearby", "Include nearby airports"),
                    ],
                ),
            ],
        ),
    ];
    Domain::from_interfaces("Airline", interfaces)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_interfaces() {
        let d = domain();
        assert_eq!(d.schemas.len(), 20);
    }

    #[test]
    fn source_shape_tracks_table6() {
        let d = domain();
        let stats = d.source_stats();
        // Paper: 10.7 leaves, 5.1 internal nodes, depth 3.6, LQ 53%.
        assert!(
            (8.0..=13.0).contains(&stats.avg_leaves),
            "avg leaves {}",
            stats.avg_leaves
        );
        assert!(
            (3.0..=7.0).contains(&stats.avg_internal_nodes),
            "avg internal {}",
            stats.avg_internal_nodes
        );
        assert!(
            (3.0..=4.5).contains(&stats.avg_depth),
            "avg depth {}",
            stats.avg_depth
        );
        assert!(
            (0.40..=0.70).contains(&stats.avg_labeling_quality),
            "LQ {}",
            stats.avg_labeling_quality
        );
    }

    #[test]
    fn has_24_concepts() {
        let d = domain();
        assert_eq!(
            d.mapping.len(),
            24,
            "clusters: {:?}",
            d.mapping
                .clusters
                .iter()
                .map(|c| c.concept.as_str())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn passengers_is_one_to_many() {
        let d = domain();
        let airtravel = d
            .schemas
            .iter()
            .position(|s| s.name() == "airtravel")
            .unwrap();
        let adult = d.mapping.by_concept("adult").unwrap();
        let member = adult.member_of(airtravel).unwrap();
        assert_eq!(d.mapping.clusters_of(member).len(), 4);
    }

    #[test]
    fn integrated_shape_tracks_table6() {
        let p = domain().prepare();
        let partition = p.integrated.partition();
        let leaves = p.integrated.tree.leaves().count();
        assert_eq!(leaves, 24);
        assert!(
            (7..=10).contains(&partition.groups.len()),
            "groups: {} in\n{}",
            partition.groups.len(),
            p.integrated.tree.render()
        );
        assert!(
            partition.isolated.len() <= 1,
            "isolated: {:?}",
            partition.isolated
        );
        assert!(
            partition.root.len() <= 2,
            "root leaves: {}",
            partition.root.len()
        );
        let internal = p.integrated.tree.internal_nodes().count();
        assert!(
            (9..=15).contains(&internal),
            "internal nodes: {internal}\n{}",
            p.integrated.tree.render()
        );
        assert!(
            (4..=6).contains(&p.integrated.tree.depth()),
            "depth {}",
            p.integrated.tree.depth()
        );
    }
}
