//! The Job domain: 20 interfaces.
//!
//! The flattest domain of the corpus (Table 6: 4.6 fields, 1.1 internal
//! nodes, depth 2.1, LQ 80%): the integrated interface has a single group
//! (location) and ~15 fields directly under the root. Notable corpus
//! features, straight from the paper's running examples:
//!
//! * the `Job Category` cluster with labels {`Category`, `Job Category`,
//!   `Area of Work`, `Function`} (§3.2.1's most-descriptive example);
//! * the job-preference cluster whose labels {`Job Type`, `Type of Job`,
//!   `Job Preferences`, `Employment Type`} collide with the *other*
//!   `Job Type` field — the §4.2.3 homonym-repair scenario;
//! * `Area of Study` / `Field of Work` synonym labels (Definition 1).

use crate::domain::Domain;
use crate::spec::{f, fi, fu, fui, g, FieldSpec};

const JOB_TYPES: &[&str] = &["Permanent", "Contract", "Temporary"];
const JOB_PREFS: &[&str] = &["Full-Time", "Part-Time", "Internship"];
const SALARIES: &[&str] = &["30-50k", "50-80k", "80-120k", "120k+"];
const EDUCATION: &[&str] = &["High School", "Bachelor", "Master", "PhD"];

/// Build the Job domain.
pub fn domain() -> Domain {
    let interfaces: Vec<(&str, Vec<FieldSpec>)> = vec![
        (
            "monster",
            vec![
                f("keyword", "Keywords"),
                f("category", "Job Category"),
                fi("job_type", "Job Type", JOB_TYPES),
                g(
                    "Location",
                    vec![f("state", "State"), f("city", "City"), f("zip", "Zip Code")],
                ),
            ],
        ),
        (
            "hotjobs",
            vec![
                f("keyword", "Keywords"),
                f("category", "Category"),
                fi("job_pref", "Job Preferences", JOB_PREFS),
                f("city", "City"),
                fu("state"),
            ],
        ),
        (
            "careerbuilder",
            vec![
                f("keyword", "Keywords"),
                f("category", "Job Category"),
                fi("job_type", "Job Type", JOB_TYPES),
                fi("job_pref", "Employment Type", JOB_PREFS),
                fui("salary", SALARIES),
            ],
        ),
        (
            "dice",
            vec![
                f("keyword", "Keywords"),
                f("title", "Job Title"),
                fi("job_pref", "Type of Job", JOB_PREFS),
                g(
                    "Location",
                    vec![f("city", "City"), fu("zip"), f("radius", "Radius")],
                ),
            ],
        ),
        (
            "indeed",
            vec![
                f("keyword", "Keywords"),
                f("title", "Job Title"),
                f("company", "Company Name"),
                fu("city"),
                fi("salary", "Salary", SALARIES),
            ],
        ),
        (
            "usajobs",
            vec![
                f("keyword", "Keywords"),
                f("category", "Area of Work"),
                f("state", "State"),
                fui("education", EDUCATION),
            ],
        ),
        (
            "linkup",
            vec![
                f("keyword", "Keywords"),
                fu("company"),
                g("Location", vec![f("state", "State"), f("city", "City")]),
                f("date_posted", "Date Posted"),
            ],
        ),
        (
            "theladders",
            vec![
                f("title", "Job Title"),
                fui("salary", SALARIES),
                f("industry", "Industry"),
                f("level", "Experience Level"),
            ],
        ),
        (
            "jobsearch",
            vec![
                f("keyword", "Keywords"),
                f("category", "Function"),
                fui("job_type", JOB_TYPES),
                f("country", "Country"),
            ],
        ),
        (
            "snagajob",
            vec![
                f("keyword", "Keywords"),
                fi("job_pref", "Job Preferences", JOB_PREFS),
                fu("zip"),
                f("radius", "Distance"),
            ],
        ),
        (
            "efinancial",
            vec![
                f("keyword", "Keywords"),
                f("study", "Area of Study"),
                f("industry", "Sector"),
                fui("salary", SALARIES),
                f("experience", "Years of Experience"),
            ],
        ),
        (
            "healthjobs",
            vec![
                f("keyword", "Keywords"),
                f("study", "Field of Work"),
                f("state", "State"),
                f("experience", "Experience"),
            ],
        ),
        (
            "govtjobs",
            vec![
                f("keyword", "Keywords"),
                f("category", "Job Category"),
                f("level", "Grade Level"),
                fi("education", "Education", EDUCATION),
                f("date_posted", "Posted Within"),
            ],
        ),
        (
            "techcareers",
            vec![
                f("keyword", "Keywords"),
                f("title", "Job Title"),
                f("company", "Company Name"),
                fi("job_type", "Job Type", JOB_TYPES),
                f("relocate", "Willing to Relocate"),
            ],
        ),
        (
            "campusjobs",
            vec![
                f("keyword", "Keywords"),
                f("study", "Area of Study"),
                fi("job_pref", "Employment Type", JOB_PREFS),
                f("city", "City"),
            ],
        ),
        (
            "salesjobs",
            vec![
                f("keyword", "Keywords"),
                f("industry", "Industry"),
                fi("salary", "Salary Range", SALARIES),
                g(
                    "Location",
                    vec![
                        f("state", "State"),
                        f("city", "City"),
                        f("radius", "Radius"),
                    ],
                ),
            ],
        ),
        (
            "engineerjobs",
            vec![
                f("keyword", "Keywords"),
                f("title", "Job Title"),
                f("experience", "Years of Experience"),
                f("country", "Country"),
                f("relocate", "Willing to Relocate"),
            ],
        ),
        (
            "jobbank",
            vec![
                f("keyword", "Keywords"),
                f("category", "Category"),
                f("company", "Company"),
                f("date_posted", "Date Posted"),
            ],
        ),
        (
            "localwork",
            vec![
                f("keyword", "Keywords"),
                f("city", "City"),
                f("zip", "Zip Code"),
                f("radius", "Distance"),
                fui("job_pref", JOB_PREFS),
            ],
        ),
        (
            "summerjobs",
            vec![
                f("keyword", "Keywords"),
                f("title", "Job Title"),
                fi("job_pref", "Type of Job", JOB_PREFS),
                f("level", "Experience Level"),
            ],
        ),
    ];
    Domain::from_interfaces("Job", interfaces)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_interfaces() {
        let d = domain();
        assert_eq!(d.schemas.len(), 20);
        assert_eq!(
            d.mapping.len(),
            19,
            "{:?}",
            d.mapping
                .clusters
                .iter()
                .map(|c| c.concept.as_str())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn source_shape_tracks_table6() {
        let stats = domain().source_stats();
        // Paper: 4.6 leaves, 1.1 internal, depth 2.1, LQ 80%.
        assert!(
            (3.8..=5.5).contains(&stats.avg_leaves),
            "leaves {}",
            stats.avg_leaves
        );
        assert!(
            (0.1..=1.2).contains(&stats.avg_internal_nodes),
            "internal {}",
            stats.avg_internal_nodes
        );
        assert!(
            (2.0..=2.6).contains(&stats.avg_depth),
            "depth {}",
            stats.avg_depth
        );
        assert!(
            (0.72..=0.95).contains(&stats.avg_labeling_quality),
            "LQ {}",
            stats.avg_labeling_quality
        );
    }

    #[test]
    fn integrated_is_flat_with_one_location_group() {
        let p = domain().prepare();
        let partition = p.integrated.partition();
        assert_eq!(p.integrated.tree.leaves().count(), 19);
        // Paper: 1 group, 0 isolated, 15 root leaves, 2 internal nodes.
        assert_eq!(
            partition.groups.len(),
            1,
            "\n{}",
            p.integrated.tree.render()
        );
        assert_eq!(partition.isolated.len(), 0);
        assert!(
            (14..=16).contains(&partition.root.len()),
            "root {}",
            partition.root.len()
        );
        let location = &partition.groups[0];
        let concepts: Vec<&str> = location
            .clusters
            .iter()
            .map(|&c| p.mapping.cluster(c).concept.as_str())
            .collect();
        assert!(concepts.contains(&"state"));
        assert!(concepts.contains(&"city"));
    }

    #[test]
    fn category_cluster_has_paper_labels() {
        let d = domain();
        let category = d.mapping.by_concept("category").unwrap();
        let labels: Vec<String> = category
            .members
            .iter()
            .map(|m| d.schemas[m.schema].node(m.node).label_str().to_string())
            .collect();
        for expected in ["Category", "Job Category", "Area of Work", "Function"] {
            assert!(labels.iter().any(|l| l == expected), "missing {expected}");
        }
    }
}
