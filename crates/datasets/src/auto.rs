//! The Auto domain: 20 interfaces.
//!
//! Faithful to the paper's published fragments:
//!
//! * Table 3's location group rows (`100auto`, `Ads4autos`, `CarMarket`,
//!   `cars-1` with `State`/`City` vs `Zip Code`/`Distance` vs
//!   `Your Zip`/`Within`) — the four clusters end up as *one* group of
//!   the integrated interface, exactly as the paper states;
//! * Table 5's vertical-consistency setup: `Year Range` sources labeling
//!   (`Min`, `Max`) and (`From`, `To`), a `Car Information` source
//!   labeling (`Make`, `Model`, `Year`, `To Year`), and `Make/Model`
//!   sources with `Keywords` — reproducing Figure 6's integrated tree
//!   (`Car Information` over `Make/Model` and `Year Range`) via LI5;
//! * `Brand`/`Make` synonym variants for the make cluster.
//!
//! 18 concepts; Table 6's auto row targets: 18 leaves, 5 groups, 0
//! isolated, 4 root leaves, ~7 internal nodes, depth ~3–4; consistent;
//! FldAcc = IntAcc = 100%.

use crate::domain::Domain;
use crate::spec::{f, fi, fu, fui, g, gu, FieldSpec};

const CONDITIONS: &[&str] = &["New", "Used", "Certified Pre-Owned"];
const TRANSMISSIONS: &[&str] = &["Automatic", "Manual"];
const BODY_STYLES: &[&str] = &["Sedan", "SUV", "Coupe", "Truck"];
const FUELS: &[&str] = &["Gasoline", "Diesel", "Hybrid"];
const COLORS: &[&str] = &["Black", "White", "Silver", "Red", "Blue"];

/// Build the Auto domain.
pub fn domain() -> Domain {
    let interfaces: Vec<(&str, Vec<FieldSpec>)> = vec![
        // ---- Table 3 interfaces --------------------------------------------
        (
            "100auto",
            vec![
                f("make", "Make"),
                f("model", "Model"),
                g("Location", vec![f("state", "State"), f("city", "City")]),
                fui("condition", CONDITIONS),
            ],
        ),
        (
            "Ads4autos",
            vec![
                f("make", "Make"),
                f("model", "Model"),
                g(
                    "Search Area",
                    vec![f("zip", "Zip Code"), f("distance", "Distance")],
                ),
                f("mileage", "Max Mileage"),
            ],
        ),
        (
            "CarMarket",
            vec![
                f("make", "Brand"),
                f("model", "Model"),
                g("Location", vec![f("state", "State"), f("city", "City")]),
            ],
        ),
        (
            "cars-1",
            vec![
                f("make", "Make"),
                f("model", "Model"),
                gu(vec![f("zip", "Your Zip"), f("distance", "Within")]),
                fi("condition", "Condition", CONDITIONS),
            ],
        ),
        // ---- Table 5 / Figure 5–6 interfaces -------------------------------
        (
            "autoweb",
            vec![
                f("make", "Make"),
                f("model", "Model"),
                g(
                    "Year Range",
                    vec![f("year_from", "Min"), f("year_to", "Max")],
                ),
            ],
        ),
        (
            "carsdirect",
            vec![
                g(
                    "Car Information",
                    vec![
                        f("make", "Make"),
                        f("model", "Model"),
                        f("year_from", "Year"),
                        f("year_to", "To Year"),
                    ],
                ),
                fu("price_max"),
            ],
        ),
        (
            "usedcars",
            vec![
                f("make", "Make"),
                f("model", "Model"),
                g(
                    "Year Range",
                    vec![f("year_from", "From"), f("year_to", "To")],
                ),
                fu("mileage"),
            ],
        ),
        (
            "autotrader",
            vec![
                f("make", "Make"),
                f("model", "Model"),
                g(
                    "Location",
                    vec![
                        f("state", "State"),
                        f("city", "City"),
                        f("zip", "Zip Code"),
                        f("distance", "Distance"),
                    ],
                ),
                fi("condition", "Condition", CONDITIONS),
            ],
        ),
        (
            "edmunds",
            vec![
                g(
                    "Make/Model",
                    vec![
                        f("make", "Make"),
                        f("model", "Model"),
                        f("keyword", "Keywords"),
                    ],
                ),
                g(
                    "Price Range",
                    vec![
                        f("price_min", "Lowest Price"),
                        f("price_max", "Highest Price"),
                    ],
                ),
            ],
        ),
        (
            "megacars",
            vec![
                g(
                    "Car Information",
                    vec![
                        g(
                            "Make/Model",
                            vec![
                                f("make", "Make"),
                                f("model", "Model"),
                                f("keyword", "Keywords"),
                            ],
                        ),
                        g(
                            "Year Range",
                            vec![f("year_from", "From"), f("year_to", "To")],
                        ),
                    ],
                ),
                fui("condition", CONDITIONS),
            ],
        ),
        // ---- the rest of the corpus -----------------------------------------
        (
            "carmax",
            vec![
                f("make", "Make"),
                f("model", "Model"),
                g(
                    "Price Range",
                    vec![f("price_min", "Min Price"), f("price_max", "Max Price")],
                ),
                f("doors", "Doors"),
            ],
        ),
        (
            "vehix",
            vec![
                f("make", "Make"),
                f("model", "Model"),
                g(
                    "Features",
                    vec![
                        fi("color", "Color", COLORS),
                        fi("transmission", "Transmission", TRANSMISSIONS),
                        fi("body", "Body Style", BODY_STYLES),
                    ],
                ),
            ],
        ),
        (
            "cargurus",
            vec![
                f("make", "Make"),
                f("model", "Model"),
                fu("zip"),
                f("price_max", "Highest Price"),
                fi("body", "Body Style", BODY_STYLES),
                fui("condition", CONDITIONS),
            ],
        ),
        (
            "autolist",
            vec![
                f("make", "Make"),
                f("model", "Model"),
                g(
                    "Features",
                    vec![
                        fi("color", "Color", COLORS),
                        fui("transmission", TRANSMISSIONS),
                    ],
                ),
                fi("fuel", "Fuel Type", FUELS),
            ],
        ),
        (
            "carfinder",
            vec![
                f("make", "Make"),
                f("model", "Model"),
                f("keyword", "Keywords"),
                f("mileage", "Mileage"),
            ],
        ),
        (
            "autonation",
            vec![
                f("make", "Brand"),
                f("model", "Model"),
                g(
                    "Year Range",
                    vec![f("year_from", "From"), f("year_to", "To")],
                ),
                fui("fuel", FUELS),
            ],
        ),
        (
            "drivetime",
            vec![
                f("make", "Make"),
                f("model", "Model"),
                g(
                    "Price Range",
                    vec![
                        f("price_min", "Lowest Price"),
                        f("price_max", "Highest Price"),
                    ],
                ),
                fu("doors"),
            ],
        ),
        (
            "motors",
            vec![
                f("make", "Brand"),
                f("model", "Model"),
                g("Location", vec![f("state", "State"), f("city", "City")]),
                fui("condition", CONDITIONS),
            ],
        ),
        (
            "buyacar",
            vec![
                f("make", "Make"),
                f("model", "Model"),
                fu("year_from"),
                f("price_max", "Max Price"),
                fu("mileage"),
            ],
        ),
        (
            "wheels",
            vec![
                g(
                    "Car Information",
                    vec![
                        f("make", "Make"),
                        f("model", "Model"),
                        f("year_from", "Year"),
                        f("year_to", "To Year"),
                    ],
                ),
                fi("fuel", "Fuel Type", FUELS),
            ],
        ),
    ];
    Domain::from_interfaces("Auto", interfaces)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_interfaces_18_concepts() {
        let d = domain();
        assert_eq!(d.schemas.len(), 20);
        assert_eq!(
            d.mapping.len(),
            18,
            "{:?}",
            d.mapping
                .clusters
                .iter()
                .map(|c| c.concept.as_str())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn source_shape_tracks_table6() {
        let stats = domain().source_stats();
        // Paper: 5.1 leaves, 1.7 internal, depth 2.4, LQ 79.7%.
        assert!(
            (4.0..=6.5).contains(&stats.avg_leaves),
            "leaves {}",
            stats.avg_leaves
        );
        assert!(
            (0.8..=2.5).contains(&stats.avg_internal_nodes),
            "internal {}",
            stats.avg_internal_nodes
        );
        assert!(
            (2.0..=3.2).contains(&stats.avg_depth),
            "depth {}",
            stats.avg_depth
        );
        assert!(
            (0.70..=0.92).contains(&stats.avg_labeling_quality),
            "LQ {}",
            stats.avg_labeling_quality
        );
    }

    #[test]
    fn integrated_shape_tracks_table6() {
        let p = domain().prepare();
        let partition = p.integrated.partition();
        assert_eq!(p.integrated.tree.leaves().count(), 18);
        // Paper: 5 groups, 0 isolated, 4 root leaves, 7 internal, depth 3.
        assert!(
            (4..=6).contains(&partition.groups.len()),
            "groups {} in\n{}",
            partition.groups.len(),
            p.integrated.tree.render()
        );
        assert_eq!(partition.isolated.len(), 0, "{:?}", partition.isolated);
        assert!(
            (3..=6).contains(&partition.root.len()),
            "root {}",
            partition.root.len()
        );
        let internal = p.integrated.tree.internal_nodes().count();
        assert!((5..=8).contains(&internal), "internal {internal}");
    }

    /// Table 3: the location clusters form one integrated group.
    #[test]
    fn location_is_one_group_of_four() {
        let p = domain().prepare();
        let partition = p.integrated.partition();
        let location = partition
            .groups
            .iter()
            .find(|g| {
                let concepts: Vec<&str> = g
                    .clusters
                    .iter()
                    .map(|&c| p.mapping.cluster(c).concept.as_str())
                    .collect();
                concepts.contains(&"state") && concepts.contains(&"zip")
            })
            .expect("location group");
        assert_eq!(location.clusters.len(), 4);
    }

    /// Figure 6: Car Information sits above Make/Model and Year Range.
    #[test]
    fn car_information_hierarchy_exists() {
        let p = domain().prepare();
        let make = p.mapping.by_concept("make").unwrap().id;
        let year = p.mapping.by_concept("year_from").unwrap().id;
        let keyword = p.mapping.by_concept("keyword").unwrap().id;
        let make_leaf = p.integrated.leaf_of_cluster(make).unwrap();
        let year_leaf = p.integrated.leaf_of_cluster(year).unwrap();
        let keyword_leaf = p.integrated.leaf_of_cluster(keyword).unwrap();
        // Make & Keywords share the model group node.
        let model_node = p.integrated.tree.lca(&[make_leaf, keyword_leaf]);
        assert_ne!(model_node, qi_schema::NodeId::ROOT);
        // Make & Year share a deeper ancestor than the root (Car Info).
        let car_info = p.integrated.tree.lca(&[make_leaf, year_leaf]);
        assert_ne!(car_info, qi_schema::NodeId::ROOT);
        assert_ne!(car_info, model_node);
    }
}
