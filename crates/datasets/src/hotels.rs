//! The Hotels domain: 30 interfaces (the largest domain of the corpus).
//!
//! Table 6 targets: 7.6 fields, 2.4 internal nodes, depth 2.3, LQ 70.1%;
//! integrated: 26 leaves, 8 groups, 3 isolated, 2 root leaves, ~15
//! internal nodes. Notable corpus features:
//!
//! * the amenity preference groups reproduce Figure 8 (middle): specific
//!   labels (`Amenity Preferences`, `What are your service
//!   preferences?`) are absorbed by the hypernym `Do you have any
//!   preferences?` (LI3/LI4);
//! * a chain-specific frequency-1 loyalty field (`Wyndham ByRequest No`)
//!   that the acceptance panel flags as too specific (§7);
//! * an all-unlabeled "near" group (airport/landmark) whose internal node
//!   has no potential labels, costing IntAcc one node.

use crate::domain::Domain;
use crate::spec::{f, fi, fui, g, gu, FieldSpec};

const MONTHS: &[&str] = &[
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];
const DAYS: &[&str] = &["1", "5", "10", "15", "20", "25", "28"];
const STARS: &[&str] = &["2 stars", "3 stars", "4 stars", "5 stars"];
const ROOM_TYPES: &[&str] = &["Single", "Double", "Suite"];
const CHAINS: &[&str] = &["Hilton", "Marriott", "Wyndham", "Best Western"];

fn checkin() -> FieldSpec {
    g(
        "Check In",
        vec![fui("ci_month", MONTHS), fui("ci_day", DAYS)],
    )
}

fn checkout() -> FieldSpec {
    g(
        "Check Out",
        vec![fui("co_month", MONTHS), fui("co_day", DAYS)],
    )
}

/// Build the Hotels domain.
pub fn domain() -> Domain {
    let mut interfaces: Vec<(&str, Vec<FieldSpec>)> = vec![
        (
            "hilton",
            vec![
                g("Location", vec![f("city", "City"), f("state", "State")]),
                checkin(),
                checkout(),
                g(
                    "Occupancy",
                    vec![
                        f("rooms", "Rooms"),
                        f("adults", "Adults"),
                        f("children", "Children"),
                    ],
                ),
            ],
        ),
        (
            "marriott",
            vec![
                g(
                    "Location",
                    vec![
                        f("city", "City"),
                        f("state", "State"),
                        f("country", "Country"),
                    ],
                ),
                checkin(),
                checkout(),
                gu(vec![f("adults", "Adults"), f("children", "Children")]),
                f("discount_code", "Discount Code"),
            ],
        ),
        (
            "wyndham",
            vec![
                f("city", "City"),
                checkin(),
                checkout(),
                gu(vec![f("rooms", "Rooms"), f("adults", "Adults")]),
                f("wyndham_byrequest", "Wyndham ByRequest No"),
            ],
        ),
        (
            "expediahotels",
            vec![
                g(
                    "Where do you want to stay?",
                    vec![f("city", "City"), f("state", "State"), f("zip", "Zip Code")],
                ),
                checkin(),
                checkout(),
                g(
                    "Occupancy",
                    vec![
                        f("rooms", "Rooms"),
                        f("adults", "Adults"),
                        f("children", "Children"),
                    ],
                ),
                g(
                    "Price per Night",
                    vec![f("price_min", "Min Price"), f("price_max", "Max Price")],
                ),
            ],
        ),
        (
            "hotelscom",
            vec![
                f("city", "City"),
                checkin(),
                checkout(),
                g("Length of Stay", vec![f("nights", "Number of Nights")]),
                g(
                    "Do you have any preferences?",
                    vec![f("pool", "Pool"), f("pets", "Pets Allowed")],
                ),
            ],
        ),
        (
            "orbitzhotels",
            vec![
                g("Location", vec![f("city", "City"), f("state", "State")]),
                checkin(),
                checkout(),
                g(
                    "Amenity Preferences",
                    vec![f("pool", "Pool"), f("smoking", "Smoking Room")],
                ),
                fi("stars", "Star Rating", STARS),
            ],
        ),
        (
            "travelocityhotels",
            vec![
                f("city", "City"),
                checkin(),
                checkout(),
                g(
                    "What are your service preferences?",
                    vec![f("breakfast", "Free Breakfast"), f("pets", "Pets Allowed")],
                ),
                g("Hotel Class", vec![fui("stars", STARS)]),
            ],
        ),
        (
            "choicehotels",
            vec![
                g("Location", vec![f("city", "City"), f("state", "State")]),
                checkin(),
                checkout(),
                g("Hotel Chain", vec![fi("chain", "Chain", CHAINS)]),
                fui("room_type", ROOM_TYPES),
            ],
        ),
        (
            "bestwestern",
            vec![
                f("city", "City"),
                f("country", "Country"),
                checkin(),
                checkout(),
                gu(vec![f("adults", "Adults"), f("children", "Children")]),
                f("bw_corporate", "Corporate Rewards ID"),
            ],
        ),
        (
            "ichotels",
            vec![
                g(
                    "Where do you want to stay?",
                    vec![f("city", "City"), f("country", "Country")],
                ),
                checkin(),
                checkout(),
                g(
                    "Room",
                    vec![fi("room_type", "Room Type", ROOM_TYPES), f("beds", "Beds")],
                ),
            ],
        ),
    ];
    // The long tail of the corpus: smaller chains and aggregators with
    // recurring structures and label variants.
    interfaces.extend(vec![
        (
            "kayakhotels",
            vec![
                f("city", "City"),
                checkin(),
                checkout(),
                gu(vec![f("rooms", "Rooms"), f("adults", "Guests")]),
                g(
                    "Price per Night",
                    vec![f("price_min", "Price from"), f("price_max", "Price to")],
                ),
            ],
        ),
        (
            "pricelinehotels",
            vec![
                f("city", "City"),
                gu(vec![
                    f("near_airport", "Near Airport"),
                    f("landmark", "Near Landmark"),
                ]),
                checkin(),
                checkout(),
                fi("stars", "Hotel Class", STARS),
            ],
        ),
        (
            "hotwirehotels",
            vec![
                g("Location", vec![f("city", "City"), f("zip", "Zip Code")]),
                checkin(),
                checkout(),
                gu(vec![
                    f("rooms", "Rooms"),
                    f("adults", "Adults"),
                    f("children", "Children"),
                ]),
            ],
        ),
        (
            "lodgingcom",
            vec![
                f("city", "City"),
                checkin(),
                checkout(),
                g("Length of Stay", vec![f("nights", "Nights")]),
                g(
                    "Hotel Amenities",
                    vec![
                        f("breakfast", "Breakfast Included"),
                        f("smoking", "Smoking Room"),
                    ],
                ),
            ],
        ),
        (
            "venere",
            vec![
                f("city", "City"),
                f("country", "Country"),
                checkin(),
                checkout(),
                g(
                    "Room",
                    vec![
                        fi("room_type", "Type of Room", ROOM_TYPES),
                        f("beds", "Number of Beds"),
                    ],
                ),
            ],
        ),
        (
            "laterooms",
            vec![
                f("city", "City"),
                gu(vec![
                    f("near_airport", "Airport"),
                    f("landmark", "Landmark"),
                ]),
                checkin(),
                g("Length of Stay", vec![f("nights", "Number of Nights")]),
                fui("stars", STARS),
            ],
        ),
        (
            "hostelworld",
            vec![
                f("city", "City"),
                checkin(),
                checkout(),
                gu(vec![f("adults", "Adults"), f("children", "Children")]),
                g(
                    "Price per Night",
                    vec![f("price_min", "Min Price"), f("price_max", "Max Price")],
                ),
            ],
        ),
        (
            "ratestogo",
            vec![
                f("city", "City"),
                checkin(),
                checkout(),
                gu(vec![f("rooms", "Rooms"), f("adults", "Adults")]),
                f("discount_code", "Promotional Code"),
            ],
        ),
        (
            "asiatravel",
            vec![
                g("Location", vec![f("city", "City"), f("country", "Country")]),
                checkin(),
                checkout(),
                g(
                    "Occupancy",
                    vec![
                        f("rooms", "Rooms"),
                        f("adults", "Adults"),
                        f("children", "Children"),
                    ],
                ),
            ],
        ),
        (
            "hotelclub",
            vec![
                f("city", "City"),
                checkin(),
                checkout(),
                g("Hotel Chain", vec![fi("chain", "Hotel Chain", CHAINS)]),
                fi("stars", "Star Rating", STARS),
            ],
        ),
        (
            "octopustravel",
            vec![
                f("city", "City"),
                f("country", "Country"),
                checkin(),
                checkout(),
                gu(vec![f("adults", "Adults"), f("children", "Children")]),
            ],
        ),
        (
            "quikbook",
            vec![
                f("city", "City"),
                checkin(),
                checkout(),
                g(
                    "What are your service preferences?",
                    vec![f("pool", "Swimming Pool"), f("breakfast", "Free Breakfast")],
                ),
                fui("room_type", ROOM_TYPES),
            ],
        ),
        (
            "placestostay",
            vec![
                f("city", "City"),
                f("state", "State"),
                checkin(),
                checkout(),
                g("Length of Stay", vec![f("nights", "Nights")]),
            ],
        ),
        (
            "worldres",
            vec![
                f("city", "City"),
                checkin(),
                checkout(),
                g(
                    "Price per Night",
                    vec![
                        f("price_min", "Lowest Rate"),
                        f("price_max", "Highest Rate"),
                    ],
                ),
                fui("stars", STARS),
            ],
        ),
        (
            "all-hotels",
            vec![
                g(
                    "Location",
                    vec![f("city", "City"), f("state", "State"), f("zip", "Zip Code")],
                ),
                checkin(),
                checkout(),
                gu(vec![f("rooms", "Rooms"), f("adults", "Adults")]),
            ],
        ),
        (
            "hoteldiscount",
            vec![
                f("city", "City"),
                checkin(),
                checkout(),
                g(
                    "Hotel Amenities",
                    vec![
                        f("pool", "Pool"),
                        f("pets", "Pets Allowed"),
                        f("smoking", "Smoking Room"),
                        f("breakfast", "Free Breakfast"),
                    ],
                ),
            ],
        ),
        (
            "turbotrip",
            vec![
                f("city", "City"),
                checkin(),
                checkout(),
                g(
                    "Room",
                    vec![fi("room_type", "Room Type", ROOM_TYPES), f("beds", "Beds")],
                ),
                f("discount_code", "Discount Code"),
            ],
        ),
        (
            "tablethotels",
            vec![
                f("city", "City"),
                checkin(),
                checkout(),
                gu(vec![f("adults", "Adults"), f("children", "Children")]),
                fi("stars", "Star Rating", STARS),
            ],
        ),
        (
            "skoosh",
            vec![
                f("city", "City"),
                checkin(),
                checkout(),
                g("Length of Stay", vec![f("nights", "Number of Nights")]),
                gu(vec![f("rooms", "Rooms"), f("adults", "Guests")]),
            ],
        ),
        (
            "easytobook",
            vec![
                g("Location", vec![f("city", "City"), f("country", "Country")]),
                checkin(),
                checkout(),
                g(
                    "Occupancy",
                    vec![
                        f("rooms", "Rooms"),
                        f("adults", "Adults"),
                        f("children", "Children"),
                    ],
                ),
                fui("room_type", ROOM_TYPES),
            ],
        ),
    ]);
    Domain::from_interfaces("Hotels", interfaces)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirty_interfaces() {
        let d = domain();
        assert_eq!(d.schemas.len(), 30);
    }

    #[test]
    fn source_shape_tracks_table6() {
        let stats = domain().source_stats();
        // Paper: 7.6 leaves, 2.4 internal, depth 2.3, LQ 70.1%.
        assert!(
            (6.0..=9.0).contains(&stats.avg_leaves),
            "leaves {}",
            stats.avg_leaves
        );
        assert!(
            (2.0..=4.5).contains(&stats.avg_internal_nodes),
            "internal {}",
            stats.avg_internal_nodes
        );
        assert!(
            (2.2..=3.2).contains(&stats.avg_depth),
            "depth {}",
            stats.avg_depth
        );
        assert!(
            (0.55..=0.80).contains(&stats.avg_labeling_quality),
            "LQ {}",
            stats.avg_labeling_quality
        );
    }

    #[test]
    fn wyndham_field_is_frequency_one() {
        let d = domain();
        let cluster = d.mapping.by_concept("wyndham_byrequest").unwrap();
        assert_eq!(cluster.members.len(), 1);
    }

    #[test]
    fn integrated_shape_tracks_table6() {
        let p = domain().prepare();
        let partition = p.integrated.partition();
        // Paper: 26 leaves, 8 groups, 3 isolated, 2 root leaves.
        let leaves = p.integrated.tree.leaves().count();
        assert!((22..=28).contains(&leaves), "leaves {leaves}");
        assert!(
            (6..=10).contains(&partition.groups.len()),
            "groups {} in\n{}",
            partition.groups.len(),
            p.integrated.tree.render()
        );
        assert!(
            (2..=4).contains(&partition.isolated.len()),
            "isolated {:?}",
            partition.isolated
        );
        assert!(
            (2..=5).contains(&partition.root.len()),
            "root {}",
            partition.root.len()
        );
    }
}
