//! The evaluation corpus: seven Deep-Web domains modeled on the paper's
//! 150-interface dataset, plus a synthetic-domain generator.
//!
//! The original corpus (150 query interfaces scraped from the 2005 Web,
//! hosted on the authors' long-gone project page \[1\]) is not recoverable,
//! so this crate hand-authors a replacement with the same *shape*
//! (DESIGN.md §3): per-domain interface counts, average field / internal
//! node counts, tree depths and labeling quality (Table 6, columns 2–5),
//! and the label heterogeneity the algorithm is sensitive to — plural
//! families (`Adults`/`Adult`), word-order variants (`Job Type`/`Type of
//! Job`), synonym variants (`Make`/`Brand`), granularity mismatches
//! (`Passengers` → adults/seniors/children/infants), missing labels, and
//! the specific troublesome structures the paper reports (the airline's
//! unlabeled frequency-1 group, the Real Estate field that is unlabeled in
//! every source, the Hotels chain-specific discount fields).
//!
//! Every domain ships ground-truth clusters, so the pipeline is exercised
//! exactly as in the paper (which assumes matching is given, §2.1).
//!
//! ```
//! use qi_datasets::all_domains;
//!
//! let domains = all_domains();
//! assert_eq!(domains.len(), 7);
//! let total: usize = domains.iter().map(|d| d.schemas.len()).sum();
//! assert_eq!(total, 150);
//! ```

pub mod airline;
pub mod auto;
pub mod book;
pub mod car_rental;
pub mod domain;
pub mod drift;
pub mod hotels;
pub mod job;
pub mod real_estate;
pub mod spec;
pub mod synth;

pub use domain::{Domain, PreparedDomain};
pub use drift::{generate_drift_corpus, DriftConfig, DriftReport};
pub use spec::{f, fi, fm, fu, fui, g, gu, FieldSpec};
pub use synth::{generate_ladder, replicate_schemas, SynthConfig, SynthDomain};

/// All seven evaluation domains, in Table 6 order.
pub fn all_domains() -> Vec<Domain> {
    vec![
        airline::domain(),
        auto::domain(),
        book::domain(),
        job::domain(),
        real_estate::domain(),
        car_rental::domain(),
        hotels::domain(),
    ]
}

/// Look a domain up by (case-insensitive) name.
pub fn domain_by_name(name: &str) -> Option<Domain> {
    all_domains()
        .into_iter()
        .find(|d| d.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_150_interfaces() {
        let domains = all_domains();
        let counts: Vec<(String, usize)> = domains
            .iter()
            .map(|d| (d.name.clone(), d.schemas.len()))
            .collect();
        assert_eq!(
            counts,
            vec![
                ("Airline".to_string(), 20),
                ("Auto".to_string(), 20),
                ("Book".to_string(), 20),
                ("Job".to_string(), 20),
                ("Real Estate".to_string(), 20),
                ("Car Rental".to_string(), 20),
                ("Hotels".to_string(), 30),
            ]
        );
    }

    #[test]
    fn lookup_by_name() {
        assert!(domain_by_name("airline").is_some());
        assert!(domain_by_name("REAL ESTATE").is_some());
        assert!(domain_by_name("groceries").is_none());
    }

    #[test]
    fn every_domain_prepares_cleanly() {
        for domain in all_domains() {
            let prepared = domain.prepare();
            prepared
                .mapping
                .validate(&prepared.schemas)
                .unwrap_or_else(|e| panic!("{}: {e}", prepared.name));
            assert!(
                prepared.integrated.tree.leaves().count() > 0,
                "{}: empty integrated tree",
                prepared.name
            );
        }
    }
}
