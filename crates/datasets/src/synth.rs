//! Synthetic domain generator for scale benchmarks.
//!
//! Generates parameterized domains with the statistical properties the
//! naming algorithm is sensitive to: grouped concepts, label-variant
//! families that connect at the string / equality levels (shared variants
//! and word-order permutations), unlabeled fields, and partial coverage
//! per interface. Deterministic for a given seed.

use crate::domain::Domain;
use crate::spec::FieldSpec;
use qi_runtime::SplitMix64;
use qi_schema::{NodeId, SchemaTree};

/// Generator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthConfig {
    /// RNG seed (same seed ⇒ same domain).
    pub seed: u64,
    /// Number of interfaces.
    pub interfaces: usize,
    /// Number of concepts (clusters).
    pub concepts: usize,
    /// Number of semantic groups the concepts are partitioned into.
    pub groups: usize,
    /// Probability an interface carries a given concept.
    pub coverage: f64,
    /// Probability a carried field is unlabeled.
    pub unlabeled_prob: f64,
    /// Probability a group node carries a label.
    pub group_label_prob: f64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            seed: 42,
            interfaces: 20,
            concepts: 24,
            groups: 6,
            coverage: 0.6,
            unlabeled_prob: 0.2,
            group_label_prob: 0.7,
        }
    }
}

/// A generated domain plus its configuration.
#[derive(Debug, Clone)]
pub struct SynthDomain {
    /// Generator parameters.
    pub config: SynthConfig,
    /// The generated domain (schemas + ground-truth mapping).
    pub domain: Domain,
}

impl SynthDomain {
    /// Generate a domain.
    pub fn generate(config: SynthConfig) -> SynthDomain {
        let mut rng = SplitMix64::new(config.seed);
        let nouns = [
            "city", "state", "price", "date", "name", "type", "size", "color", "year", "code",
            "rating", "count", "area", "level", "brand", "style",
        ];
        // Label variant families per concept: a base two-word label, its
        // word-order permutation (equality level) and a prefixed variant.
        let variants: Vec<[String; 3]> = (0..config.concepts)
            .map(|i| {
                let noun = nouns[i % nouns.len()];
                let idx = i / nouns.len();
                let qualifier = format!("item{idx}");
                [
                    format!("{qualifier} {noun}"),
                    format!("{noun} of {qualifier}"),
                    format!("preferred {qualifier} {noun}"),
                ]
            })
            .collect();
        // Partition concepts into groups round-robin.
        let group_of = |concept: usize| concept % config.groups.max(1);
        let mut names: Vec<String> = Vec::with_capacity(config.interfaces);
        let mut specs_per_iface: Vec<Vec<FieldSpec>> = Vec::with_capacity(config.interfaces);
        for iface in 0..config.interfaces {
            names.push(format!("synth{iface:03}"));
            let mut groups: Vec<Vec<FieldSpec>> = vec![Vec::new(); config.groups.max(1)];
            for concept in 0..config.concepts {
                let carried = rng.gen_bool(config.coverage)
                    // Guarantee coverage: the first interfaces carry
                    // everything labeled with the base variant.
                    || iface < 2;
                if !carried {
                    continue;
                }
                let concept_key = format!("c{concept}");
                let spec = if iface >= 2 && rng.gen_bool(config.unlabeled_prob) {
                    FieldSpec::Field {
                        concepts: vec![concept_key],
                        label: None,
                        instances: Vec::new(),
                    }
                } else {
                    let variant = if iface < 2 { 0 } else { rng.gen_range(3) };
                    FieldSpec::Field {
                        concepts: vec![concept_key],
                        label: Some(variants[concept][variant].clone()),
                        instances: Vec::new(),
                    }
                };
                groups[group_of(concept)].push(spec);
            }
            // Every interface carries at least one field (an empty search
            // form is not a query interface).
            if groups.iter().all(Vec::is_empty) {
                groups[0].push(FieldSpec::Field {
                    concepts: vec!["c0".to_string()],
                    label: Some(variants[0][0].clone()),
                    instances: Vec::new(),
                });
            }
            let mut specs: Vec<FieldSpec> = Vec::new();
            for (gi, members) in groups.into_iter().enumerate() {
                match members.len() {
                    0 => {}
                    1 => specs.extend(members),
                    _ => {
                        let label = if rng.gen_bool(config.group_label_prob) {
                            Some(format!("section {gi} options"))
                        } else {
                            None
                        };
                        specs.push(FieldSpec::Group {
                            label,
                            children: members,
                        });
                    }
                }
            }
            specs_per_iface.push(specs);
        }
        let interfaces: Vec<(&str, Vec<FieldSpec>)> = names
            .iter()
            .map(String::as_str)
            .zip(specs_per_iface)
            .collect();
        SynthDomain {
            domain: Domain::from_interfaces("Synthetic", interfaces),
            config,
        }
    }
}

/// Noun pairs that are synonyms in the builtin lexicon — the raw material
/// for synonymy-level label variants.
const SYNONYM_NOUNS: &[(&str, &str)] = &[
    ("city", "town"),
    ("state", "province"),
    ("price", "cost"),
    ("brand", "make"),
    ("area", "region"),
    ("author", "writer"),
];

/// Generate a *ladder domain*: every group requires a specific rung of
/// Definition 2's relaxation ladder.
///
/// Each group has three concepts. Interface `lad-a` labels columns
/// {0, 1} with `partN <noun>`; interface `lad-b` labels columns {1, 2}
/// with either the word-order permutation `<noun> of partN`
/// (connectable at the *equality* level) or the synonym-noun variant
/// `partN <synonym>` (connectable only at the *synonymy* level);
/// interface `lad-c` carries all three columns unlabeled, so the merge
/// forms one three-field group while the group relation stays sparse.
/// At the string level no partition covers a full group, so the ladder
/// sweep shows 0 → equality-groups → all.
pub fn generate_ladder(equality_groups: usize, synonymy_groups: usize) -> Domain {
    let total = equality_groups + synonymy_groups;
    assert!(total > 0, "need at least one group");
    assert!(
        total <= SYNONYM_NOUNS.len(),
        "at most {} groups supported",
        SYNONYM_NOUNS.len()
    );
    let mut iface_a: Vec<FieldSpec> = Vec::new();
    let mut iface_b: Vec<FieldSpec> = Vec::new();
    let mut iface_c: Vec<FieldSpec> = Vec::new();
    #[allow(clippy::needless_range_loop)] // `group` is also interpolated into names
    for group in 0..total {
        let (noun, synonym) = SYNONYM_NOUNS[group];
        let concept = |col: usize| format!("g{group}c{col}");
        let variant_a = |qual: &str| format!("part{group} {qual} {noun}");
        let variant_b = |qual: &str| format!("{noun} {qual} of part{group}");
        let variant_c = |qual: &str| format!("part{group} {qual} {synonym}");
        let quals = ["alpha", "beta", "gamma"];
        // lad-a: columns {0, 1}, variant A.
        iface_a.push(FieldSpec::Group {
            label: Some(format!("section {group}")),
            children: (0..2)
                .map(|col| FieldSpec::Field {
                    concepts: vec![concept(col)],
                    label: Some(variant_a(quals[col])),
                    instances: Vec::new(),
                })
                .collect(),
        });
        // lad-b: columns {1, 2}, variant B (equality) or C (synonymy).
        let use_synonym = group >= equality_groups;
        iface_b.push(FieldSpec::Group {
            label: Some(format!("section {group}")),
            children: (1..3)
                .map(|col| FieldSpec::Field {
                    concepts: vec![concept(col)],
                    label: Some(if use_synonym {
                        variant_c(quals[col])
                    } else {
                        variant_b(quals[col])
                    }),
                    instances: Vec::new(),
                })
                .collect(),
        });
        // lad-c: all three columns, unlabeled (group-shape evidence only).
        iface_c.push(FieldSpec::Group {
            label: None,
            children: (0..3)
                .map(|col| FieldSpec::Field {
                    concepts: vec![concept(col)],
                    label: None,
                    instances: Vec::new(),
                })
                .collect(),
        });
    }
    Domain::from_interfaces(
        "Ladder",
        vec![("lad-a", iface_a), ("lad-b", iface_b), ("lad-c", iface_c)],
    )
}

/// Replicate a schema corpus `k`× with per-replica vocabulary renaming,
/// for matcher scaling benchmarks.
///
/// Replica 0 is the input corpus verbatim. In every later replica `r`
/// the digits of `r` are appended to each maximal alphanumeric token
/// run of every label (`Departure City` → `Departure7 City7` for
/// replica 7) and `__r{r}` to the schema name. The tokenizer treats a
/// maximal alphanumeric run as one token, so each renamed token
/// carries a replica-specific stem and misses the lexicon entirely:
/// under the default **non-fuzzy** matcher no label of one replica can
/// match a label of another (string, word-set, stem and synonym tiers
/// all fail on the digit suffix), and every stem / synset posting list
/// stays confined to one replica. Candidate-generation work in an
/// indexed matcher therefore scales *linearly* in `k` while the raw
/// pair space a naive matcher scans scales *quadratically* — the
/// regime the `cluster_scaled` benchmark stages measure. (A fuzzy
/// matcher with a low similarity floor may still connect long renamed
/// twins like `departure1`/`departure2`; scaling runs use the default
/// configuration.)
///
/// Renaming rewrites stop words and lexicon lemmas too, so the
/// *internal* cluster structure of a renamed replica is not byte-for-
/// byte the base clustering — synonym- and stopword-dependent matches
/// dissolve. All renamed replicas are isomorphic to each other, and
/// no cluster ever spans two replicas.
///
/// **Cache note.** The renaming also means the corpus *vocabulary*
/// grows linearly in `k`: every replica's surfaces miss the
/// per-occurrence lexicon caches once each, so renamed replicas are a
/// matcher-*throughput* baseline, not a cache ceiling. The cache
/// ceiling the drift benchmarks compare against is built from
/// *verbatim* clones — what naive corpus scaling would actually
/// produce, where every surface repeats and per-occurrence lookups hit
/// on all but the first copy (see `qi-bench`'s cloned-ceiling probe
/// and `tests/drift.rs`). This split is deliberate: perturbing the
/// suffixes here to make replicas cache-friendly would break the
/// disjoint-vocabulary property the scaling stages rely on.
pub fn replicate_schemas(schemas: &[SchemaTree], k: usize) -> Vec<SchemaTree> {
    let mut out: Vec<SchemaTree> = Vec::with_capacity(schemas.len() * k);
    out.extend_from_slice(schemas);
    for r in 1..k {
        let suffix = r.to_string();
        for tree in schemas {
            let mut replica = SchemaTree::new(&format!("{}__r{r}", tree.name()));
            copy_renamed(tree, NodeId::ROOT, &mut replica, NodeId::ROOT, &suffix);
            out.push(replica);
        }
    }
    out
}

/// Recursively copy `src`'s subtree under `dst_parent`, renaming labels.
fn copy_renamed(
    src: &SchemaTree,
    src_id: NodeId,
    dst: &mut SchemaTree,
    dst_parent: NodeId,
    suffix: &str,
) {
    for &child in src.children(src_id) {
        let node = src.node(child);
        let label = node.label.as_deref().map(|l| rename_tokens(l, suffix));
        let dst_id = if node.is_leaf() {
            dst.add_leaf(dst_parent, label.as_deref())
        } else {
            dst.add_internal(dst_parent, label.as_deref())
        };
        copy_renamed(src, child, dst, dst_id, suffix);
    }
}

/// Append `suffix` to every maximal alphanumeric run in `label`.
fn rename_tokens(label: &str, suffix: &str) -> String {
    let mut out = String::with_capacity(label.len() + suffix.len() * 4);
    let mut in_run = false;
    for ch in label.chars() {
        if in_run && !ch.is_ascii_alphanumeric() {
            out.push_str(suffix);
        }
        in_run = ch.is_ascii_alphanumeric();
        out.push(ch);
    }
    if in_run {
        out.push_str(suffix);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rename_tokens_suffixes_each_run() {
        assert_eq!(rename_tokens("Departure City", "7"), "Departure7 City7");
        assert_eq!(rename_tokens("Zip Code:", "12"), "Zip12 Code12:");
        assert_eq!(rename_tokens("", "3"), "");
    }

    #[test]
    fn replicated_corpus_clusters_independently() {
        let lex = qi_lexicon::Lexicon::builtin();
        let base = crate::airline::domain().schemas;
        let replicated = replicate_schemas(&base, 3);
        assert_eq!(replicated.len(), base.len() * 3);
        // Replica 0 is the base corpus verbatim.
        assert_eq!(&replicated[..base.len()], &base[..]);
        let base_map = qi_mapping::matcher::match_by_labels(&base, &lex);
        let rep_map = qi_mapping::matcher::match_by_labels(&replicated, &lex);
        // Renamed replicas are isomorphic to each other: the replicated
        // clustering is replica 0's verbatim clustering plus (k − 1)
        // independent copies of one renamed replica's clustering.
        let r1_map =
            qi_mapping::matcher::match_by_labels(&replicated[base.len()..2 * base.len()], &lex);
        assert_eq!(rep_map.len(), base_map.len() + 2 * r1_map.len());
        // Disjoint replica vocabularies: no cluster spans two replicas.
        for cluster in &rep_map.clusters {
            let replica = cluster.members[0].schema / base.len();
            assert!(
                cluster
                    .members
                    .iter()
                    .all(|m| m.schema / base.len() == replica),
                "cluster crosses replica boundary"
            );
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let a = SynthDomain::generate(SynthConfig::default());
        let b = SynthDomain::generate(SynthConfig::default());
        assert_eq!(a.domain.schemas, b.domain.schemas);
        assert_eq!(a.domain.mapping, b.domain.mapping);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SynthDomain::generate(SynthConfig::default());
        let b = SynthDomain::generate(SynthConfig {
            seed: 7,
            ..SynthConfig::default()
        });
        assert_ne!(a.domain.schemas, b.domain.schemas);
    }

    #[test]
    fn respects_counts_and_prepares() {
        let config = SynthConfig {
            interfaces: 10,
            concepts: 12,
            groups: 4,
            ..SynthConfig::default()
        };
        let synth = SynthDomain::generate(config);
        assert_eq!(synth.domain.schemas.len(), 10);
        assert_eq!(synth.domain.mapping.len(), 12);
        let prepared = synth.domain.prepare();
        prepared.mapping.validate(&prepared.schemas).unwrap();
        assert_eq!(prepared.integrated.tree.leaves().count(), 12);
    }

    #[test]
    fn ladder_domain_shape() {
        let domain = generate_ladder(2, 2);
        assert_eq!(domain.schemas.len(), 3);
        assert_eq!(domain.mapping.len(), 12); // 4 groups × 3 concepts
        let prepared = domain.prepare();
        let partition = prepared.integrated.partition();
        assert_eq!(partition.groups.len(), 4);
        for group in &partition.groups {
            assert_eq!(group.clusters.len(), 3);
        }
    }

    #[test]
    #[should_panic(expected = "at least one group")]
    fn ladder_rejects_empty() {
        let _ = generate_ladder(0, 0);
    }

    #[test]
    fn every_concept_is_labeled_somewhere() {
        let synth = SynthDomain::generate(SynthConfig::default());
        for cluster in &synth.domain.mapping.clusters {
            let labeled = cluster
                .members
                .iter()
                .any(|m| synth.domain.schemas[m.schema].node(m.node).label.is_some());
            assert!(labeled, "{} never labeled", cluster.concept);
        }
    }
}
