//! The Real Estate domain: 20 interfaces.
//!
//! Faithful to Figures 3 and 11 of the paper:
//!
//! * `C_groups` contains {State, City(, Zip)} and {Minimum, Maximum}
//!   price, `C_int` contains {Garage}, and `C_root` holds Property Type,
//!   Property Characteristics-style fields and Zone (Figure 3);
//! * the `Lease Rate` group has a field (`lease_from`) that is unlabeled in
//!   *every* source interface and carries no instances — "there is no way
//!   the algorithm can assign a label to it" — giving the paper's
//!   FldAcc = 96.4%;
//! * the internal-node labels `Location` / `Property Location` with
//!   nested coverage exercise LI1/LI3 (§5's running example);
//! * the `Features` super-structure is only *weakly* consistent with its
//!   descendant groups (two covering label families; the super label's
//!   source sits in the losing partition).

use crate::domain::Domain;
use crate::spec::{f, fi, fu, fui, g, gu, FieldSpec};

const PROPERTY_TYPES: &[&str] = &["House", "Condo", "Townhouse", "Land"];
const AVAILABILITY: &[&str] = &["Immediately", "Within 30 days", "Within 90 days"];

/// Build the Real Estate domain.
pub fn domain() -> Domain {
    let interfaces: Vec<(&str, Vec<FieldSpec>)> = vec![
        (
            "realtor",
            vec![
                fi("prop_type", "Property Type", PROPERTY_TYPES),
                g("Location", vec![f("state", "State"), f("city", "City")]),
                g(
                    "Price",
                    vec![f("price_min", "Minimum"), f("price_max", "Maximum")],
                ),
                g("Parking", vec![f("garage", "Garage")]),
            ],
        ),
        (
            "homes",
            vec![
                fi("prop_type", "Property Type", PROPERTY_TYPES),
                g(
                    "Property Location",
                    vec![f("state", "State"), f("city", "City"), f("zip", "Zip Code")],
                ),
                g(
                    "Price Range",
                    vec![f("price_min", "Min Price"), f("price_max", "Max Price")],
                ),
                gu(vec![f("beds", "Bedrooms"), f("baths", "Bathrooms")]),
            ],
        ),
        (
            "zillow",
            vec![
                fi("prop_type", "Home Type", PROPERTY_TYPES),
                g("Location", vec![f("state", "State"), f("city", "City")]),
                g(
                    "Price",
                    vec![f("price_min", "Minimum"), f("price_max", "Maximum")],
                ),
                f("year_built", "Year Built"),
            ],
        ),
        (
            "trulia",
            vec![
                fi("prop_type", "Property Type", PROPERTY_TYPES),
                f("city", "City"),
                fu("zip"),
                gu(vec![f("beds", "Beds"), f("baths", "Baths")]),
                f("lot_size", "Lot Size"),
            ],
        ),
        // Figure 11's Lease Rate group: the second field is unlabeled in
        // every source that has it, and has no instances.
        (
            "loopnet",
            vec![
                fi("prop_type", "Property Type", PROPERTY_TYPES),
                g("Lease Rate", vec![fu("lease_from"), f("lease_to", "To")]),
                f("agent", "Listing Agent"),
                f("zone", "Zone"),
            ],
        ),
        (
            "cityfeet",
            vec![
                f("city", "City"),
                g("Lease Rate", vec![fu("lease_from"), f("lease_to", "To")]),
                f("sqft_min", "Min Square Feet"),
                f("zone", "Zoning"),
            ],
        ),
        (
            "remax",
            vec![
                fi("prop_type", "Property Type", PROPERTY_TYPES),
                g("Location", vec![f("state", "State"), f("city", "City")]),
                g(
                    "Property Characteristics",
                    vec![
                        g(
                            "Rooms",
                            vec![f("beds", "Bedrooms"), f("baths", "Bathrooms")],
                        ),
                        g(
                            "Features",
                            vec![
                                f("pool", "Pool"),
                                f("fireplace", "Fireplace"),
                                f("basement", "Basement"),
                                f("stories", "Stories"),
                            ],
                        ),
                    ],
                ),
            ],
        ),
        (
            "coldwell",
            vec![
                fi("prop_type", "Property Type", PROPERTY_TYPES),
                f("city", "City"),
                g(
                    "Features",
                    vec![
                        f("pool", "Swimming Pool"),
                        f("fireplace", "Fireplaces"),
                        f("basement", "Finished Basement"),
                        f("stories", "Floors"),
                    ],
                ),
                fi("availability", "Property Availability", AVAILABILITY),
            ],
        ),
        (
            "century21",
            vec![
                fi("prop_type", "Property Type", PROPERTY_TYPES),
                g(
                    "Property Location",
                    vec![f("state", "State"), f("city", "City"), f("zip", "Zip Code")],
                ),
                gu(vec![f("beds", "Bedrooms"), f("baths", "Bathrooms")]),
                f("school_district", "School District"),
            ],
        ),
        (
            "apartments",
            vec![
                f("city", "City"),
                g(
                    "Price Range",
                    vec![f("price_min", "Min Price"), f("price_max", "Max Price")],
                ),
                g(
                    "Unit Range",
                    vec![f("units_min", "Min Units"), f("units_max", "Max Units")],
                ),
                fi("availability", "Availability", AVAILABILITY),
            ],
        ),
        (
            "landwatch",
            vec![
                fi("prop_type", "Property Type", PROPERTY_TYPES),
                f("state", "State"),
                g(
                    "Acreage",
                    vec![f("acreage_min", "Min Acres"), f("acreage_max", "Max Acres")],
                ),
                fu("lot_size"),
            ],
        ),
        (
            "landandfarm",
            vec![
                f("state", "State"),
                f("city", "City"),
                g(
                    "Acreage",
                    vec![f("acreage_min", "Acres from"), f("acreage_max", "Acres to")],
                ),
                f("keyword", "Keywords"),
            ],
        ),
        (
            "forsalebyowner",
            vec![
                fi("prop_type", "Property Type", PROPERTY_TYPES),
                f("zip", "Zip Code"),
                g(
                    "Price",
                    vec![f("price_min", "Minimum"), f("price_max", "Maximum")],
                ),
                gu(vec![f("beds", "Beds"), f("baths", "Baths")]),
                f("listing_date", "Listed Within"),
            ],
        ),
        (
            "harmonhomes",
            vec![
                fi("prop_type", "Property Type", PROPERTY_TYPES),
                f("city", "City"),
                g("Parking", vec![f("garage", "Garage Spaces")]),
                fu("year_built"),
            ],
        ),
        (
            "estately",
            vec![
                fi("prop_type", "Property Type", PROPERTY_TYPES),
                g("Location", vec![f("state", "State"), f("city", "City")]),
                g(
                    "Size",
                    vec![
                        f("sqft_min", "Min Square Feet"),
                        f("sqft_max", "Max Square Feet"),
                    ],
                ),
                f("keyword", "Keywords"),
            ],
        ),
        (
            "movoto",
            vec![
                fi("prop_type", "Property Type", PROPERTY_TYPES),
                f("city", "City"),
                g(
                    "Price Range",
                    vec![f("price_min", "Min Price"), f("price_max", "Max Price")],
                ),
                f("listing_date", "Days on Market"),
                fu("availability"),
            ],
        ),
        (
            "rentals",
            vec![
                f("city", "City"),
                f("zip", "Zip Code"),
                g(
                    "Unit Range",
                    vec![f("units_min", "Units from"), f("units_max", "Units to")],
                ),
                fui("availability", AVAILABILITY),
            ],
        ),
        (
            "propertyshark",
            vec![
                fi("prop_type", "Property Type", PROPERTY_TYPES),
                g(
                    "Property Location",
                    vec![
                        f("state", "State"),
                        f("city", "City"),
                        f("zip", "Zip Code"),
                        f("county", "County"),
                    ],
                ),
                f("agent", "Agent Name"),
                f("zone", "Zone"),
            ],
        ),
        (
            "oodle",
            vec![
                fi("prop_type", "Property Type", PROPERTY_TYPES),
                f("city", "City"),
                g(
                    "Size",
                    vec![
                        f("sqft_min", "Square Feet from"),
                        f("sqft_max", "Square Feet to"),
                    ],
                ),
                fu("school_district"),
            ],
        ),
        (
            "househunt",
            vec![
                fi("prop_type", "Property Type", PROPERTY_TYPES),
                g("Location", vec![f("state", "State"), f("city", "City")]),
                gu(vec![f("beds", "Bedrooms"), f("baths", "Bathrooms")]),
                g("Parking", vec![f("garage", "Garage")]),
                f("year_built", "Year Built"),
            ],
        ),
    ];
    Domain::from_interfaces("Real Estate", interfaces)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_interfaces() {
        let d = domain();
        assert_eq!(d.schemas.len(), 20);
    }

    #[test]
    fn source_shape_tracks_table6() {
        let stats = domain().source_stats();
        // Paper: 6.7 leaves, 2.4 internal, depth 2.7, LQ 79.1%.
        assert!(
            (4.5..=7.5).contains(&stats.avg_leaves),
            "leaves {}",
            stats.avg_leaves
        );
        assert!(
            (1.2..=3.0).contains(&stats.avg_internal_nodes),
            "internal {}",
            stats.avg_internal_nodes
        );
        assert!(
            (2.2..=3.3).contains(&stats.avg_depth),
            "depth {}",
            stats.avg_depth
        );
        assert!(
            (0.70..=0.95).contains(&stats.avg_labeling_quality),
            "LQ {}",
            stats.avg_labeling_quality
        );
    }

    #[test]
    fn lease_from_is_unlabeled_everywhere() {
        let d = domain();
        let lease_to = d.mapping.by_concept("lease_from").unwrap();
        assert!(!lease_to.members.is_empty());
        for member in &lease_to.members {
            assert!(d.schemas[member.schema].node(member.node).label.is_none());
            assert!(d.schemas[member.schema]
                .node(member.node)
                .instances()
                .is_empty());
        }
    }

    #[test]
    fn integrated_shape() {
        let p = domain().prepare();
        let partition = p.integrated.partition();
        // Paper: 28 leaves, 8 groups, 1 isolated, 7 root leaves.
        let leaves = p.integrated.tree.leaves().count();
        assert!((24..=30).contains(&leaves), "leaves {leaves}");
        assert!(
            (6..=9).contains(&partition.groups.len()),
            "groups {} in\n{}",
            partition.groups.len(),
            p.integrated.tree.render()
        );
        assert_eq!(partition.isolated.len(), 1, "{:?}", partition.isolated);
        let (_, garage) = partition.isolated[0];
        assert_eq!(p.mapping.cluster(garage).concept, "garage");
        assert!(
            (5..=9).contains(&partition.root.len()),
            "root {}",
            partition.root.len()
        );
    }
}
