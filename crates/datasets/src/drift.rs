//! Drift-aware synthetic corpus generator for honest scale benchmarks.
//!
//! [`crate::synth`]'s generators (and [`crate::replicate_schemas`])
//! scale a corpus by *cloning*: every replica repeats near-identical
//! strings, so scaled runs short-circuit on the string/word-set match
//! tiers and the interner and memo-caches absorb most of the work. Real
//! interface collections do not look like that — across sites in one
//! domain, labels are paraphrased (`price` / `cost`), inflected
//! (`rating` / `ratings`), abbreviated and misspelled, fields are
//! added and dropped per site, groups are reshuffled, and the
//! vocabulary keeps growing as domains are added (the hidden-web
//! surveys VIQI and the domain-specific integrator both document
//! exactly this variation).
//!
//! This module generates such corpora deterministically per
//! [`qi_runtime::SplitMix64`] seed:
//!
//! * **Label paraphrases** — synonym swaps walked from the
//!   [`Lexicon`]'s own synsets, plus occasional hypernym lifts from its
//!   ancestor DAG, so the synonym tier (and only the lexicon the
//!   matcher itself uses) decides which drifted labels reconnect.
//! * **Morphological variants** — inflections drawn from the stemmer's
//!   inverse families: irregular surfaces from the morphology
//!   exceptions ([`Lexicon::surface_variants`]) and suffix inflections
//!   filtered to stem back to the original, exercising the
//!   lemmatizer/stemmer instead of byte-equal strings.
//! * **Fuzzy drift** — single-edit typos and prefix abbreviations on
//!   long tokens, sized so the fuzzy tier's default 0.85 similarity
//!   floor is reachable; drift stages run the matcher with
//!   `fuzzy: true`.
//! * **Field add/drop** — per-interface coverage sampling plus novel
//!   site-specific fields that exist nowhere else in the domain.
//! * **Group reshuffles** — per-interface rotation of the
//!   concept→group assignment and of the group emission order.
//! * **Vocabulary growth** — a fraction of each domain's concepts use
//!   novel domain-local tokens, so corpus vocabulary grows with the
//!   domain count instead of repeating one fixed pool.
//!
//! [`DriftReport`] runs the matcher over a generated corpus and proves
//! the drift is real: nonzero synonym- and fuzzy-tier accepts, and a
//! morphology cache-hit rate bounded away from the ceiling the cloned
//! corpora sit at (the cloned replicas repeat each renamed surface
//! dozens of times, so per-occurrence lookups almost always hit).

use crate::domain::Domain;
use crate::spec::FieldSpec;
use qi_lexicon::Lexicon;
use qi_mapping::{match_by_labels_stats, MatchStats, MatcherConfig};
use qi_runtime::{CacheStats, SplitMix64};

/// Drift generator configuration. All probabilities are per carried
/// field (label drift) or per interface (structural drift).
#[derive(Debug, Clone, PartialEq)]
pub struct DriftConfig {
    /// RNG seed (same seed ⇒ byte-identical corpus).
    pub seed: u64,
    /// Number of domains to generate.
    pub domains: usize,
    /// Interfaces per domain.
    pub interfaces: usize,
    /// Concepts (ground-truth clusters) per domain, excluding novel
    /// site-specific fields.
    pub concepts: usize,
    /// Semantic groups per domain.
    pub groups: usize,
    /// Probability an interface carries a given concept (field drop).
    pub coverage: f64,
    /// Probability a carried field is unlabeled.
    pub unlabeled_prob: f64,
    /// Probability a group node carries a label.
    pub group_label_prob: f64,
    /// Probability a label's head noun is swapped for a lexicon synonym.
    pub paraphrase_prob: f64,
    /// Probability the head noun is lifted to a lexicon hypernym.
    pub hypernym_prob: f64,
    /// Probability a token is replaced by a morphological variant that
    /// stems back to it.
    pub morph_prob: f64,
    /// Probability the label's longest token gets a typo or prefix
    /// abbreviation (the fuzzy tier's diet).
    pub fuzzy_prob: f64,
    /// Probability the label is emitted word-order permuted
    /// (`noun of qualifier`).
    pub reorder_prob: f64,
    /// Expected number of novel site-specific fields added per
    /// interface (field add).
    pub added_fields: f64,
    /// Probability an interface reshuffles its concept→group
    /// assignment and group order.
    pub reshuffle_prob: f64,
    /// Fraction of concepts drawing their head from novel domain-local
    /// vocabulary instead of the shared lexicon pool.
    pub vocab_growth: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            seed: 0xD81F,
            domains: 7,
            interfaces: 20,
            concepts: 24,
            groups: 6,
            coverage: 0.7,
            unlabeled_prob: 0.08,
            group_label_prob: 0.6,
            paraphrase_prob: 0.25,
            hypernym_prob: 0.04,
            morph_prob: 0.2,
            fuzzy_prob: 0.12,
            reorder_prob: 0.2,
            added_fields: 1.0,
            reshuffle_prob: 0.3,
            vocab_growth: 0.3,
        }
    }
}

/// Qualifier pool for two-word base labels. Plain adjectives/modifiers:
/// no stop words (they would vanish in normalization) and no lexicon
/// nouns (heads come from there).
const QUALIFIERS: &[&str] = &[
    "primary",
    "preferred",
    "exact",
    "local",
    "total",
    "current",
    "minimum",
    "maximum",
    "nearby",
    "desired",
    "starting",
    "ending",
];

/// Generate a drift corpus: `config.domains` independent domains, each
/// with ground-truth clusters by construction. Deterministic for a
/// given config; each domain's RNG stream is derived from the seed and
/// the domain index alone, so the corpus is stable under re-slicing.
pub fn generate_drift_corpus(config: &DriftConfig, lexicon: &Lexicon) -> Vec<Domain> {
    let heads = head_pool(lexicon);
    (0..config.domains)
        .map(|d| generate_drift_domain(config, d, &heads, lexicon))
        .collect()
}

/// The shared head-noun pool: single-token lowercase lexicon lemmas in
/// deterministic build order, stop words excluded.
fn head_pool(lexicon: &Lexicon) -> Vec<String> {
    lexicon
        .lemmas_in_build_order()
        .into_iter()
        .filter(|lemma| {
            lemma.len() >= 3
                && lemma.bytes().all(|b| b.is_ascii_lowercase())
                && !qi_text::is_stop_word(lemma)
        })
        .collect()
}

/// Generate one domain of the drift corpus.
fn generate_drift_domain(
    config: &DriftConfig,
    d: usize,
    heads: &[String],
    lexicon: &Lexicon,
) -> Domain {
    let mut rng = SplitMix64::new(
        config
            .seed
            .wrapping_add((d as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
    );
    let groups = config.groups.max(1);

    // Concept vocabulary: distinct heads per concept (a seeded
    // without-replacement draw over the shared pool), with a
    // `vocab_growth` fraction replaced by novel domain-local tokens —
    // digit-bearing so the stemmer passes them through verbatim and a
    // single-edit typo stays a single-edit stem difference.
    let mut order: Vec<usize> = (0..heads.len()).collect();
    for i in (1..order.len()).rev() {
        order.swap(i, rng.gen_range(i + 1));
    }
    let concepts: Vec<(String, String)> = (0..config.concepts)
        .map(|c| {
            let qualifier = QUALIFIERS[rng.gen_range(QUALIFIERS.len())].to_string();
            let head = if rng.gen_bool(config.vocab_growth) || heads.is_empty() {
                format!("term{d}n{c}data")
            } else {
                heads[order[c % order.len()]].clone()
            };
            (qualifier, head)
        })
        .collect();

    let mut names: Vec<String> = Vec::with_capacity(config.interfaces);
    let mut specs_per_iface: Vec<Vec<FieldSpec>> = Vec::with_capacity(config.interfaces);
    for iface in 0..config.interfaces {
        names.push(format!("d{d}s{iface:03}"));
        // Group reshuffle: rotate the concept→group assignment and the
        // group emission order by a per-interface offset.
        let offset = if iface >= 2 && rng.gen_bool(config.reshuffle_prob) {
            rng.gen_range(groups)
        } else {
            0
        };
        let mut group_members: Vec<Vec<FieldSpec>> = vec![Vec::new(); groups];
        for (c, (qualifier, head)) in concepts.iter().enumerate() {
            // The first two interfaces carry every concept with its
            // base label: ground truth stays connected and every
            // concept is labeled somewhere.
            let carried = iface < 2 || rng.gen_bool(config.coverage);
            if !carried {
                continue;
            }
            let label = if iface < 2 {
                Some(format!("{qualifier} {head}"))
            } else if rng.gen_bool(config.unlabeled_prob) {
                None
            } else {
                Some(drift_label(qualifier, head, config, lexicon, &mut rng))
            };
            group_members[(c + offset) % groups].push(FieldSpec::Field {
                concepts: vec![format!("c{c}")],
                label,
                instances: Vec::new(),
            });
        }
        // Field add: novel site-specific fields nothing else shares.
        let mut added = config.added_fields;
        let mut k = 0;
        while added >= 1.0 || (added > 0.0 && rng.gen_bool(added)) {
            added -= 1.0;
            group_members[rng.gen_range(groups)].push(FieldSpec::Field {
                concepts: vec![format!("x{iface}n{k}")],
                label: Some(format!("site{d}q{iface}k{k} option")),
                instances: Vec::new(),
            });
            k += 1;
        }
        if group_members.iter().all(Vec::is_empty) {
            let (qualifier, head) = &concepts[0];
            group_members[0].push(FieldSpec::Field {
                concepts: vec!["c0".to_string()],
                label: Some(format!("{qualifier} {head}")),
                instances: Vec::new(),
            });
        }
        let mut specs: Vec<FieldSpec> = Vec::new();
        for gi in 0..groups {
            let members = std::mem::take(&mut group_members[(gi + offset) % groups]);
            match members.len() {
                0 => {}
                1 => specs.extend(members),
                _ => {
                    let label = if rng.gen_bool(config.group_label_prob) {
                        Some(format!("group {gi} options"))
                    } else {
                        None
                    };
                    specs.push(FieldSpec::Group {
                        label,
                        children: members,
                    });
                }
            }
        }
        specs_per_iface.push(specs);
    }
    let interfaces: Vec<(&str, Vec<FieldSpec>)> = names
        .iter()
        .map(String::as_str)
        .zip(specs_per_iface)
        .collect();
    Domain::from_interfaces(&format!("drift{d}"), interfaces)
}

/// Emit one drifted surface form of the `qualifier head` base label.
fn drift_label(
    qualifier: &str,
    head: &str,
    config: &DriftConfig,
    lexicon: &Lexicon,
    rng: &mut SplitMix64,
) -> String {
    let mut qualifier = qualifier.to_string();
    let mut head = head.to_string();
    // Paraphrase: swap the head for one of its lexicon synonyms; or,
    // rarely, lift it to a hypernym (a near-miss the matcher must NOT
    // reconnect — its synonym tier is not hypernymy).
    if rng.gen_bool(config.paraphrase_prob) {
        let synonyms = lexicon.synonyms(&head);
        if !synonyms.is_empty() {
            head = synonyms[rng.gen_range(synonyms.len())].clone();
        }
    } else if rng.gen_bool(config.hypernym_prob) {
        let ancestors = lexicon.hypernym_lemmas(&head);
        if !ancestors.is_empty() {
            head = ancestors[rng.gen_range(ancestors.len())].clone();
        }
    }
    // Morphology: inflect one of the tokens within its stem family.
    if rng.gen_bool(config.morph_prob) {
        if rng.gen_bool(0.5) {
            head = morph_variant(&head, lexicon, rng);
        } else {
            qualifier = morph_variant(&qualifier, lexicon, rng);
        }
    }
    // Fuzzy drift: typo or abbreviation on the longest token.
    if rng.gen_bool(config.fuzzy_prob) {
        if head.len() >= qualifier.len() {
            head = fuzz_token(&head, rng);
        } else {
            qualifier = fuzz_token(&qualifier, rng);
        }
    }
    if rng.gen_bool(config.reorder_prob) {
        format!("{head} of {qualifier}")
    } else {
        format!("{qualifier} {head}")
    }
}

/// A morphological variant of `token` that stems back to it: an
/// irregular surface from the morphology exceptions, or a suffix
/// inflection the Porter stemmer folds back onto the original stem.
/// Falls back to the token unchanged when no variant survives the
/// stem-preservation filter.
fn morph_variant(token: &str, lexicon: &Lexicon, rng: &mut SplitMix64) -> String {
    let stem = qi_text::stem(token);
    let mut candidates: Vec<String> = lexicon.surface_variants(token);
    for suffix in ["s", "es", "ing", "ed"] {
        let inflected = if matches!(suffix, "ing" | "ed") && token.ends_with('e') {
            format!("{}{suffix}", &token[..token.len() - 1])
        } else {
            format!("{token}{suffix}")
        };
        if qi_text::stem(&inflected) == stem && !candidates.contains(&inflected) {
            candidates.push(inflected);
        }
    }
    if candidates.is_empty() {
        token.to_string()
    } else {
        candidates[rng.gen_range(candidates.len())].clone()
    }
}

/// Fuzzy-tier drift: on tokens of ≥ 7 characters, a single-character
/// deletion or substitution (similarity ≥ 6/7 ≈ 0.857, above the
/// default 0.85 floor) or a ≥ 3-character prefix abbreviation. Shorter
/// tokens are returned unchanged — a one-edit typo on them would fall
/// below the floor and just produce noise the matcher is *supposed* to
/// reject.
fn fuzz_token(token: &str, rng: &mut SplitMix64) -> String {
    if token.len() < 7 || !token.is_ascii() {
        return token.to_string();
    }
    let mut bytes = token.as_bytes().to_vec();
    match rng.gen_range(3) {
        0 => {
            // Delete one interior character.
            let pos = 1 + rng.gen_range(bytes.len() - 2);
            bytes.remove(pos);
        }
        1 => {
            // Substitute one interior character with a letter that
            // differs from the original.
            let pos = 1 + rng.gen_range(bytes.len() - 2);
            let replacement = b'a'
                + ((bytes[pos].wrapping_sub(b'a') as usize + 1 + rng.gen_range(24)) % 26) as u8;
            bytes[pos] = replacement;
        }
        _ => {
            // Prefix abbreviation: keep the first 3–4 characters.
            bytes.truncate(3 + rng.gen_range(2));
        }
    }
    String::from_utf8(bytes).expect("ascii edits stay utf8")
}

/// Proof that a generated corpus exercises the matcher's expensive
/// paths: the matcher is run (per domain, ground truth ignored) and the
/// per-tier accept counters plus the lexicon cache delta are
/// aggregated. [`DriftReport::check`] turns the claim into an error
/// when the corpus degenerated into the cloned regime.
#[derive(Debug, Clone)]
pub struct DriftReport {
    /// Domains matched.
    pub domains: usize,
    /// Interfaces across all domains.
    pub interfaces: u64,
    /// Distinct raw label strings across the corpus.
    pub distinct_labels: u64,
    /// Matcher counters aggregated over all domains.
    pub stats: MatchStats,
    /// Morphology (`base_form`) cache activity attributed to this run.
    /// Only the morphology cache is probed once per *token occurrence*
    /// (during `LabelText` construction); the resolve/synonymy caches
    /// are probed per scored candidate pair, which floods them with
    /// repeat lookups of already-cached tokens and pins their hit rate
    /// near 1.0 regardless of corpus shape. The morphology hit rate is
    /// therefore the one lexicon signal that tracks vocabulary variety.
    pub morph_cache: CacheStats,
}

impl DriftReport {
    /// Match every domain independently and aggregate the evidence.
    /// Run with `fuzzy: true` to exercise the fuzzy tier — the default
    /// matcher keeps it off.
    pub fn compute(domains: &[Domain], lexicon: &Lexicon, config: MatcherConfig) -> DriftReport {
        let cache_before = lexicon.morph_cache_stats();
        let mut stats = MatchStats::default();
        let mut interfaces = 0u64;
        let mut labels: std::collections::HashSet<&str> = std::collections::HashSet::new();
        for domain in domains {
            interfaces += domain.schemas.len() as u64;
            for schema in &domain.schemas {
                for node in schema.nodes() {
                    if let Some(label) = node.label.as_deref() {
                        labels.insert(label);
                    }
                }
            }
            let (_, domain_stats) = match_by_labels_stats(&domain.schemas, lexicon, config);
            stats.absorb(&domain_stats);
        }
        DriftReport {
            domains: domains.len(),
            interfaces,
            distinct_labels: labels.len() as u64,
            stats,
            morph_cache: lexicon.morph_cache_stats().delta_since(&cache_before),
        }
    }

    /// Hit rate of the morphology-cache activity attributed to the run.
    pub fn cache_hit_rate(&self) -> f64 {
        self.morph_cache.hit_rate()
    }

    /// Err when the corpus fails to exercise the drift paths: zero
    /// synonym-tier accepts, zero fuzzy-tier accepts (under a fuzzy
    /// config), or a lexicon cache-hit rate at or above
    /// `max_cache_hit_rate` (the cloned-corpus ceiling the generator
    /// exists to escape).
    pub fn check(&self, fuzzy: bool, max_cache_hit_rate: f64) -> Result<(), String> {
        if self.stats.accepted_synonym == 0 {
            return Err("drift corpus produced no synonym-tier accepts".to_string());
        }
        if fuzzy && self.stats.accepted_fuzzy == 0 {
            return Err("drift corpus produced no fuzzy-tier accepts".to_string());
        }
        let rate = self.cache_hit_rate();
        if rate >= max_cache_hit_rate {
            return Err(format!(
                "morphology cache-hit rate {rate:.4} not below the cloned-corpus ceiling \
                 {max_cache_hit_rate:.4}"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> DriftConfig {
        DriftConfig {
            domains: 3,
            interfaces: 8,
            concepts: 12,
            ..DriftConfig::default()
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let lex = Lexicon::builtin();
        let a = generate_drift_corpus(&small(), &lex);
        let b = generate_drift_corpus(&small(), &lex);
        assert_eq!(a.len(), b.len());
        for (da, db) in a.iter().zip(&b) {
            assert_eq!(da.schemas, db.schemas);
            assert_eq!(da.mapping, db.mapping);
        }
    }

    #[test]
    fn domain_stream_is_stable_under_reslicing() {
        // Domain d of a 3-domain corpus equals domain d of a 5-domain
        // corpus: per-domain RNG streams depend only on (seed, index).
        let lex = Lexicon::builtin();
        let three = generate_drift_corpus(&small(), &lex);
        let five = generate_drift_corpus(
            &DriftConfig {
                domains: 5,
                ..small()
            },
            &lex,
        );
        for (da, db) in three.iter().zip(&five) {
            assert_eq!(da.schemas, db.schemas);
        }
    }

    #[test]
    fn ground_truth_validates_and_prepares() {
        let lex = Lexicon::builtin();
        for domain in generate_drift_corpus(&small(), &lex) {
            let prepared = domain.prepare();
            prepared.mapping.validate(&prepared.schemas).unwrap();
            assert!(prepared.integrated.tree.leaves().count() >= 12);
        }
    }

    #[test]
    fn every_concept_is_labeled_somewhere() {
        let lex = Lexicon::builtin();
        for domain in generate_drift_corpus(&small(), &lex) {
            for cluster in &domain.mapping.clusters {
                let labeled = cluster
                    .members
                    .iter()
                    .any(|m| domain.schemas[m.schema].node(m.node).label.is_some());
                assert!(
                    labeled,
                    "{}: {} never labeled",
                    domain.name, cluster.concept
                );
            }
        }
    }

    #[test]
    fn morph_variants_stem_back() {
        let lex = Lexicon::builtin();
        let mut rng = SplitMix64::new(7);
        for token in ["rating", "city", "price", "child"] {
            let variant = morph_variant(token, &lex, &mut rng);
            assert_eq!(
                qi_text::stem(&variant),
                qi_text::stem(token),
                "{token} -> {variant}"
            );
        }
    }

    #[test]
    fn fuzz_token_stays_within_one_edit_or_abbreviates() {
        let mut rng = SplitMix64::new(11);
        for _ in 0..200 {
            let fuzzed = fuzz_token("departure", &mut rng);
            let close = qi_text::normalized_levenshtein("departure", &fuzzed) >= 6.0 / 7.0;
            let abbrev = qi_text::prefix_abbreviation(&fuzzed, "departure");
            assert!(close || abbrev, "departure -> {fuzzed}");
        }
        // Short tokens are never fuzzed into noise.
        let mut rng = SplitMix64::new(12);
        assert_eq!(fuzz_token("city", &mut rng), "city");
    }

    #[test]
    fn report_shows_drift_exercised() {
        let lex = Lexicon::builtin();
        let corpus = generate_drift_corpus(&small(), &lex);
        let fresh = Lexicon::builtin();
        let report = DriftReport::compute(
            &corpus,
            &fresh,
            MatcherConfig {
                fuzzy: true,
                ..MatcherConfig::default()
            },
        );
        report.check(true, 1.0).unwrap();
        assert!(report.stats.accepted_synonym > 0);
        assert!(report.stats.accepted_fuzzy > 0);
        assert!(report.distinct_labels > 0);
    }
}
