//! Group relations (§4 of the paper).
//!
//! The clusters of a group are organized in an *(n+1)-ary relation*: one
//! column per cluster plus the interface name, one tuple per source
//! interface recording the labels that interface supplies for the group's
//! clusters (Tables 2–4 of the paper). All-null tuples are discarded.

use crate::cluster::{ClusterId, Mapping};
use qi_schema::SchemaTree;

/// One tuple of a group relation: the labels one interface supplies for
/// the clusters of the group (`None` = the paper's null entry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupTuple {
    /// Source schema index.
    pub schema: usize,
    /// Labels, parallel to [`GroupRelation::clusters`].
    pub labels: Vec<Option<String>>,
}

impl GroupTuple {
    /// Number of non-null components.
    pub fn non_null_count(&self) -> usize {
        self.labels.iter().filter(|l| l.is_some()).count()
    }

    /// Column indices with non-null labels.
    pub fn covered_columns(&self) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.as_ref().map(|_| i))
            .collect()
    }
}

/// The group relation of one group of clusters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupRelation {
    /// The group's clusters (column order).
    pub clusters: Vec<ClusterId>,
    /// Tuples, one per interface that labels at least one cluster.
    pub tuples: Vec<GroupTuple>,
}

impl GroupRelation {
    /// Build the group relation for `clusters` from the source schemas.
    ///
    /// For every schema, the tuple's entry for cluster `C` is the label of
    /// the schema's member field in `C`, or null when the schema has no
    /// member or the member is unlabeled. Schemas contributing only nulls
    /// are omitted.
    pub fn build(clusters: &[ClusterId], mapping: &Mapping, schemas: &[SchemaTree]) -> Self {
        let mut tuples = Vec::new();
        for (schema_idx, schema) in schemas.iter().enumerate() {
            let labels: Vec<Option<String>> = clusters
                .iter()
                .map(|&cid| {
                    mapping
                        .cluster(cid)
                        .member_of(schema_idx)
                        .and_then(|field| schema.node(field.node).label.clone())
                })
                .collect();
            if labels.iter().any(Option::is_some) {
                tuples.push(GroupTuple {
                    schema: schema_idx,
                    labels,
                });
            }
        }
        GroupRelation {
            clusters: clusters.to_vec(),
            tuples,
        }
    }

    /// Construct a relation directly from rows of optional label strings.
    /// Tuples are attributed to schemas `0..rows.len()` in order; all-null
    /// rows are dropped. Used heavily by tests mirroring the paper's
    /// tables.
    pub fn from_rows(clusters: &[ClusterId], rows: &[Vec<Option<&str>>]) -> Self {
        let tuples = rows
            .iter()
            .enumerate()
            .filter(|(_, row)| row.iter().any(Option::is_some))
            .map(|(i, row)| {
                assert_eq!(row.len(), clusters.len(), "row arity mismatch");
                GroupTuple {
                    schema: i,
                    labels: row.iter().map(|l| l.map(str::to_string)).collect(),
                }
            })
            .collect();
        GroupRelation {
            clusters: clusters.to_vec(),
            tuples,
        }
    }

    /// Extend this relation — built for a previous run's cluster list —
    /// to the grown cluster list after one interface was appended,
    /// without re-reading any old schema. Equals
    /// [`GroupRelation::build`]`(clusters, mapping, schemas)` exactly,
    /// under the append-delta contract (old clusters gain members only
    /// from `new_schema`; `new_clusters` have members only in it).
    ///
    /// Returns `(relation, column_map, appended)` where `column_map`
    /// maps this relation's columns to the new relation's, and
    /// `appended` reports whether the new schema contributed a (non-all-
    /// null) tuple — appended last, matching `build`'s schema-order
    /// iteration. Returns `None` when the inputs don't fit the contract
    /// (caller falls back to a full `build`): old columns missing from
    /// `clusters`, or a "new" cluster with members outside `new_schema`.
    pub fn extend_for_append(
        &self,
        clusters: &[ClusterId],
        mapping: &Mapping,
        schemas: &[SchemaTree],
        new_schema: usize,
        new_clusters: &std::collections::BTreeSet<ClusterId>,
    ) -> Option<(GroupRelation, Vec<usize>, bool)> {
        // Old columns may appear in any order in the new cluster list —
        // the appended interface can permute the integrated tree's leaf
        // order — so match them by identity, not position.
        let old_pos: std::collections::HashMap<ClusterId, usize> = self
            .clusters
            .iter()
            .enumerate()
            .map(|(i, &cid)| (cid, i))
            .collect();
        let mut column_map: Vec<usize> = vec![usize::MAX; self.clusters.len()];
        let mut matched = 0usize;
        for (column, &cid) in clusters.iter().enumerate() {
            if new_clusters.contains(&cid) {
                // A column born with the appended interface: no old
                // schema may reach it, or old tuples would change.
                if mapping
                    .cluster(cid)
                    .members
                    .iter()
                    .any(|m| m.schema != new_schema)
                {
                    return None;
                }
            } else {
                let Some(&old_col) = old_pos.get(&cid) else {
                    return None; // a pre-existing column we never had
                };
                column_map[old_col] = column;
                matched += 1;
            }
        }
        if matched != self.clusters.len() {
            return None; // an old column vanished — not an append
        }
        let width = clusters.len();
        let mut tuples: Vec<GroupTuple> = self
            .tuples
            .iter()
            .map(|t| {
                let mut labels: Vec<Option<String>> = vec![None; width];
                for (old_col, &new_col) in column_map.iter().enumerate() {
                    labels[new_col] = t.labels[old_col].clone();
                }
                GroupTuple {
                    schema: t.schema,
                    labels,
                }
            })
            .collect();
        let labels: Vec<Option<String>> = clusters
            .iter()
            .map(|&cid| {
                mapping
                    .cluster(cid)
                    .member_of(new_schema)
                    .and_then(|field| schemas[new_schema].node(field.node).label.clone())
            })
            .collect();
        let appended = labels.iter().any(Option::is_some);
        if appended {
            tuples.push(GroupTuple {
                schema: new_schema,
                labels,
            });
        }
        Some((
            GroupRelation {
                clusters: clusters.to_vec(),
                tuples,
            },
            column_map,
            appended,
        ))
    }

    /// Number of clusters (columns).
    pub fn width(&self) -> usize {
        self.clusters.len()
    }

    /// Column index of a cluster.
    pub fn column_of(&self, cluster: ClusterId) -> Option<usize> {
        self.clusters.iter().position(|&c| c == cluster)
    }

    /// The tuple supplied by a given schema, if any.
    pub fn tuple_of_schema(&self, schema: usize) -> Option<&GroupTuple> {
        self.tuples.iter().find(|t| t.schema == schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::FieldRef;
    use qi_schema::spec::{leaf, node, unlabeled_leaf};

    fn cid(i: u32) -> ClusterId {
        ClusterId(i)
    }

    /// Rebuild Table 2 of the paper from actual schema trees.
    #[test]
    fn build_from_schemas_matches_table2_shape() {
        // Two of the airline interfaces: `british` labels three concepts,
        // `economytravel` labels three (overlapping on Adults/Children).
        let british = SchemaTree::build(
            "british",
            vec![node(
                "Passengers",
                vec![leaf("Seniors"), leaf("Adults"), leaf("Children")],
            )],
        )
        .unwrap();
        let economy = SchemaTree::build(
            "economytravel",
            vec![node(
                "Travelers",
                vec![leaf("Adults"), leaf("Children"), leaf("Infants")],
            )],
        )
        .unwrap();
        let bl = british.descendant_leaves(qi_schema::NodeId::ROOT);
        let el = economy.descendant_leaves(qi_schema::NodeId::ROOT);
        let mapping = Mapping::from_clusters(vec![
            ("c_Senior".to_string(), vec![FieldRef::new(0, bl[0])]),
            (
                "c_Adult".to_string(),
                vec![FieldRef::new(0, bl[1]), FieldRef::new(1, el[0])],
            ),
            (
                "c_Child".to_string(),
                vec![FieldRef::new(0, bl[2]), FieldRef::new(1, el[1])],
            ),
            ("c_Infant".to_string(), vec![FieldRef::new(1, el[2])]),
        ]);
        let schemas = vec![british, economy];
        mapping.validate(&schemas).unwrap();
        let gr = GroupRelation::build(&[cid(0), cid(1), cid(2), cid(3)], &mapping, &schemas);
        assert_eq!(gr.width(), 4);
        assert_eq!(gr.tuples.len(), 2);
        let b = gr.tuple_of_schema(0).unwrap();
        assert_eq!(
            b.labels,
            vec![
                Some("Seniors".to_string()),
                Some("Adults".to_string()),
                Some("Children".to_string()),
                None
            ]
        );
        assert_eq!(b.non_null_count(), 3);
        assert_eq!(b.covered_columns(), vec![0, 1, 2]);
        let e = gr.tuple_of_schema(1).unwrap();
        assert_eq!(e.non_null_count(), 3);
        assert_eq!(e.covered_columns(), vec![1, 2, 3]);
    }

    #[test]
    fn unlabeled_members_contribute_nulls() {
        let a = SchemaTree::build("a", vec![unlabeled_leaf(), leaf("B")]).unwrap();
        let al = a.descendant_leaves(qi_schema::NodeId::ROOT);
        let mapping = Mapping::from_clusters(vec![
            ("c_0".to_string(), vec![FieldRef::new(0, al[0])]),
            ("c_1".to_string(), vec![FieldRef::new(0, al[1])]),
        ]);
        let schemas = vec![a];
        let gr = GroupRelation::build(&[cid(0), cid(1)], &mapping, &schemas);
        assert_eq!(gr.tuples.len(), 1);
        assert_eq!(gr.tuples[0].labels[0], None);
        assert_eq!(gr.tuples[0].labels[1], Some("B".to_string()));
    }

    #[test]
    fn all_null_tuples_are_dropped() {
        let a = SchemaTree::build("a", vec![unlabeled_leaf()]).unwrap();
        let al = a.descendant_leaves(qi_schema::NodeId::ROOT);
        let mapping =
            Mapping::from_clusters(vec![("c_0".to_string(), vec![FieldRef::new(0, al[0])])]);
        let schemas = vec![a];
        let gr = GroupRelation::build(&[cid(0)], &mapping, &schemas);
        assert!(gr.tuples.is_empty());
    }

    #[test]
    fn from_rows_mirrors_paper_tables() {
        // Table 3 of the paper.
        let gr = GroupRelation::from_rows(
            &[cid(0), cid(1), cid(2), cid(3)],
            &[
                vec![Some("State"), Some("City"), None, None],
                vec![None, None, Some("Zip Code"), Some("Distance")],
                vec![Some("State"), Some("City"), None, None],
                vec![None, None, Some("Your Zip"), Some("Within")],
            ],
        );
        assert_eq!(gr.tuples.len(), 4);
        assert_eq!(gr.column_of(cid(2)), Some(2));
        assert_eq!(gr.column_of(ClusterId(9)), None);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn from_rows_checks_arity() {
        let _ = GroupRelation::from_rows(&[cid(0), cid(1)], &[vec![Some("A")]]);
    }
}
